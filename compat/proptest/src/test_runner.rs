//! Runner configuration, case outcomes, and the deterministic RNG that
//! drives generation.

/// How many cases a `proptest!` test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` or a filter); it does not
    /// count against the budget.
    Reject(String),
    /// A `prop_assert*!` failed; the whole test fails.
    Fail(String),
}

/// SplitMix64 stream driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded explicitly.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seeded from the test's name (stable across runs), unless the
    /// `PROPTEST_SEED` environment variable overrides it.
    pub fn for_test(name: &str) -> TestRng {
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            return TestRng::new(seed);
        }
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
