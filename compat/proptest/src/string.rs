//! Generation from a regex subset: literals, character classes,
//! groups with `|` alternation, and the `?`/`*`/`+`/`{m}`/`{m,n}`
//! quantifiers. Unbounded quantifiers are capped at 4 repetitions.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    /// Alternatives, each a sequence.
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, usize, usize),
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let alternatives = parse_alternation(&mut pattern.chars().peekable());
    let mut out = String::new();
    let seq = &alternatives[rng.below(alternatives.len())];
    for node in seq {
        emit(node, rng, &mut out);
    }
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.below(total as usize) as u32;
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick).unwrap_or(*lo));
                    return;
                }
                pick -= span;
            }
        }
        Node::Group(alternatives) => {
            let seq = &alternatives[rng.below(alternatives.len())];
            for n in seq {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let count = if min == max {
                *min
            } else {
                min + rng.below(max - min + 1)
            };
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_alternation(chars: &mut Chars<'_>) -> Vec<Vec<Node>> {
    let mut alternatives = vec![Vec::new()];
    while let Some(&c) = chars.peek() {
        match c {
            ')' => break,
            '|' => {
                chars.next();
                alternatives.push(Vec::new());
            }
            _ => {
                let atom = parse_atom(chars);
                let atom = parse_quantifier(chars, atom);
                alternatives.last_mut().unwrap().push(atom);
            }
        }
    }
    alternatives
}

fn parse_atom(chars: &mut Chars<'_>) -> Node {
    match chars.next().expect("unexpected end of pattern") {
        '[' => parse_class(chars),
        '(' => {
            let alternatives = parse_alternation(chars);
            assert_eq!(chars.next(), Some(')'), "unclosed group in pattern");
            Node::Group(alternatives)
        }
        '.' => Node::Class(vec![(' ', '~')]),
        '\\' => escape(chars.next().expect("dangling escape in pattern")),
        c => Node::Lit(c),
    }
}

fn escape(c: char) -> Node {
    match c {
        'd' => Node::Class(vec![('0', '9')]),
        'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
        's' => Node::Lit(' '),
        other => Node::Lit(other),
    }
}

fn parse_class(chars: &mut Chars<'_>) -> Node {
    let mut ranges = Vec::new();
    loop {
        let c = chars.next().expect("unclosed character class");
        match c {
            ']' => break,
            '\\' => {
                let e = chars.next().expect("dangling escape in class");
                match escape(e) {
                    Node::Class(mut r) => ranges.append(&mut r),
                    Node::Lit(l) => ranges.push((l, l)),
                    _ => unreachable!(),
                }
            }
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    match chars.peek() {
                        Some(&']') | None => {
                            // Trailing '-' is a literal.
                            ranges.push((lo, lo));
                            ranges.push(('-', '-'));
                        }
                        Some(&hi) => {
                            chars.next();
                            ranges.push((lo, hi));
                        }
                    }
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty character class in pattern");
    Node::Class(ranges)
}

fn parse_quantifier(chars: &mut Chars<'_>, atom: Node) -> Node {
    match chars.peek() {
        Some('?') => {
            chars.next();
            Node::Repeat(Box::new(atom), 0, 1)
        }
        Some('*') => {
            chars.next();
            Node::Repeat(Box::new(atom), 0, 4)
        }
        Some('+') => {
            chars.next();
            Node::Repeat(Box::new(atom), 1, 4)
        }
        Some('{') => {
            chars.next();
            let mut min = String::new();
            let mut max = String::new();
            let mut in_max = false;
            loop {
                match chars.next().expect("unclosed {} quantifier") {
                    '}' => break,
                    ',' => in_max = true,
                    d if in_max => max.push(d),
                    d => min.push(d),
                }
            }
            let lo: usize = min.parse().expect("bad {} quantifier");
            let hi: usize = if !in_max {
                lo
            } else if max.is_empty() {
                lo + 4
            } else {
                max.parse().expect("bad {} quantifier")
            };
            Node::Repeat(Box::new(atom), lo, hi)
        }
        _ => atom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pattern: &str, seed: u64, verify: impl Fn(&str) -> bool) {
        let mut rng = TestRng::new(seed);
        for _ in 0..200 {
            let s = generate(pattern, &mut rng);
            assert!(verify(&s), "pattern {pattern:?} produced {s:?}");
        }
    }

    #[test]
    fn classes_and_counts() {
        check("[a-c]{1,3}", 1, |s| {
            (1..=3).contains(&s.len()) && s.chars().all(|c| ('a'..='c').contains(&c))
        });
        check("[a-z]{0,8}", 2, |s| s.len() <= 8);
    }

    #[test]
    fn optional_group() {
        check("[a-z]([a-z0-9 ]{0,6}[a-z])?", 3, |s| {
            !s.is_empty()
                && s.len() <= 8
                && !s.starts_with(' ')
                && !s.ends_with(' ')
        });
    }

    #[test]
    fn alternation_and_literals() {
        check("ab|cd", 4, |s| s == "ab" || s == "cd");
        check("x\\d+", 5, |s| {
            s.starts_with('x') && s[1..].chars().all(|c| c.is_ascii_digit())
        });
    }
}
