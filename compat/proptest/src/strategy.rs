//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is just a deterministic function of the test RNG; there
//! is no shrink tree. Combinators therefore compose as plain closures,
//! and [`BoxedStrategy`] is a cloneable `Arc` of one.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keep only values passing `keep`; regenerates on rejection.
    fn prop_filter<F>(self, reason: impl Into<String>, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            keep,
        }
    }

    /// Map-and-filter in one step; regenerates while `f` returns `None`.
    fn prop_filter_map<O, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            reason: reason.into(),
            f,
        }
    }

    /// Build recursive structures: `self` is the leaf strategy, and
    /// `branch` wraps a strategy for depth-`d` values into one for
    /// depth-`d+1` values. `_size`/`_branch` are accepted for API
    /// compatibility; depth alone bounds recursion here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth.max(1) {
            let deeper = branch(cur).boxed();
            let leaf = leaf.clone();
            cur = BoxedStrategy {
                gen: Arc::new(move |rng: &mut TestRng| {
                    // One third leaves keeps expected tree sizes small.
                    if rng.below(3) == 0 {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }),
            };
        }
        cur
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Arc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            gen: self.gen.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

const FILTER_TRIES: usize = 1000;

/// Result of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_TRIES {
            let v = self.source.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted {FILTER_TRIES} tries: {}", self.reason);
    }
}

/// Result of [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    source: S,
    reason: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_TRIES {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map exhausted {FILTER_TRIES} tries: {}",
            self.reason
        );
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(v as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String-typed values drawn from a regex-subset pattern.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::new(1);
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::new(2);
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_terminates_and_recurses() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let mut rng = TestRng::new(3);
        let s = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&s.generate(&mut rng)));
        }
        assert!(max >= 1, "recursion never branched");
    }
}
