//! Offline shim for `proptest`: the strategy combinators, generation
//! macros, and assertion macros this workspace's property tests use.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion's own
//!   message; tests here already interpolate the offending inputs.
//! * **Deterministic by default.** Each test derives its RNG seed from
//!   its own name, so runs are reproducible; set `PROPTEST_SEED` to an
//!   integer to explore a different stream.
//! * Regex strategies support the subset actually used: character
//!   classes, groups, `?`/`*`/`+`, and `{m}`/`{m,n}` repetition.

pub mod bool;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests: each `fn` runs its body over generated
/// inputs. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;
        $( $(#[$meta:meta])*
           fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                while passed < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(20).max(1000) {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {})",
                            stringify!($name), passed, config.cases
                        );
                    }
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest {} failed (case {}): {}",
                            stringify!($name), passed, msg
                        ),
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @impl $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a property test; failure reports the case instead of
/// unwinding through the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{}: `{:?} != {:?}`", format!($($fmt)+), lhs, rhs
        );
    }};
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?} != {:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "{}: `{:?} == {:?}`", format!($($fmt)+), lhs, rhs
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    stringify!($cond).to_string(),
                ),
            );
        }
    };
}
