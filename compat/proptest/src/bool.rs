//! Boolean strategies (`proptest::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly random booleans.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The canonical instance.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
