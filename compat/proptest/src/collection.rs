//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.min + rng.below(self.size.max - self.size.min);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::new(9);
        let s = vec(0u8..10, 2..5);
        let mut seen = [false; 6];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[2] && seen[3] && seen[4]);
        let s = vec(0u8..10, 1..=4);
        for _ in 0..50 {
            assert!((1..=4).contains(&s.generate(&mut rng).len()));
        }
    }
}
