//! Offline shim for the `bytes` crate: [`Bytes`] (cheaply cloneable,
//! immutable, `Arc`-shared) and [`BytesMut`] (growable, freezable).
//! Only the contiguous-buffer API slice this workspace uses is
//! provided; no vectored I/O, no `Buf`/`BufMut` traits.

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (copied once; the shim has no zero-copy
    /// static variant, which is fine at these sizes).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Bytes {
        m.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut {
            data: vec![0u8; len],
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend)
    }

    /// Resize, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value)
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.data.clear()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { data: v }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_round_trip() {
        let mut m = BytesMut::zeroed(4);
        m[0] = 9;
        m.extend_from_slice(b"ab");
        let b = m.freeze();
        assert_eq!(&b[..], &[9, 0, 0, 0, b'a', b'b']);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn bytes_clone_shares() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.as_ref(), b"hello");
    }

    #[test]
    fn from_static_and_eq_slice() {
        let b = Bytes::from_static(b"xy");
        assert_eq!(b, *b"xy".as_slice());
    }
}
