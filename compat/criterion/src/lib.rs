//! Offline shim for `criterion`: enough of the API to compile and run
//! the workspace's benchmarks, reporting mean wall-clock time per
//! iteration. No statistics, baselines, or reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, 100, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples as u64,
        elapsed: Duration::ZERO,
        total_iters: 0,
    };
    f(&mut b);
    if b.total_iters == 0 {
        println!("{label}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.total_iters as f64;
    println!("{label}: {} ({} iters)", format_ns(per_iter), b.total_iters);
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Times closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    total_iters: u64,
}

impl Bencher {
    /// Time `routine`, called `sample_size` times after a warm-up.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: a few untimed calls.
        for _ in 0..3.min(self.iters) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.total_iters += self.iters;
    }
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
