//! MPMC unbounded channels with the `crossbeam_channel` API shape.
//!
//! Both [`Sender`] and [`Receiver`] are cloneable; disconnection is
//! tracked by reference counts on each side, mirroring crossbeam's
//! semantics: `send` fails once all receivers are gone, `recv` fails
//! once all senders are gone *and* the queue is drained.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueue `value`, failing if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut g = self.shared.inner.lock().unwrap();
        if g.receivers == 0 {
            return Err(SendError(value));
        }
        g.queue.push_back(value);
        drop(g);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut g = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = g.queue.pop_front() {
                return Ok(v);
            }
            if g.senders == 0 {
                return Err(RecvError);
            }
            g = self.shared.ready.wait(g).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut g = self.shared.inner.lock().unwrap();
        if let Some(v) = g.queue.pop_front() {
            return Ok(v);
        }
        if g.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a deadline relative to now.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut g = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = g.queue.pop_front() {
                return Ok(v);
            }
            if g.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(g, deadline - now)
                .unwrap();
            g = guard;
        }
    }

    /// Blocking iterator over received values; ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut g = self.shared.inner.lock().unwrap();
        g.senders -= 1;
        let wake = g.senders == 0;
        drop(g);
        if wake {
            // Unblock receivers waiting on a now-impossible send.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().receivers -= 1;
    }
}

/// `send` on a channel with no receivers; returns the value.
pub struct SendError<T>(pub T);

/// `recv` on an empty channel with no senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a failed [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// No senders remain.
    Disconnected,
}

/// Outcome of a failed [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed.
    Timeout,
    /// No senders remain.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("channel is empty and disconnected")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn mpmc_distributes_work() {
        let (tx, rx) = unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                while let Ok(v) = rx.recv() {
                    sum += u64::from(v);
                }
                sum
            }));
        }
        drop(rx);
        for i in 1..=100u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
