//! Offline shim for the `crossbeam` facade: only [`channel`] is
//! provided, because that is the only module this workspace uses.

pub mod channel;
