//! Offline shim for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! non-poisoning, guard-returning API, implemented over `std::sync`.
//! Poison is swallowed (`into_inner`) to match parking_lot's behaviour
//! of not propagating panics through locks.

use std::sync;

/// Re-exported guard types (std's, since the data layout is std's).
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
