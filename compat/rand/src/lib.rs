//! Offline shim for `rand` 0.8: the [`Rng`]/[`SeedableRng`] traits and
//! a SplitMix64 generator behind [`rngs::StdRng`] / [`rngs::SmallRng`].
//!
//! The workspace uses rand only for deterministic workload synthesis
//! (`StdRng::seed_from_u64` + `gen_range`/`gen_bool`/`gen`), so the
//! shim implements exactly that: uniform integer ranges (inclusive and
//! exclusive), `f64` ranges, Bernoulli draws, and full-width samples.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`. `low < high` must hold.
    fn sample_exclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`. `low <= high` must hold.
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(rng: &mut dyn RngCore, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as $u).wrapping_sub(low as $u);
                // Multiply-shift bounded draw (Lemire); span==0 cannot
                // happen for exclusive ranges of a strictly smaller type.
                let r = rng.next_u64();
                let v = ((r as u128 * span as u128) >> 64) as $u;
                low.wrapping_add(v as $t)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range called with empty range");
                let span = (high as $u).wrapping_sub(low as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                let r = rng.next_u64();
                let v = ((r as u128 * (span as u128 + 1)) >> 64) as $u;
                low.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleUniform for f64 {
    fn sample_exclusive(rng: &mut dyn RngCore, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range called with empty range");
        low + (high - low) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive(rng: &mut dyn RngCore, low: f64, high: f64) -> f64 {
        Self::sample_exclusive(rng, low, f64::max(high, low + f64::EPSILON))
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Full-width uniform sample.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

fn unit_f64(r: u64) -> f64 {
    // 53 random mantissa bits → [0, 1).
    (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Core of every generator: a 64-bit output stream.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy — here, from the system clock, since the
    /// shimmed environment has no entropy source dependency.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to [0,1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Full-width uniform sample of `T`.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, and plenty for workload synthesis.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    /// Same engine; the distinction only matters in the real crate.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1000i64..1000);
            assert!((-1000..1000).contains(&v));
            let w = rng.gen_range(1u32..=7);
            assert!((1..=7).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_width_samples_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
    }
}
