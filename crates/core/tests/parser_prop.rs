//! Property tests for the query syntax: display → parse is the identity
//! on randomly generated trees, and memoized evaluation matches plain
//! evaluation.

use netdir_filter::atomic::IntOp;
use netdir_filter::{AtomicFilter, Scope};
use netdir_index::IndexedDirectory;
use netdir_model::Dn;
use netdir_pager::Pager;
use netdir_query::ast::*;
use netdir_query::{classify, parse_query, Evaluator};
use netdir_workloads::{synth_forest, SynthParams};
use proptest::prelude::*;

fn arb_scope() -> impl Strategy<Value = Scope> {
    prop_oneof![Just(Scope::Base), Just(Scope::One), Just(Scope::Sub)]
}

/// Atomic filters whose Display is parse-stable (presence, equality on
/// wildcard-free lowercase values, int comparisons other than `=`).
fn arb_filter() -> impl Strategy<Value = AtomicFilter> {
    prop_oneof![
        "[a-z]{1,6}".prop_map(|a| AtomicFilter::present(a.as_str())),
        // Values must not start/end with whitespace (the parser trims).
        ("[a-z]{1,6}", "[a-z]([a-z0-9 ]{0,6}[a-z])?")
            .prop_map(|(a, v)| AtomicFilter::eq(a.as_str(), v)),
        (
            "[a-z]{1,6}",
            prop_oneof![
                Just(IntOp::Lt),
                Just(IntOp::Le),
                Just(IntOp::Gt),
                Just(IntOp::Ge)
            ],
            -100i64..100
        )
            .prop_map(|(a, op, v)| AtomicFilter::int_cmp(a.as_str(), op, v)),
    ]
}

fn arb_base() -> impl Strategy<Value = Dn> {
    prop_oneof![
        Just(Dn::root()),
        Just(Dn::parse("dc=synth").unwrap()),
        Just(Dn::parse("ou=x, dc=synth").unwrap()),
    ]
}

fn arb_agg_filter() -> impl Strategy<Value = AggSelFilter> {
    let agg = prop_oneof![
        Just(Aggregate::Min),
        Just(Aggregate::Max),
        Just(Aggregate::Count),
        Just(Aggregate::Sum),
        Just(Aggregate::Average),
    ];
    let attr_ref = prop_oneof![
        "[a-z]{1,5}".prop_map(|a| AttrRef::Own(a.as_str().into())),
        "[a-z]{1,5}".prop_map(|a| AttrRef::Of1(a.as_str().into())),
        "[a-z]{1,5}".prop_map(|a| AttrRef::Of2(a.as_str().into())),
    ];
    let ea = prop_oneof![
        Just(EntryAgg::CountWitnesses),
        (agg.clone(), attr_ref).prop_map(|(g, r)| EntryAgg::Agg(g, r)),
    ];
    let aa = prop_oneof![
        (-20i64..20).prop_map(AggAttribute::Const),
        ea.clone().prop_map(AggAttribute::Entry),
        (agg, ea).prop_map(|(g, e)| AggAttribute::EntrySet(g, Box::new(e))),
        Just(AggAttribute::CountR1),
        Just(AggAttribute::CountAll),
    ];
    let ops = prop_oneof![
        Just(IntOp::Lt),
        Just(IntOp::Le),
        Just(IntOp::Gt),
        Just(IntOp::Ge),
        Just(IntOp::Eq)
    ];
    (aa.clone(), ops, aa).prop_map(|(lhs, op, rhs)| AggSelFilter { lhs, op, rhs })
}

fn arb_query() -> impl Strategy<Value = Query> {
    let leaf = (arb_base(), arb_scope(), arb_filter())
        .prop_map(|(b, s, f)| Query::atomic(b, s, f));
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Query::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Query::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Query::diff(a, b)),
            (
                prop_oneof![
                    Just(HierOp::Parents),
                    Just(HierOp::Children),
                    Just(HierOp::Ancestors),
                    Just(HierOp::Descendants)
                ],
                inner.clone(),
                inner.clone(),
                proptest::option::of(arb_agg_filter()),
            )
                .prop_map(|(op, a, b, agg)| Query::Hier {
                    op,
                    q1: Box::new(a),
                    q2: Box::new(b),
                    agg,
                }),
            (
                prop_oneof![
                    Just(HierPathOp::AncestorsConstrained),
                    Just(HierPathOp::DescendantsConstrained)
                ],
                inner.clone(),
                inner.clone(),
                inner.clone(),
            )
                .prop_map(|(op, a, b, c)| Query::hier_path(op, a, b, c)),
            (
                prop_oneof![Just(RefOp::ValueDn), Just(RefOp::DnValue)],
                inner.clone(),
                inner.clone(),
                "[a-z]{1,6}",
            )
                .prop_map(|(op, a, b, attr)| Query::embed_ref(op, a, b, attr.as_str())),
            (inner, arb_agg_filter()).prop_filter_map(
                "g filters must be simple-compatible",
                |(q, f)| {
                    // g rejects witness references; regenerate without them.
                    let ok = netdir_query::agg::CompiledAggFilter::compile(&f, false).is_ok();
                    ok.then(|| Query::agg_select(q, f))
                }
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn display_parse_roundtrip(q in arb_query()) {
        let printed = q.to_string();
        let back = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for {printed}: {e}"));
        prop_assert_eq!(&back, &q, "display/parse not identity for {}", printed);
        prop_assert_eq!(classify(&back), classify(&q));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn memoized_evaluation_matches_plain(q in arb_query()) {
        // Shared directory so results are meaningful; any error must be
        // identical with and without memo.
        let dir = synth_forest(SynthParams {
            entries: 120,
            max_depth: 4,
            red_fraction: 0.5,
            blue_fraction: 0.5,
        }, 8);
        let pager = Pager::new(2048, 16);
        let idx = IndexedDirectory::build(&pager, &dir).unwrap();
        let plain = Evaluator::new(&idx, &pager).evaluate(&q);
        let memo = Evaluator::new(&idx, &pager).with_memo().evaluate(&q);
        match (plain, memo) {
            (Ok(a), Ok(b)) => {
                let a = a.to_vec().unwrap();
                let b = b.to_vec().unwrap();
                prop_assert_eq!(a, b);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergence: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}
