//! Determinism guard for parallel evaluation (ISSUE 5 satellite).
//!
//! For randomized L0–L3 query trees over a randomized directory,
//! `Evaluator::evaluate_parallel` must produce output *byte-identical* to
//! sequential `evaluate` at every degree 1–8: same entries, same
//! reverse-DN order, same encoded bytes — regardless of which worker
//! finished which subtree first.

use netdir_index::IndexedDirectory;
use netdir_model::{Directory, Dn, Entry};
use netdir_pager::Pager;
use netdir_query::{parse_query, Evaluator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

/// A random directory tree: ~`n` entries under `dc=test`, tagged with a
/// `kind` attribute and sprinkled with DN-valued `ref` attributes so that
/// every operator family (boolean, hierarchical, aggregation, embedded
/// reference) has real work to do.
fn random_directory(rng: &mut StdRng, n: usize) -> (Directory, Vec<Dn>) {
    let mut d = Directory::new();
    let root = dn("dc=test");
    d.insert(Entry::builder(root.clone()).class("thing").build().unwrap())
        .unwrap();
    let mut dns = vec![root];
    for i in 0..n {
        let parent = dns[rng.gen_range(0..dns.len())].clone();
        let child = dn(&format!("n=e{i}, {parent}"));
        let kind = ["red", "blue", "green"][rng.gen_range(0..3)];
        let mut b = Entry::builder(child.clone())
            .class("thing")
            .attr("kind", kind)
            .attr("weight", rng.gen_range(0..6) as i64);
        if rng.gen_bool(0.3) {
            let target = dns[rng.gen_range(0..dns.len())].clone();
            b = b.attr("ref", target);
        }
        d.insert(b.build().unwrap()).unwrap();
        dns.push(child);
    }
    (d, dns)
}

/// A random atomic query (L0 leaf).
fn random_atom(rng: &mut StdRng, dns: &[Dn]) -> String {
    let base = &dns[rng.gen_range(0..dns.len().min(20))];
    let scope = ["base", "one", "sub"][rng.gen_range(0..3)];
    let filter = match rng.gen_range(0..5) {
        0 => "kind=red".to_string(),
        1 => "kind=blue".to_string(),
        2 => "objectClass=thing".to_string(),
        3 => format!("weight={}", rng.gen_range(0..6)),
        _ => "ref=*".to_string(),
    };
    format!("({base} ? {scope} ? {filter})")
}

/// A random query tree of the given depth spanning L0–L3 operators.
fn random_tree(rng: &mut StdRng, dns: &[Dn], depth: usize) -> String {
    if depth == 0 {
        return random_atom(rng, dns);
    }
    let sub = |rng: &mut StdRng| random_tree(rng, dns, depth - 1);
    match rng.gen_range(0..8) {
        0 => format!("(& {} {})", sub(rng), sub(rng)),
        1 => format!("(| {} {})", sub(rng), sub(rng)),
        2 => format!("(- {} {})", sub(rng), sub(rng)),
        3 => {
            let op = ["p", "c", "a", "d"][rng.gen_range(0..4)];
            format!("({op} {} {})", sub(rng), sub(rng))
        }
        4 => {
            // L2: hierarchical selection with an aggregate filter.
            let op = ["p", "c", "a", "d"][rng.gen_range(0..4)];
            format!("({op} {} {} count($2) > {})", sub(rng), sub(rng), rng.gen_range(0..2))
        }
        5 => {
            let op = ["ac", "dc"][rng.gen_range(0..2)];
            format!("({op} {} {} {})", sub(rng), sub(rng), sub(rng))
        }
        6 => format!("(g {} count($1) > {})", sub(rng), rng.gen_range(0..2)),
        _ => {
            let op = ["vd", "dv"][rng.gen_range(0..2)];
            format!("({op} {} {} ref)", sub(rng), sub(rng))
        }
    }
}

#[test]
fn parallel_evaluation_is_byte_identical_for_random_trees() {
    let mut checked = 0usize;
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xD15C0 + seed);
        let (dir, dns) = random_directory(&mut rng, 80);
        let pager = Pager::new(512, 64);
        let idx = IndexedDirectory::build(&pager, &dir).unwrap();
        let ev = Evaluator::new(&idx, &pager);

        for _ in 0..4 {
            let depth = rng.gen_range(1..4);
            let text = random_tree(&mut rng, &dns, depth);
            let q = parse_query(&text).unwrap_or_else(|e| panic!("parse {text}: {e}"));
            let expect: Vec<Entry> = match ev.evaluate(&q) {
                Ok(out) => out.to_vec().unwrap(),
                // A tree whose agg filter is rejected must be rejected in
                // parallel too; that's covered below, skip the comparison.
                Err(_) => {
                    for degree in [2, 8] {
                        ev.evaluate_parallel(&q, degree).unwrap_err();
                    }
                    continue;
                }
            };
            // Reverse-DN sort order is part of the contract.
            for w in expect.windows(2) {
                assert!(
                    w[0].dn().sort_key() <= w[1].dn().sort_key(),
                    "sequential output not reverse-DN sorted for {text}"
                );
            }
            for degree in 1..=8usize {
                let got = ev
                    .evaluate_parallel(&q, degree)
                    .unwrap_or_else(|e| panic!("degree {degree} on {text}: {e}"))
                    .to_vec()
                    .unwrap();
                assert_eq!(got, expect, "degree {degree} diverged on {text}");
            }
            checked += 1;
        }
    }
    assert!(checked >= 48, "only {checked} trees exercised the comparison");
}

#[test]
fn memoized_parallel_evaluation_stays_identical() {
    // Memo hits under concurrency must hand back the same lists.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let (dir, dns) = random_directory(&mut rng, 60);
    let pager = Pager::new(512, 64);
    let idx = IndexedDirectory::build(&pager, &dir).unwrap();
    let plain = Evaluator::new(&idx, &pager);
    let memoed = Evaluator::new(&idx, &pager).with_memo();
    for _ in 0..12 {
        let shared = random_tree(&mut rng, &dns, 1);
        // The same subtree appears twice — a guaranteed memo collision
        // between concurrent workers.
        let text = format!("(| {shared} (& {shared} {shared}))");
        let q = parse_query(&text).unwrap();
        let Ok(expect) = plain.evaluate(&q) else {
            continue;
        };
        let expect = expect.to_vec().unwrap();
        for degree in [2, 4, 8] {
            let got = memoed.evaluate_parallel(&q, degree).unwrap().to_vec().unwrap();
            assert_eq!(got, expect, "memoized degree {degree} diverged on {text}");
        }
    }
}
