//! Property tests: the external-memory operators agree element-for-element
//! with the naive quadratic oracles (direct transcriptions of Definitions
//! 4.1/5.1/6.1/6.2/7.1) on randomized forests.

use netdir_filter::atomic::IntOp;
use netdir_model::{Dn, Entry};
use netdir_pager::{PagedList, Pager};
use netdir_query::agg::CompiledAggFilter;
use netdir_query::ast::{AggAttribute, AggSelFilter, Aggregate, AttrRef, EntryAgg, RefOp};
use netdir_query::boolean::{merge, BoolOp};
use netdir_query::hs_stack::{hs_select, HsOp};
use netdir_query::naive;
use proptest::prelude::*;

/// Random DN inside a small labelled universe so that real hierarchy
/// arises: depth 1..=4, each component one of 4 labels.
fn arb_dn() -> impl Strategy<Value = Dn> {
    proptest::collection::vec(0u8..4, 1..=4).prop_map(|labels| {
        let parts: Vec<String> = labels
            .iter()
            .enumerate()
            .map(|(depth, l)| format!("n{depth}{l}=v"))
            .collect();
        // components root→leaf were generated; DN is leaf-first.
        let s = parts.into_iter().rev().collect::<Vec<_>>().join(", ");
        Dn::parse(&s).unwrap()
    })
}

/// Attributes must be a *function of the DN*: in a real evaluation every
/// operand list derives from one directory instance, so two lists holding
/// the same DN hold the same entry. The generator honors that invariant.
fn entry_for(dn: Dn) -> Entry {
    let prio = (dn
        .sort_key()
        .as_bytes()
        .iter()
        .map(|&b| b as i64)
        .sum::<i64>())
        % 8;
    Entry::builder(dn)
        .class("t")
        .attr("priority", prio)
        .build()
        .unwrap()
}

/// A random sorted, deduplicated entry list.
fn arb_entries() -> impl Strategy<Value = Vec<Entry>> {
    proptest::collection::vec(arb_dn(), 0..24).prop_map(|dns| {
        let mut v: Vec<Entry> = dns.into_iter().map(entry_for).collect();
        v.sort_by(|a, b| a.dn().cmp(b.dn()));
        v.dedup_by(|a, b| a.dn() == b.dn());
        v
    })
}

fn paged(pager: &Pager, v: &[Entry]) -> PagedList<Entry> {
    PagedList::from_iter(pager, v.iter().cloned()).unwrap()
}

fn dns(v: &[Entry]) -> Vec<String> {
    v.iter().map(|e| e.dn().to_string()).collect()
}

fn arb_agg_filter() -> impl Strategy<Value = AggSelFilter> {
    let entry_aggs = prop_oneof![
        Just(EntryAgg::CountWitnesses),
        Just(EntryAgg::Agg(Aggregate::Min, AttrRef::Of2("priority".into()))),
        Just(EntryAgg::Agg(Aggregate::Max, AttrRef::Of2("priority".into()))),
        Just(EntryAgg::Agg(Aggregate::Sum, AttrRef::Of2("priority".into()))),
        Just(EntryAgg::Agg(Aggregate::Average, AttrRef::Of2("priority".into()))),
        Just(EntryAgg::Agg(Aggregate::Count, AttrRef::Own("priority".into()))),
        Just(EntryAgg::Agg(Aggregate::Min, AttrRef::Of1("priority".into()))),
    ];
    let ops = prop_oneof![
        Just(IntOp::Lt),
        Just(IntOp::Le),
        Just(IntOp::Gt),
        Just(IntOp::Ge),
        Just(IntOp::Eq)
    ];
    (entry_aggs, ops, -1i64..6, proptest::bool::ANY).prop_map(|(ea, op, c, global)| {
        let rhs = if global {
            AggAttribute::EntrySet(Aggregate::Max, Box::new(ea.clone()))
        } else {
            AggAttribute::Const(c)
        };
        AggSelFilter {
            lhs: AggAttribute::Entry(ea),
            op,
            rhs,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hs_ops_match_oracle(l1 in arb_entries(), l2 in arb_entries(), l3 in arb_entries()) {
        let pager = netdir_pager::tiny_pager();
        let p1 = paged(&pager, &l1);
        let p2 = paged(&pager, &l2);
        let p3 = paged(&pager, &l3);
        let f = CompiledAggFilter::exists_witness();
        for op in [HsOp::Parents, HsOp::Children, HsOp::Ancestors, HsOp::Descendants] {
            let fast = hs_select(&pager, op, &p1, &p2, None, &f).unwrap().to_vec().unwrap();
            let slow = naive::naive_hs_select(op, &l1, &l2, &[], &f);
            prop_assert_eq!(dns(&fast), dns(&slow), "op {:?}", op);
        }
        for op in [HsOp::AncestorsConstrained, HsOp::DescendantsConstrained] {
            let fast = hs_select(&pager, op, &p1, &p2, Some(&p3), &f).unwrap().to_vec().unwrap();
            let slow = naive::naive_hs_select(op, &l1, &l2, &l3, &f);
            prop_assert_eq!(dns(&fast), dns(&slow), "op {:?}", op);
        }
    }

    #[test]
    fn hs_agg_ops_match_oracle(
        l1 in arb_entries(),
        l2 in arb_entries(),
        filter in arb_agg_filter(),
    ) {
        let pager = netdir_pager::tiny_pager();
        let p1 = paged(&pager, &l1);
        let p2 = paged(&pager, &l2);
        let f = CompiledAggFilter::compile(&filter, true).unwrap();
        for op in [HsOp::Parents, HsOp::Children, HsOp::Ancestors, HsOp::Descendants] {
            let fast = hs_select(&pager, op, &p1, &p2, None, &f).unwrap().to_vec().unwrap();
            let slow = naive::naive_hs_select(op, &l1, &l2, &[], &f);
            prop_assert_eq!(dns(&fast), dns(&slow), "op {:?} filter {}", op, filter);
        }
    }

    #[test]
    fn boolean_ops_match_oracle(l1 in arb_entries(), l2 in arb_entries()) {
        let pager = netdir_pager::tiny_pager();
        let p1 = paged(&pager, &l1);
        let p2 = paged(&pager, &l2);
        for op in [BoolOp::And, BoolOp::Or, BoolOp::Diff] {
            let fast = merge(&pager, op, &p1, &p2).unwrap().to_vec().unwrap();
            let slow = naive::naive_boolean(op, &l1, &l2);
            prop_assert_eq!(dns(&fast), dns(&slow), "op {:?}", op);
        }
    }

    #[test]
    fn outputs_always_sorted(l1 in arb_entries(), l2 in arb_entries()) {
        let pager = netdir_pager::tiny_pager();
        let p1 = paged(&pager, &l1);
        let p2 = paged(&pager, &l2);
        let f = CompiledAggFilter::exists_witness();
        for op in [HsOp::Parents, HsOp::Children, HsOp::Ancestors, HsOp::Descendants] {
            let out = hs_select(&pager, op, &p1, &p2, None, &f).unwrap().to_vec().unwrap();
            for w in out.windows(2) {
                prop_assert!(w[0].dn() < w[1].dn(), "unsorted output for {:?}", op);
            }
        }
    }

    #[test]
    fn l1_op_equals_l2_op_with_count_gt_0(l1 in arb_entries(), l2 in arb_entries()) {
        // Section 6.2: the L1 operators are the L2 structural operators
        // specialized to count($2) > 0.
        let pager = netdir_pager::tiny_pager();
        let p1 = paged(&pager, &l1);
        let p2 = paged(&pager, &l2);
        let explicit = CompiledAggFilter::compile(&AggSelFilter::exists_witness(), true).unwrap();
        let implicit = CompiledAggFilter::exists_witness();
        for op in [HsOp::Parents, HsOp::Children, HsOp::Ancestors, HsOp::Descendants] {
            let a = hs_select(&pager, op, &p1, &p2, None, &implicit).unwrap().to_vec().unwrap();
            let b = hs_select(&pager, op, &p1, &p2, None, &explicit).unwrap().to_vec().unwrap();
            prop_assert_eq!(dns(&a), dns(&b));
        }
    }
}

/// References: entries whose `ref` attribute points at other entries.
fn arb_ref_entries() -> impl Strategy<Value = (Vec<Entry>, Vec<Entry>)> {
    (arb_entries(), arb_entries(), proptest::collection::vec((0usize..24, 0usize..24), 0..32))
        .prop_map(|(mut sources, targets, links)| {
            // Attach DN references from sources to targets.
            for (si, ti) in links {
                if sources.is_empty() || targets.is_empty() {
                    continue;
                }
                let si = si % sources.len();
                let ti = ti % targets.len();
                let target_dn = targets[ti].dn().clone();
                let src = &sources[si];
                let rebuilt = Entry::builder(src.dn().clone())
                    .class("t")
                    .attr("priority", src.first_int(&"priority".into()).unwrap_or(0))
                    .attr_values(
                        "ref",
                        src.values(&"ref".into())
                            .cloned()
                            .chain(std::iter::once(netdir_model::Value::Dn(target_dn))),
                    )
                    .build()
                    .unwrap();
                sources[si] = rebuilt;
            }
            (sources, targets)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn er_ops_match_oracle((sources, targets) in arb_ref_entries(), use_agg in proptest::bool::ANY) {
        // Bigger pages: ref-heavy entries outgrow the 256-byte tiny pager.
        let pager = Pager::new(2048, 8);
        let attr: netdir_model::AttrName = "ref".into();
        let filter = if use_agg {
            CompiledAggFilter::compile(&AggSelFilter {
                lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
                op: IntOp::Eq,
                rhs: AggAttribute::EntrySet(Aggregate::Max, Box::new(EntryAgg::CountWitnesses)),
            }, true).unwrap()
        } else {
            CompiledAggFilter::exists_witness()
        };
        let ps = paged(&pager, &sources);
        let pt = paged(&pager, &targets);

        // vd: sources referencing live targets.
        let fast = netdir_query::er_join::er_select(&pager, RefOp::ValueDn, &ps, &pt, &attr, &filter)
            .unwrap().to_vec().unwrap();
        let slow = naive::naive_er_select(RefOp::ValueDn, &sources, &targets, &attr, &filter);
        prop_assert_eq!(dns(&fast), dns(&slow), "vd");

        // dv: targets referenced by sources.
        let fast = netdir_query::er_join::er_select(&pager, RefOp::DnValue, &pt, &ps, &attr, &filter)
            .unwrap().to_vec().unwrap();
        let slow = naive::naive_er_select(RefOp::DnValue, &targets, &sources, &attr, &filter);
        prop_assert_eq!(dns(&fast), dns(&slow), "dv");
    }
}
