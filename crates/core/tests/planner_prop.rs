//! Property suite for the cost-based planner (ISSUE 9).
//!
//! For seeded random forests × random L0–L3 query trees:
//!
//! * the planned query's output is **byte-identical** to the naive
//!   query's (same entries, same reverse-DN order);
//! * the planned query's cold-cache page-read ledger never exceeds the
//!   naive query's;
//! * the Theorem 8.2(d) `a`/`d` → `ac`/`dc` rewrite with the paper's
//!   `(- X X)` whole-directory operand — the blow-up E11 measures — is
//!   enumerated as a candidate but **never chosen**, and queries arriving
//!   already in that form are repaired.

use netdir_index::IndexedDirectory;
use netdir_model::{Directory, Dn, Entry};
use netdir_pager::Pager;
use netdir_query::planner::{ObservingSource, Step};
use netdir_query::{parse_query, Evaluator, Planner, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

/// A random directory tree: ~`n` entries under `dc=test`, tagged with a
/// `kind` attribute and sprinkled with DN-valued `ref` attributes so that
/// every operator family has real work to do.
fn random_directory(rng: &mut StdRng, n: usize) -> (Directory, Vec<Dn>) {
    let mut d = Directory::new();
    let root = dn("dc=test");
    d.insert(Entry::builder(root.clone()).class("thing").build().unwrap())
        .unwrap();
    let mut dns = vec![root];
    for i in 0..n {
        let parent = dns[rng.gen_range(0..dns.len())].clone();
        let child = dn(&format!("n=e{i}, {parent}"));
        let kind = ["red", "blue", "green"][rng.gen_range(0..3)];
        let mut b = Entry::builder(child.clone())
            .class("thing")
            .attr("kind", kind)
            .attr("weight", rng.gen_range(0..6) as i64);
        if rng.gen_bool(0.3) {
            let target = dns[rng.gen_range(0..dns.len())].clone();
            b = b.attr("ref", target);
        }
        d.insert(b.build().unwrap()).unwrap();
        dns.push(child);
    }
    (d, dns)
}

/// A random atomic query (L0 leaf).
fn random_atom(rng: &mut StdRng, dns: &[Dn]) -> String {
    let base = &dns[rng.gen_range(0..dns.len().min(20))];
    let scope = ["base", "one", "sub"][rng.gen_range(0..3)];
    let filter = match rng.gen_range(0..5) {
        0 => "kind=red".to_string(),
        1 => "kind=blue".to_string(),
        2 => "objectClass=thing".to_string(),
        3 => format!("weight={}", rng.gen_range(0..6)),
        _ => "ref=*".to_string(),
    };
    format!("({base} ? {scope} ? {filter})")
}

/// A random query tree of the given depth spanning L0–L3 operators.
fn random_tree(rng: &mut StdRng, dns: &[Dn], depth: usize) -> String {
    if depth == 0 {
        return random_atom(rng, dns);
    }
    let sub = |rng: &mut StdRng| random_tree(rng, dns, depth - 1);
    match rng.gen_range(0..8) {
        0 => format!("(& {} {})", sub(rng), sub(rng)),
        1 => format!("(| {} {})", sub(rng), sub(rng)),
        2 => format!("(- {} {})", sub(rng), sub(rng)),
        3 => {
            let op = ["p", "c", "a", "d"][rng.gen_range(0..4)];
            format!("({op} {} {})", sub(rng), sub(rng))
        }
        4 => {
            let op = ["p", "c", "a", "d"][rng.gen_range(0..4)];
            format!("({op} {} {} count($2) > {})", sub(rng), sub(rng), rng.gen_range(0..2))
        }
        5 => {
            let op = ["ac", "dc"][rng.gen_range(0..2)];
            format!("({op} {} {} {})", sub(rng), sub(rng), sub(rng))
        }
        6 => format!("(g {} count($1) > {})", sub(rng), rng.gen_range(0..2)),
        _ => {
            let op = ["vd", "dv"][rng.gen_range(0..2)];
            format!("({op} {} {} ref)", sub(rng), sub(rng))
        }
    }
}

/// Evaluate `q` against `idx` with a cold page cache and a fresh ledger;
/// returns (entries, pages read).
fn cold_eval(pager: &Pager, idx: &IndexedDirectory, q: &Query) -> (Vec<Entry>, u64) {
    pager.flush().unwrap();
    pager.pool().clear_cache().unwrap();
    pager.reset_io();
    let out = Evaluator::new(idx, pager)
        .evaluate(q)
        .unwrap()
        .to_vec()
        .unwrap();
    (out, pager.io().reads)
}

#[test]
fn planned_queries_are_byte_identical_and_read_no_more_pages() {
    let mut checked = 0usize;
    let mut transformed = 0usize;
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x9A7E5 + seed);
        let (dir, dns) = random_directory(&mut rng, 80);
        let pager = Pager::new(512, 64);
        let idx = IndexedDirectory::build(&pager, &dir).unwrap();
        let planner = Planner::new();

        for _ in 0..5 {
            let depth = rng.gen_range(1..4);
            let text = random_tree(&mut rng, &dns, depth);
            let q = parse_query(&text).unwrap_or_else(|e| panic!("parse {text}: {e}"));

            // Training pass: a naive evaluation through an observing
            // source populates the stats catalog with this tree's real
            // atomic list sizes (some agg trees are rejected — skip).
            let observing = ObservingSource::new(&idx, planner.catalog());
            if Evaluator::new(&observing, &pager).evaluate(&q).is_err() {
                continue;
            }

            let planned = planner.plan(&q);
            assert!(
                planned.predicted_chosen <= planned.predicted_naive + 1e-9,
                "chosen plan predicted costlier than naive for {text}"
            );
            let (naive_out, naive_reads) = cold_eval(&pager, &idx, &q);
            let (planned_out, planned_reads) = cold_eval(&pager, &idx, &planned.query);
            assert_eq!(
                naive_out, planned_out,
                "planned output diverged for {text} → {}",
                planned.query
            );
            assert!(
                planned_reads <= naive_reads,
                "planned ledger regressed for {text} → {}: {planned_reads} > {naive_reads}",
                planned.query
            );
            checked += 1;
            if !planned.steps.is_empty() {
                transformed += 1;
            }
        }
    }
    assert!(checked >= 40, "only {checked} trees exercised the property");
    assert!(
        transformed >= 5,
        "suite never exercised a non-identity plan ({transformed})"
    );
}

#[test]
fn ruinous_rewrite_is_never_chosen_and_gets_repaired() {
    let mut rng = StdRng::seed_from_u64(0xE11);
    let (dir, dns) = random_directory(&mut rng, 80);
    let pager = Pager::new(512, 64);
    let idx = IndexedDirectory::build(&pager, &dir).unwrap();
    let planner = Planner::new();

    let whole = "(null-dn ? sub ? objectClass=*)";
    for _ in 0..12 {
        let op = ["a", "d"][rng.gen_range(0..2)];
        let (a1, a2) = (random_atom(&mut rng, &dns), random_atom(&mut rng, &dns));

        // Plain a/d: the constrained rewrite is a candidate, but the
        // whole-directory empty operand must price it out.
        let plain = parse_query(&format!("({op} {a1} {a2})")).unwrap();
        let chosen = planner.plan(&plain);
        assert!(
            chosen
                .steps
                .iter()
                .all(|s| !matches!(s, Step::RewriteConstrained { .. })),
            "planner chose the ruinous rewrite for ({op} {a1} {a2}): {:?}",
            chosen.steps
        );

        // The same query arriving pre-rewritten with the paper's
        // (- X X) operand gets repaired, and the repair pays off on the
        // real ledger, not just in the estimate.
        let pop = if op == "a" { "ac" } else { "dc" };
        let legacy =
            parse_query(&format!("({pop} {a1} {a2} (- {whole} {whole}))")).unwrap();
        let repaired = planner.plan(&legacy);
        assert!(
            !repaired.steps.is_empty(),
            "planner left the (- X X) operand in place for {legacy}"
        );
        assert!(repaired.predicted_chosen < repaired.predicted_naive);
        let (legacy_out, legacy_reads) = cold_eval(&pager, &idx, &legacy);
        let (repaired_out, repaired_reads) = cold_eval(&pager, &idx, &repaired.query);
        assert_eq!(legacy_out, repaired_out, "repair changed bytes for {legacy}");
        assert!(
            repaired_reads < legacy_reads,
            "repair did not pay off for {legacy}: {repaired_reads} vs {legacy_reads}"
        );
    }
}

#[test]
fn template_traffic_replays_cached_plans_verbatim() {
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let (dir, dns) = random_directory(&mut rng, 60);
    let pager = Pager::new(512, 64);
    let idx = IndexedDirectory::build(&pager, &dir).unwrap();
    let planner = Planner::new();

    let template = |v: &str, dns: &[Dn]| {
        format!(
            "(& (& ({} ? sub ? objectClass=thing) ({} ? sub ? weight>=0)) \
                ({} ? sub ? kind={v}))",
            dns[0], dns[0], dns[0]
        )
    };
    // Train on the template's atoms, then plan twice with different
    // constants: the second must be a cache hit with the same steps and
    // identical bytes.
    let first_q = parse_query(&template("red", &dns)).unwrap();
    let observing = ObservingSource::new(&idx, planner.catalog());
    Evaluator::new(&observing, &pager).evaluate(&first_q).unwrap();

    let first = planner.plan(&first_q);
    assert!(!first.cache_hit);
    let second_q = parse_query(&template("blue", &dns)).unwrap();
    let second = planner.plan(&second_q);
    assert!(second.cache_hit, "template shape missed the plan cache");
    assert_eq!(first.steps, second.steps, "replayed steps drifted");
    let (naive_out, _) = cold_eval(&pager, &idx, &second_q);
    let (planned_out, _) = cold_eval(&pager, &idx, &second.query);
    assert_eq!(naive_out, planned_out);
    let snap = planner.snapshot();
    assert_eq!(snap.cache_hits, 1);
    assert_eq!(snap.cache_misses, 1);
}
