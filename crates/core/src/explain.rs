//! Query plans, human-readable — and measurable.
//!
//! [`explain`] renders a query tree with per-node operator, language
//! level, and the evaluation algorithm that will run — the paper's §8.2
//! bottom-up plan made visible. [`explain_traced`] additionally runs the
//! query and annotates each node with its measured cardinality and I/O.
//! [`analyze`] is the structured upgrade: it runs the query and returns
//! a [`QueryTrace`] with one [`netdir_obs::OperatorSpan`] per node —
//! elapsed time, pages, entries in/out, and the Theorem 8.3/8.4
//! *predicted* I/O next to the observed ledger — rendered by
//! [`QueryTrace::render`].

use crate::ast::Query;
use crate::cost::{predicted_node_io, CostInputs};
use crate::error::QueryResult;
use crate::eval::{AtomicSource, Evaluator, NodeTrace};
use crate::lang::classify;
use netdir_model::Entry;
use netdir_obs::{OperatorSpan, QueryTrace};
use netdir_pager::{PagedList, Pager};
use std::fmt::Write as _;

/// Render the static plan for `q`.
pub fn explain(q: &Query) -> String {
    let mut out = String::new();
    writeln!(out, "plan ({}, {} nodes):", classify(q), q.num_nodes())
        .expect("writing to a String cannot fail");
    render(q, 0, &mut out).expect("writing to a String cannot fail");
    out
}

fn render(q: &Query, depth: usize, out: &mut impl std::fmt::Write) -> std::fmt::Result {
    let pad = "  ".repeat(depth + 1);
    match q {
        Query::Atomic {
            base,
            scope,
            filter,
        } => {
            writeln!(out, "{pad}atomic [index probe/scope scan] ({base} ? {scope} ? {filter})")?;
        }
        Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => {
            let sym = match q {
                Query::And(..) => "&",
                Query::Or(..) => "|",
                _ => "-",
            };
            writeln!(out, "{pad}({sym}) [sorted-list merge, linear]")?;
            render(a, depth + 1, out)?;
            render(b, depth + 1, out)?;
        }
        Query::Hier { op, q1, q2, agg } => {
            let algo = match op {
                crate::ast::HierOp::Parents | crate::ast::HierOp::Children => {
                    "ComputeHSPC (Fig 2)"
                }
                _ => "ComputeHSAD (Fig 4)",
            };
            let filt = agg
                .as_ref()
                .map(|f| format!(" agg: {f}"))
                .unwrap_or_default();
            writeln!(out, "{pad}({}) [{algo}, linear]{filt}", op.symbol())?;
            render(q1, depth + 1, out)?;
            render(q2, depth + 1, out)?;
        }
        Query::HierPath {
            op,
            q1,
            q2,
            q3,
            agg,
        } => {
            let filt = agg
                .as_ref()
                .map(|f| format!(" agg: {f}"))
                .unwrap_or_default();
            writeln!(
                out,
                "{pad}({}) [ComputeHSADc (Fig 5), linear]{filt}",
                op.symbol()
            )?;
            render(q1, depth + 1, out)?;
            render(q2, depth + 1, out)?;
            render(q3, depth + 1, out)?;
        }
        Query::AggSelect { query, filter } => {
            writeln!(out, "{pad}(g) [≤2 scans, Thm 6.1] agg: {filter}")?;
            render(query, depth + 1, out)?;
        }
        Query::EmbedRef {
            op,
            q1,
            q2,
            attr,
            agg,
        } => {
            let filt = agg
                .as_ref()
                .map(|f| format!(" agg: {f}"))
                .unwrap_or_default();
            writeln!(
                out,
                "{pad}({}) [ComputeERAgg (Fig 3), sort-merge N log N] on {attr}{filt}",
                op.symbol()
            )?;
            render(q1, depth + 1, out)?;
            render(q2, depth + 1, out)?;
        }
    }
    Ok(())
}

/// Run `q` and render the plan annotated with measured cardinalities and
/// I/O per node (post-order trace mapped back onto the tree).
pub fn explain_traced<S: AtomicSource>(
    source: &S,
    pager: &Pager,
    q: &Query,
) -> QueryResult<(PagedList<Entry>, String)> {
    let (out, traces) = Evaluator::new(source, pager).evaluate_traced(q)?;
    let mut text = explain(q);
    writeln!(text, "measured (post-order):").expect("writing to a String cannot fail");
    for t in &traces {
        writeln!(
            text,
            "  {:<40} → {} entries, {} pages, {} I/Os",
            t.node,
            t.output_len,
            t.output_pages,
            t.io.total()
        )
        .expect("writing to a String cannot fail");
    }
    Ok((out, text))
}

/// Run `q` and return its result plus a structured per-operator
/// [`QueryTrace`] — `EXPLAIN ANALYZE` for network directories.
pub fn analyze<S: AtomicSource>(
    source: &S,
    pager: &Pager,
    q: &Query,
) -> QueryResult<(PagedList<Entry>, QueryTrace)> {
    let started = std::time::Instant::now();
    let (out, traces) = Evaluator::new(source, pager).evaluate_traced(q)?;
    let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Ok((out, build_trace(q, &traces, elapsed)))
}

/// The node's direct children, in evaluation order.
fn children(q: &Query) -> Vec<&Query> {
    match q {
        Query::Atomic { .. } => Vec::new(),
        Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => vec![a, b],
        Query::Hier { q1, q2, .. } => vec![q1, q2],
        Query::HierPath { q1, q2, q3, .. } => vec![q1, q2, q3],
        Query::AggSelect { query, .. } => vec![query],
        Query::EmbedRef { q1, q2, .. } => vec![q1, q2],
    }
}

/// Assemble a [`QueryTrace`] from the post-order [`NodeTrace`] list of
/// [`Evaluator::evaluate_traced`].
///
/// The evaluator emits traces in post-order (children before parent,
/// memoization off), so a post-order tree walk re-aligns each trace
/// with its node; spans come out in pre-order for display. Per-node
/// predictions use [`predicted_node_io`] over the pages flowing into
/// each operator, and the whole-query prediction is their *sum* — so
/// the top line always agrees with the per-node rows it prints. (The
/// whole-tree Theorem 8.3/8.4 formula, [`predicted_io`], charges every
/// node the full `|L|/B` even when inner operators see far smaller
/// lists; it remains the right instrument for the asymptotic-shape
/// experiments, not for EXPLAIN's reconciliation.)
pub fn build_trace(q: &Query, traces: &[NodeTrace], elapsed_nanos: u64) -> QueryTrace {
    struct Walk<'t> {
        traces: &'t [NodeTrace],
        next: usize,
        atomic_pages: u64,
        inputs: CostInputs,
    }

    impl Walk<'_> {
        /// Returns this subtree's spans in pre-order; `spans[0]` is the
        /// subtree root.
        fn walk(&mut self, q: &Query, depth: u32) -> Vec<OperatorSpan> {
            let kids: Vec<Vec<OperatorSpan>> = children(q)
                .into_iter()
                .map(|c| self.walk(c, depth + 1))
                .collect();
            let t = self
                .traces
                .get(self.next)
                .expect("one post-order trace per query node");
            self.next += 1;
            let input_pages = if kids.is_empty() {
                self.atomic_pages += t.output_pages;
                t.output_pages
            } else {
                kids.iter().map(|k| k[0].pages_out).sum()
            };
            let mut spans = vec![OperatorSpan {
                node: t.node.clone(),
                depth,
                entries_in: t.input_len,
                entries_out: t.output_len,
                pages_out: t.output_pages,
                reads: t.io.reads,
                writes: t.io.writes,
                elapsed_nanos: t.elapsed_nanos,
                predicted_io: predicted_node_io(q, input_pages, self.inputs),
            }];
            spans.extend(kids.into_iter().flatten());
            spans
        }
    }

    let mut walk = Walk {
        traces,
        next: 0,
        atomic_pages: 0,
        inputs: CostInputs {
            atomic_pages: 0,
            max_values_per_attr: 1,
        },
    };
    let spans = walk.walk(q, 0);
    debug_assert_eq!(walk.next, traces.len(), "trace list misaligned with tree");
    QueryTrace {
        query: q.to_string(),
        observed_io: spans.iter().map(|s| s.observed_io()).sum(),
        predicted_io: spans.iter().map(|s| s.predicted_io).sum(),
        spans,
        elapsed_nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use netdir_index::IndexedDirectory;
    use netdir_model::{Directory, Dn, Entry};
    use netdir_obs::TimeDisplay;
    use netdir_pager::tiny_pager;

    #[test]
    fn static_plan_names_the_algorithms() {
        let q = parse_query(
            "(dc (dc=att, dc=com ? sub ? objectClass=dcObject) \
                 (g (dc=att, dc=com ? sub ? sourcePort=25) count(x) > 1) \
                 (dc=att, dc=com ? sub ? objectClass=dcObject))",
        )
        .unwrap();
        let plan = explain(&q);
        assert!(plan.contains("plan (L2, 5 nodes)"), "{plan}");
        assert!(plan.contains("ComputeHSADc"));
        assert!(plan.contains("≤2 scans"));
        assert!(plan.contains("atomic"));
        // Indentation reflects nesting.
        assert!(plan.lines().any(|l| l.starts_with("      ")));
    }

    #[test]
    fn l3_plan_mentions_sort_merge() {
        let q = parse_query(
            "(vd (dc=com ? sub ? a=*) (dc=com ? sub ? b=*) refAttr)",
        )
        .unwrap();
        let plan = explain(&q);
        assert!(plan.contains("plan (L3"));
        assert!(plan.contains("sort-merge"));
        assert!(plan.contains("refAttr"));
    }

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    /// The loopback-test directory: three zones under `dc=com` plus
    /// `dc=org`, a traffic profile, and an SLA policy referencing it.
    fn dir() -> Directory {
        let mut d = Directory::new();
        let mut add = |e: Entry| d.insert(e).unwrap();
        let plain = |s: &str| Entry::builder(dn(s)).class("thing").build().unwrap();
        let person = |s: &str, sn: &str| {
            Entry::builder(dn(s))
                .class("thing")
                .attr("surName", sn)
                .build()
                .unwrap()
        };
        add(plain("dc=com"));
        add(plain("dc=att, dc=com"));
        add(plain("ou=people, dc=att, dc=com"));
        add(person("uid=jag, ou=people, dc=att, dc=com", "jagadish"));
        add(plain("dc=research, dc=att, dc=com"));
        add(plain("ou=people, dc=research, dc=att, dc=com"));
        add(person("uid=jag2, ou=people, dc=research, dc=att, dc=com", "jagadish"));
        add(plain("dc=org"));
        add(plain("ou=tp, dc=att, dc=com"));
        add(
            Entry::builder(dn("TPName=mail, ou=tp, dc=att, dc=com"))
                .class("trafficProfile")
                .attr("sourcePort", 25i64)
                .build()
                .unwrap(),
        );
        add(
            Entry::builder(dn("SLAPolicyName=mail, dc=research, dc=att, dc=com"))
                .class("SLAPolicyRules")
                .attr("SLATPRef", dn("TPName=mail, ou=tp, dc=att, dc=com"))
                .build()
                .unwrap(),
        );
        d
    }

    /// One query per language level, all nonempty against `dir()`.
    fn level_queries() -> Vec<(&'static str, &'static str)> {
        vec![
            (
                "L0",
                "(- (dc=att, dc=com ? sub ? surName=jagadish) \
                    (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
            ),
            (
                "L1",
                "(c (dc=com ? sub ? objectClass=thing) \
                    (dc=research, dc=att, dc=com ? base ? objectClass=thing))",
            ),
            (
                "L2",
                "(c (dc=com ? sub ? objectClass=thing) \
                    (dc=com ? sub ? objectClass=thing) \
                    count($2) > 1)",
            ),
            (
                "L3",
                "(vd (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
                     (dc=att, dc=com ? sub ? sourcePort=25) \
                     SLATPRef)",
            ),
        ]
    }

    /// Golden plans: the `explain` text for one query per level is
    /// pinned verbatim — a change here is a deliberate plan change.
    #[test]
    fn golden_static_plans_per_level() {
        let golden = [
            (
                "L0",
                "plan (L0, 3 nodes):\n\
                 \x20 (-) [sorted-list merge, linear]\n\
                 \x20   atomic [index probe/scope scan] (dc=att, dc=com ? sub ? surName=jagadish)\n\
                 \x20   atomic [index probe/scope scan] (dc=research, dc=att, dc=com ? sub ? surName=jagadish)\n",
            ),
            (
                "L1",
                "plan (L1, 3 nodes):\n\
                 \x20 (c) [ComputeHSPC (Fig 2), linear]\n\
                 \x20   atomic [index probe/scope scan] (dc=com ? sub ? objectClass=thing)\n\
                 \x20   atomic [index probe/scope scan] (dc=research, dc=att, dc=com ? base ? objectClass=thing)\n",
            ),
            (
                "L2",
                "plan (L2, 3 nodes):\n\
                 \x20 (c) [ComputeHSPC (Fig 2), linear] agg: count($2) > 1\n\
                 \x20   atomic [index probe/scope scan] (dc=com ? sub ? objectClass=thing)\n\
                 \x20   atomic [index probe/scope scan] (dc=com ? sub ? objectClass=thing)\n",
            ),
            (
                "L3",
                "plan (L3, 3 nodes):\n\
                 \x20 (vd) [ComputeERAgg (Fig 3), sort-merge N log N] on SLATPRef\n\
                 \x20   atomic [index probe/scope scan] (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)\n\
                 \x20   atomic [index probe/scope scan] (dc=att, dc=com ? sub ? sourcePort=25)\n",
            ),
        ];
        for ((level, text), (glevel, want)) in level_queries().iter().zip(golden.iter()) {
            assert_eq!(level, glevel);
            let q = parse_query(text).unwrap();
            let got = explain(&q);
            // Filter values render canonically (case-folded), so compare
            // case-insensitively.
            assert_eq!(
                got.to_lowercase(),
                want.to_lowercase(),
                "{level} plan drifted:\n{got}"
            );
        }
    }

    /// `analyze` over one query per level: spans align with the tree,
    /// observed I/O reconciles with the per-span ledger, and the
    /// redacted rendering is deterministic.
    #[test]
    fn analyze_reports_per_operator_spans_per_level() {
        for (level, text) in level_queries() {
            // A fresh pager per level: buffer-pool state is part of the
            // observed I/O, so determinism only holds run-for-run.
            let pager = tiny_pager();
            let idx = IndexedDirectory::build(&pager, &dir()).unwrap();
            let q = parse_query(text).unwrap();
            let (out, trace) = analyze(&idx, &pager, &q).unwrap();
            assert!(!out.is_empty(), "{level}: dead test query");
            assert_eq!(trace.spans.len(), q.num_nodes(), "{level}: span per node");
            assert_eq!(trace.root_entries(), out.len(), "{level}");
            // Root is depth 0; both leaves are depth 1.
            assert_eq!(trace.spans[0].depth, 0, "{level}");
            assert!(trace.spans[1..].iter().all(|s| s.depth == 1), "{level}");
            // Entries flowed into the root from its children.
            let child_out: u64 = trace.spans[1..].iter().map(|s| s.entries_out).sum();
            assert_eq!(trace.spans[0].entries_in, child_out, "{level}");
            // The totals reconcile with the spans.
            let span_io: u64 = trace.spans.iter().map(|s| s.observed_io()).sum();
            assert_eq!(trace.observed_io, span_io, "{level}");
            assert!(trace.predicted_io > 0.0, "{level}: no prediction");
            assert!(
                trace.spans.iter().all(|s| s.predicted_io > 0.0),
                "{level}: node without prediction"
            );

            // Determinism: two runs render identically once timing is
            // redacted (same directory, same pager geometry).
            let pager2 = tiny_pager();
            let idx2 = IndexedDirectory::build(&pager2, &dir()).unwrap();
            let (_, trace2) = analyze(&idx2, &pager2, &q).unwrap();
            assert_eq!(
                trace.render(TimeDisplay::Redact),
                trace2.render(TimeDisplay::Redact),
                "{level}: analyze output not deterministic"
            );
        }
    }

    /// The top-line prediction is the sum of the per-node rows (so
    /// EXPLAIN reconciles with itself), it never exceeds the coarse
    /// whole-tree Theorem 8.3/8.4 bound, and the L3 root still carries
    /// the sort-merge log factor.
    #[test]
    fn analyze_predictions_follow_the_theorems() {
        use crate::cost::predicted_io;
        let pager = tiny_pager();
        let idx = IndexedDirectory::build(&pager, &dir()).unwrap();
        let queries = level_queries();
        let l1 = parse_query(queries[1].1).unwrap();
        let l3 = parse_query(queries[3].1).unwrap();
        let (_, t1) = analyze(&idx, &pager, &l1).unwrap();
        let (_, t3) = analyze(&idx, &pager, &l3).unwrap();
        for (t, q, level) in [(&t1, &l1, "L1"), (&t3, &l3, "L3")] {
            // Top line = sum of the rows it prints.
            let span_sum: f64 = t.spans.iter().map(|s| s.predicted_io).sum();
            assert!(
                (t.predicted_io - span_sum).abs() < 1e-9,
                "{level}: top-line prediction disagrees with its rows"
            );
            // …and never exceeds the whole-tree formula, which charges
            // every node the full |L|/B. (Both queries are root + two
            // atomic leaves, so spans[1..] are exactly the leaves.)
            let atomic_pages: u64 = t.spans[1..].iter().map(|s| s.pages_out).sum();
            let bound = predicted_io(
                q,
                CostInputs {
                    atomic_pages,
                    max_values_per_attr: 1,
                },
            );
            assert!(
                t.predicted_io <= bound + 1e-9,
                "{level}: per-node sum {} above whole-tree bound {bound}",
                t.predicted_io
            );
        }
        // L3's root span predicts at least the linear cost of its input.
        let l3_inputs: u64 = t3.spans[1..].iter().map(|s| s.pages_out).sum();
        assert!(t3.spans[0].predicted_io >= l3_inputs.max(1) as f64);
    }
}
