//! Query plans, human-readable.
//!
//! [`explain`] renders a query tree with per-node operator, language
//! level, and the evaluation algorithm that will run — the paper's §8.2
//! bottom-up plan made visible. [`explain_traced`] additionally runs the
//! query and annotates each node with its measured cardinality and I/O.

use crate::ast::Query;
use crate::error::QueryResult;
use crate::eval::{AtomicSource, Evaluator};
use crate::lang::classify;
use netdir_model::Entry;
use netdir_pager::{PagedList, Pager};
use std::fmt::Write as _;

/// Render the static plan for `q`.
pub fn explain(q: &Query) -> String {
    let mut out = String::new();
    writeln!(out, "plan ({}, {} nodes):", classify(q), q.num_nodes()).unwrap();
    render(q, 0, &mut out);
    out
}

fn render(q: &Query, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth + 1);
    match q {
        Query::Atomic {
            base,
            scope,
            filter,
        } => {
            writeln!(out, "{pad}atomic [index probe/scope scan] ({base} ? {scope} ? {filter})")
                .unwrap();
        }
        Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => {
            let sym = match q {
                Query::And(..) => "&",
                Query::Or(..) => "|",
                _ => "-",
            };
            writeln!(out, "{pad}({sym}) [sorted-list merge, linear]").unwrap();
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Hier { op, q1, q2, agg } => {
            let algo = match op {
                crate::ast::HierOp::Parents | crate::ast::HierOp::Children => {
                    "ComputeHSPC (Fig 2)"
                }
                _ => "ComputeHSAD (Fig 4)",
            };
            let filt = agg
                .as_ref()
                .map(|f| format!(" agg: {f}"))
                .unwrap_or_default();
            writeln!(out, "{pad}({}) [{algo}, linear]{filt}", op.symbol()).unwrap();
            render(q1, depth + 1, out);
            render(q2, depth + 1, out);
        }
        Query::HierPath {
            op,
            q1,
            q2,
            q3,
            agg,
        } => {
            let filt = agg
                .as_ref()
                .map(|f| format!(" agg: {f}"))
                .unwrap_or_default();
            writeln!(
                out,
                "{pad}({}) [ComputeHSADc (Fig 5), linear]{filt}",
                op.symbol()
            )
            .unwrap();
            render(q1, depth + 1, out);
            render(q2, depth + 1, out);
            render(q3, depth + 1, out);
        }
        Query::AggSelect { query, filter } => {
            writeln!(out, "{pad}(g) [≤2 scans, Thm 6.1] agg: {filter}").unwrap();
            render(query, depth + 1, out);
        }
        Query::EmbedRef {
            op,
            q1,
            q2,
            attr,
            agg,
        } => {
            let filt = agg
                .as_ref()
                .map(|f| format!(" agg: {f}"))
                .unwrap_or_default();
            writeln!(
                out,
                "{pad}({}) [ComputeERAgg (Fig 3), sort-merge N log N] on {attr}{filt}",
                op.symbol()
            )
            .unwrap();
            render(q1, depth + 1, out);
            render(q2, depth + 1, out);
        }
    }
}

/// Run `q` and render the plan annotated with measured cardinalities and
/// I/O per node (post-order trace mapped back onto the tree).
pub fn explain_traced<S: AtomicSource>(
    source: &S,
    pager: &Pager,
    q: &Query,
) -> QueryResult<(PagedList<Entry>, String)> {
    let (out, traces) = Evaluator::new(source, pager).evaluate_traced(q)?;
    let mut text = explain(q);
    writeln!(text, "measured (post-order):").unwrap();
    for t in &traces {
        writeln!(
            text,
            "  {:<40} → {} entries, {} pages, {} I/Os",
            t.node,
            t.output_len,
            t.output_pages,
            t.io.total()
        )
        .unwrap();
    }
    Ok((out, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn static_plan_names_the_algorithms() {
        let q = parse_query(
            "(dc (dc=att, dc=com ? sub ? objectClass=dcObject) \
                 (g (dc=att, dc=com ? sub ? sourcePort=25) count(x) > 1) \
                 (dc=att, dc=com ? sub ? objectClass=dcObject))",
        )
        .unwrap();
        let plan = explain(&q);
        assert!(plan.contains("plan (L2, 5 nodes)"), "{plan}");
        assert!(plan.contains("ComputeHSADc"));
        assert!(plan.contains("≤2 scans"));
        assert!(plan.contains("atomic"));
        // Indentation reflects nesting.
        assert!(plan.lines().any(|l| l.starts_with("      ")));
    }

    #[test]
    fn l3_plan_mentions_sort_merge() {
        let q = parse_query(
            "(vd (dc=com ? sub ? a=*) (dc=com ? sub ? b=*) refAttr)",
        )
        .unwrap();
        let plan = explain(&q);
        assert!(plan.contains("plan (L3"));
        assert!(plan.contains("sort-merge"));
        assert!(plan.contains("refAttr"));
    }
}
