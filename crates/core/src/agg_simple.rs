//! Simple aggregate selection — the `g` operator (Section 6.1/6.3).
//!
//! `(g Q AggSelFilter)` keeps the entries of `Q` passing an aggregate
//! comparison over their own attribute values, possibly against
//! *entry-set* aggregates of the whole of `M(Q)` (`min(min(a))`,
//! `count($$)`…). Evaluation follows Theorem 6.1: at most two scans of the
//! input list — one accumulating per-entry and set-level aggregates, one
//! selecting — hence `O(|L1|/B)` I/O. When the filter involves no set
//! aggregates the first scan already selects and the second is skipped.

use crate::agg::{CompiledAggFilter, GlobalState, WitnessState};
use netdir_model::Entry;
use netdir_pager::{ListWriter, PagedList, Pager, PagerResult};

/// Evaluate `(g L1 filter)` over a sorted entry list. Output stays sorted
/// (selection preserves order).
pub fn simple_agg_select(
    pager: &Pager,
    l1: &PagedList<Entry>,
    filter: &CompiledAggFilter,
) -> PagerResult<PagedList<Entry>> {
    let no_wit = WitnessState::default();
    let mut globals = GlobalState::default();
    if !filter.needs_globals() {
        // Single scan suffices.
        let mut out = ListWriter::new(pager);
        for e in l1.iter() {
            let e = e?;
            if filter.accept(&e, &no_wit, &globals) {
                out.push(&e)?;
            }
        }
        return out.finish();
    }
    // Scan 1: accumulate set aggregates.
    for e in l1.iter() {
        let e = e?;
        filter.accumulate_global(&mut globals, &e, &no_wit);
    }
    // Scan 2: select.
    let mut out = ListWriter::new(pager);
    for e in l1.iter() {
        let e = e?;
        if filter.accept(&e, &no_wit, &globals) {
            out.push(&e)?;
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggAttribute, AggSelFilter, Aggregate, AttrRef, EntryAgg};
    use netdir_filter::atomic::IntOp;
    use netdir_model::Dn;
    use netdir_pager::tiny_pager;

    fn entry(name: &str, priorities: &[i64]) -> Entry {
        Entry::builder(Dn::parse(&format!("cn={name}, dc=com")).unwrap())
            .class("policy")
            .attr_values("SLAPVPRef", priorities.iter().map(|p| format!("ref{p}")))
            .attr_values("priority", priorities.iter().copied())
            .build()
            .unwrap()
    }

    fn input(pager: &Pager) -> PagedList<Entry> {
        let mut v = vec![
            entry("one", &[5]),
            entry("two", &[2, 7]),
            entry("three", &[3, 4, 9]),
        ];
        v.sort_by(|a, b| a.dn().cmp(b.dn()));
        PagedList::from_iter(pager, v).unwrap()
    }

    fn names(l: &PagedList<Entry>) -> Vec<String> {
        l.to_vec()
            .unwrap()
            .iter()
            .map(|e| e.first_str(&"cn".into()).unwrap().to_string())
            .collect()
    }

    fn compile(lhs: AggAttribute, op: IntOp, rhs: AggAttribute) -> CompiledAggFilter {
        CompiledAggFilter::compile(&AggSelFilter { lhs, op, rhs }, false).unwrap()
    }

    #[test]
    fn example_6_1_count_of_multivalued_attr() {
        // "policy rules that have more than one policy validity period":
        // count(SLAPVPRef) > 1.
        let pager = tiny_pager();
        let f = compile(
            AggAttribute::Entry(EntryAgg::Agg(
                Aggregate::Count,
                AttrRef::Own("SLAPVPRef".into()),
            )),
            IntOp::Gt,
            AggAttribute::Const(1),
        );
        let out = simple_agg_select(&pager, &input(&pager), &f).unwrap();
        let mut got = names(&out);
        got.sort();
        assert_eq!(got, vec!["three", "two"]);
    }

    #[test]
    fn min_equals_global_min() {
        // min(priority) = min(min(priority)) — the highest-priority rule.
        let pager = tiny_pager();
        let ea = EntryAgg::Agg(Aggregate::Min, AttrRef::Own("priority".into()));
        let f = compile(
            AggAttribute::Entry(ea.clone()),
            IntOp::Eq,
            AggAttribute::EntrySet(Aggregate::Min, Box::new(ea)),
        );
        let out = simple_agg_select(&pager, &input(&pager), &f).unwrap();
        assert_eq!(names(&out), vec!["two"]); // min 2
    }

    #[test]
    fn count_all_entries() {
        // count($$) = 3 is true for every entry (set-level), so all pass.
        let pager = tiny_pager();
        let f = compile(AggAttribute::CountAll, IntOp::Eq, AggAttribute::Const(3));
        let out = simple_agg_select(&pager, &input(&pager), &f).unwrap();
        assert_eq!(out.len(), 3);
        let f = compile(AggAttribute::CountAll, IntOp::Gt, AggAttribute::Const(3));
        let out = simple_agg_select(&pager, &input(&pager), &f).unwrap();
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn empty_input() {
        let pager = tiny_pager();
        let f = compile(AggAttribute::CountAll, IntOp::Ge, AggAttribute::Const(0));
        let out = simple_agg_select(&pager, &PagedList::empty(&pager), &f).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn io_is_at_most_two_scans_plus_output() {
        let pager = tiny_pager();
        let mut v: Vec<Entry> = (0..800)
            .map(|i| entry(&format!("e{i:04}"), &[i % 10]))
            .collect();
        v.sort_by(|a, b| a.dn().cmp(b.dn()));
        let l1 = PagedList::from_iter(&pager, v).unwrap();
        let ea = EntryAgg::Agg(Aggregate::Min, AttrRef::Own("priority".into()));
        let f = compile(
            AggAttribute::Entry(ea.clone()),
            IntOp::Eq,
            AggAttribute::EntrySet(Aggregate::Min, Box::new(ea)),
        );
        pager.flush().unwrap();
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        let out = simple_agg_select(&pager, &l1, &f).unwrap();
        pager.flush().unwrap();
        let io = pager.io();
        assert_eq!(out.len(), 80);
        let bound = 2 * l1.num_pages() + out.num_pages() + 4;
        assert!(
            io.total() <= bound,
            "simple agg used {} I/Os, two-scan bound {}",
            io.total(),
            bound
        );
    }
}
