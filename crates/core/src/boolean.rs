//! Boolean operators over sorted entry lists (Section 4.2).
//!
//! `(&)`, `(|)` and `(-)` over reverse-DN-sorted lists are single-pass
//! merges in the style of Jacobson et al. \[21\]: advance two cursors,
//! compare keys, emit per the operator's truth table. Each input page is
//! read once and each output page written once — `O((|L1|+|L2|)/B)` I/Os —
//! and the output is again sorted, which is what lets operators pipeline
//! without re-sorting (Section 8.2).

use netdir_model::Entry;
use netdir_pager::{ListWriter, PagedList, Pager, PagerResult};
use std::cmp::Ordering;

/// Which boolean operator a merge computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOp {
    /// Intersection `&`.
    And,
    /// Union `|`.
    Or,
    /// Difference `-`.
    Diff,
}

/// Merge two sorted entry lists under `op`, producing a sorted list.
///
/// The merge is fully lazy: cursors compare the records' reverse-DN
/// *page keys* (extracted without decoding) and emitted records pass
/// through as raw bytes — no entry on either input is ever materialized.
pub fn merge(
    pager: &Pager,
    op: BoolOp,
    l1: &PagedList<Entry>,
    l2: &PagedList<Entry>,
) -> PagerResult<PagedList<Entry>> {
    let mut out = ListWriter::new(pager);
    let mut it1 = l1.iter_raw();
    let mut it2 = l2.iter_raw();
    let mut e1 = it1.next().transpose()?;
    let mut e2 = it2.next().transpose()?;

    loop {
        match (&e1, &e2) {
            (None, None) => break,
            (Some(a), None) => {
                if matches!(op, BoolOp::Or | BoolOp::Diff) {
                    out.push_raw(a)?;
                }
                e1 = it1.next().transpose()?;
            }
            (None, Some(b)) => {
                if matches!(op, BoolOp::Or) {
                    out.push_raw(b)?;
                }
                e2 = it2.next().transpose()?;
            }
            (Some(a), Some(b)) => match a.key().cmp(b.key()) {
                Ordering::Less => {
                    if matches!(op, BoolOp::Or | BoolOp::Diff) {
                        out.push_raw(a)?;
                    }
                    e1 = it1.next().transpose()?;
                }
                Ordering::Greater => {
                    if matches!(op, BoolOp::Or) {
                        out.push_raw(b)?;
                    }
                    e2 = it2.next().transpose()?;
                }
                Ordering::Equal => {
                    if matches!(op, BoolOp::And | BoolOp::Or) {
                        out.push_raw(a)?;
                    }
                    e1 = it1.next().transpose()?;
                    e2 = it2.next().transpose()?;
                }
            },
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_model::Dn;
    use netdir_pager::tiny_pager;

    fn entry(s: &str) -> Entry {
        Entry::builder(Dn::parse(s).unwrap())
            .class("t")
            .build()
            .unwrap()
    }

    fn list(pager: &Pager, dns: &[&str]) -> PagedList<Entry> {
        let mut v: Vec<Entry> = dns.iter().map(|s| entry(s)).collect();
        v.sort_by(|a, b| a.dn().cmp(b.dn()));
        PagedList::from_iter(pager, v).unwrap()
    }

    fn dns(l: &PagedList<Entry>) -> Vec<String> {
        l.to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect()
    }

    #[test]
    fn boolean_truth_tables() {
        let pager = tiny_pager();
        let a = list(&pager, &["dc=a", "dc=b", "dc=c"]);
        let b = list(&pager, &["dc=b", "dc=c", "dc=d"]);

        assert_eq!(dns(&merge(&pager, BoolOp::And, &a, &b).unwrap()), vec!["dc=b", "dc=c"]);
        assert_eq!(
            dns(&merge(&pager, BoolOp::Or, &a, &b).unwrap()),
            vec!["dc=a", "dc=b", "dc=c", "dc=d"]
        );
        assert_eq!(dns(&merge(&pager, BoolOp::Diff, &a, &b).unwrap()), vec!["dc=a"]);
        assert_eq!(dns(&merge(&pager, BoolOp::Diff, &b, &a).unwrap()), vec!["dc=d"]);
    }

    #[test]
    fn empty_operands() {
        let pager = tiny_pager();
        let a = list(&pager, &["dc=a"]);
        let empty = PagedList::empty(&pager);
        assert_eq!(dns(&merge(&pager, BoolOp::And, &a, &empty).unwrap()), Vec::<String>::new());
        assert_eq!(dns(&merge(&pager, BoolOp::Or, &a, &empty).unwrap()), vec!["dc=a"]);
        assert_eq!(dns(&merge(&pager, BoolOp::Or, &empty, &a).unwrap()), vec!["dc=a"]);
        assert_eq!(dns(&merge(&pager, BoolOp::Diff, &a, &empty).unwrap()), vec!["dc=a"]);
        assert_eq!(dns(&merge(&pager, BoolOp::Diff, &empty, &a).unwrap()), Vec::<String>::new());
    }

    #[test]
    fn output_is_sorted_and_hierarchy_aware() {
        let pager = tiny_pager();
        let a = list(&pager, &["dc=x, dc=a", "dc=a"]);
        let b = list(&pager, &["dc=b", "dc=y, dc=x, dc=a"]);
        let got = dns(&merge(&pager, BoolOp::Or, &a, &b).unwrap());
        assert_eq!(got, vec!["dc=a", "dc=x, dc=a", "dc=y, dc=x, dc=a", "dc=b"]);
    }

    #[test]
    fn io_is_linear_in_pages() {
        let pager = tiny_pager();
        let a_dns: Vec<String> = (0..500).map(|i| format!("dc=a{i:04}")).collect();
        let b_dns: Vec<String> = (250..750).map(|i| format!("dc=a{i:04}")).collect();
        let a = list(&pager, &a_dns.iter().map(String::as_str).collect::<Vec<_>>());
        let b = list(&pager, &b_dns.iter().map(String::as_str).collect::<Vec<_>>());
        pager.flush().unwrap();
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        let out = merge(&pager, BoolOp::And, &a, &b).unwrap();
        pager.flush().unwrap();
        let io = pager.io();
        assert_eq!(out.len(), 250);
        let expected = a.num_pages() + b.num_pages() + out.num_pages();
        assert!(
            io.total() <= expected + 4,
            "merge cost {} vs linear bound {}",
            io.total(),
            expected
        );
    }
}
