//! Candidate-plan enumeration: the semantics-preserving transformations
//! the chooser ranks by estimated cost.
//!
//! Every candidate is expressed as a [`Step`] — a small structural edit
//! addressed by a path of child indices — rather than a whole rewritten
//! tree, so the plan cache can replay a winning step sequence on any
//! later query of the same shape without re-enumerating.
//!
//! The transformation inventory, and why each preserves bytes:
//!
//! * **Boolean-merge reordering** — `&`/`|` are commutative and
//!   associative over reverse-DN-sorted *sets*, so re-associating a
//!   merge chain so the smallest estimated lists combine first shrinks
//!   every intermediate without changing the final sorted list.
//! * **Base tightening** — in `(& (b1 ? sub ? f1) (b2 ? sub ? f2))`
//!   with `b2` a proper descendant of `b1`, every result entry lies
//!   under `b2`, so the wider atom can be re-based at `b2` and scan a
//!   fraction of the directory.
//! * **Diff short-circuit** — `(- X X)` is empty for any `X`; replace it
//!   with the constant-false atomic (zero I/O instead of two `X` scans).
//! * **De-rewrite** — `ac`/`dc` with a provably-empty blocker operand is
//!   exactly `a`/`d` (nothing can block), dropping a whole operand. This
//!   is the *safe* inverse of Theorem 8.2(d); the `p`/`c` direction is
//!   deliberately absent because it coincides only on dense directories.
//! * **Constrained rewrite** — the Theorem 8.2(d) `a`/`d` → `ac`/`dc`
//!   rewrite with the paper's `(- X X)` whole-directory empty operand.
//!   Enumerated so the cost model can *reject* it: E11 measures the
//!   blow-up, and the regression suite asserts it is never chosen while
//!   the plain operator is available.

use crate::ast::{HierOp, HierPathOp, Query};
use crate::planner::estimate::estimate;
use crate::planner::stats::StatsCatalog;
use crate::rewrite::{empty_query, whole_directory};
use netdir_filter::{AtomicFilter, Scope};

/// One structural edit on a query tree. Paths are child indices in
/// operand order from the root; an empty path addresses the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Re-associate the maximal `&`-or-`|` chain rooted at `path` into a
    /// left-deep tree combining operands in `order` (indices into the
    /// flattened operand list, in merge order).
    ReorderBool {
        /// Path to the chain root.
        path: Vec<u8>,
        /// Permutation of the flattened operands.
        order: Vec<u8>,
    },
    /// Narrow the wider operand of an `&` of two `sub`-scope atomics to
    /// the deeper base.
    TightenBase {
        /// Path to the `&` node.
        path: Vec<u8>,
    },
    /// Replace `(- X X)` with the constant-false atomic.
    ShortCircuitDiff {
        /// Path to the `-` node.
        path: Vec<u8>,
    },
    /// Replace `ac`/`dc` with a provably-empty blocker by plain `a`/`d`.
    DeRewrite {
        /// Path to the `ac`/`dc` node.
        path: Vec<u8>,
    },
    /// The Theorem 8.2(d) rewrite of plain `a`/`d` into `ac`/`dc` with
    /// the paper's `(- X X)` empty operand — the ruinous candidate.
    RewriteConstrained {
        /// Path to the `a`/`d` node.
        path: Vec<u8>,
    },
}

impl Step {
    /// Apply this edit to `q`. `None` when the tree doesn't match the
    /// step (a cache replay against a drifted shape): the caller falls
    /// back to fresh planning — never to a wrong plan.
    pub fn apply(&self, q: &Query) -> Option<Query> {
        match self {
            Step::ReorderBool { path, order } => rewrite_at(q, path, &|node| {
                let (kind, operands) = flatten_chain(node)?;
                if order.len() != operands.len() || order.len() < 2 {
                    return None;
                }
                let mut sorted: Vec<u8> = order.clone();
                sorted.sort_unstable();
                if sorted.iter().enumerate().any(|(i, &o)| o as usize != i) {
                    return None; // not a permutation
                }
                let mut it = order.iter().map(|&i| operands[i as usize].clone());
                let first = it.next()?;
                Some(it.fold(first, |acc, next| match kind {
                    BoolKind::And => Query::and(acc, next),
                    BoolKind::Or => Query::or(acc, next),
                }))
            }),
            Step::TightenBase { path } => rewrite_at(q, path, &|node| {
                let Query::And(a, b) = node else { return None };
                let (wide, deep_base) = tightening(a, b)?;
                let Query::Atomic { scope, filter, .. } = wide else {
                    return None;
                };
                let narrowed = Query::atomic(deep_base.clone(), *scope, filter.clone());
                Some(if wide == a.as_ref() {
                    Query::and(narrowed, (**b).clone())
                } else {
                    Query::and((**a).clone(), narrowed)
                })
            }),
            Step::ShortCircuitDiff { path } => rewrite_at(q, path, &|node| match node {
                Query::Diff(a, b) if a == b => Some(empty_query()),
                _ => None,
            }),
            Step::DeRewrite { path } => rewrite_at(q, path, &|node| match node {
                Query::HierPath {
                    op,
                    q1,
                    q2,
                    q3,
                    agg,
                } if is_statically_empty(q3) => Some(Query::Hier {
                    op: match op {
                        HierPathOp::AncestorsConstrained => HierOp::Ancestors,
                        HierPathOp::DescendantsConstrained => HierOp::Descendants,
                    },
                    q1: q1.clone(),
                    q2: q2.clone(),
                    agg: agg.clone(),
                }),
                _ => None,
            }),
            Step::RewriteConstrained { path } => rewrite_at(q, path, &|node| match node {
                Query::Hier { op, q1, q2, agg } => {
                    let path_op = match op {
                        HierOp::Ancestors => HierPathOp::AncestorsConstrained,
                        HierOp::Descendants => HierPathOp::DescendantsConstrained,
                        // p/c only coincide with their rewrite on dense
                        // directories — never a planner transformation.
                        HierOp::Parents | HierOp::Children => return None,
                    };
                    Some(Query::HierPath {
                        op: path_op,
                        q1: q1.clone(),
                        q2: q2.clone(),
                        q3: Box::new(Query::diff(whole_directory(), whole_directory())),
                        agg: agg.clone(),
                    })
                }
                _ => None,
            }),
        }
    }

    /// Short human-readable label (metrics, EXPLAIN surfaces).
    pub fn kind(&self) -> &'static str {
        match self {
            Step::ReorderBool { .. } => "reorder-bool",
            Step::TightenBase { .. } => "tighten-base",
            Step::ShortCircuitDiff { .. } => "short-circuit-diff",
            Step::DeRewrite { .. } => "de-rewrite",
            Step::RewriteConstrained { .. } => "rewrite-constrained",
        }
    }
}

/// Apply every step in order; `None` as soon as one fails to match.
pub fn apply_steps(q: &Query, steps: &[Step]) -> Option<Query> {
    let mut current = q.clone();
    for s in steps {
        current = s.apply(&current)?;
    }
    Some(current)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoolKind {
    And,
    Or,
}

fn bool_kind(q: &Query) -> Option<BoolKind> {
    match q {
        Query::And(..) => Some(BoolKind::And),
        Query::Or(..) => Some(BoolKind::Or),
        _ => None,
    }
}

/// Flatten the maximal same-operator chain rooted at `q` into its
/// operands, in order.
fn flatten_chain(q: &Query) -> Option<(BoolKind, Vec<&Query>)> {
    let kind = bool_kind(q)?;
    fn collect<'q>(q: &'q Query, kind: BoolKind, out: &mut Vec<&'q Query>) {
        match (q, kind) {
            (Query::And(a, b), BoolKind::And) | (Query::Or(a, b), BoolKind::Or) => {
                collect(a, kind, out);
                collect(b, kind, out);
            }
            _ => out.push(q),
        }
    }
    let mut operands = Vec::new();
    collect(q, kind, &mut operands);
    Some((kind, operands))
}

/// For `(& a b)`: if both are `sub`-scope atomics with one base a proper
/// descendant of the other, return the *wider* operand and the deeper
/// base it should be narrowed to.
fn tightening<'q>(a: &'q Query, b: &'q Query) -> Option<(&'q Query, &'q netdir_model::Dn)> {
    let (Query::Atomic {
        base: ba,
        scope: Scope::Sub,
        ..
    }, Query::Atomic {
        base: bb,
        scope: Scope::Sub,
        ..
    }) = (a, b)
    else {
        return None;
    };
    if ba.is_ancestor_of(bb) && ba != bb {
        Some((a, bb))
    } else if bb.is_ancestor_of(ba) && ba != bb {
        Some((b, ba))
    } else {
        None
    }
}

/// True iff `q` provably evaluates to the empty list, by structure
/// alone: the constant-false atomic, or a `Diff` of identical operands.
pub fn is_statically_empty(q: &Query) -> bool {
    match q {
        Query::Atomic {
            filter: AtomicFilter::False,
            ..
        } => true,
        Query::Diff(a, b) => a == b,
        _ => false,
    }
}

/// Enumerate every applicable step on `q`, deterministically.
///
/// `ReorderBool` proposals order the flattened operands by ascending
/// estimated pages under `catalog` (ties broken by original position, so
/// enumeration is stable).
pub fn enumerate_steps(q: &Query, catalog: &StatsCatalog) -> Vec<Step> {
    let mut steps = Vec::new();
    walk(q, None, &mut Vec::new(), catalog, &mut steps);
    steps
}

fn walk(
    q: &Query,
    parent_kind: Option<BoolKind>,
    path: &mut Vec<u8>,
    catalog: &StatsCatalog,
    steps: &mut Vec<Step>,
) {
    let kind = bool_kind(q);
    match q {
        Query::And(a, b) | Query::Or(a, b) => {
            // Only propose a reorder at the *root* of a same-op chain;
            // interior nodes are covered by the root's flattening.
            if kind != parent_kind {
                if let Some((_, operands)) = flatten_chain(q) {
                    if operands.len() >= 2 && operands.len() <= u8::MAX as usize {
                        let mut order: Vec<u8> = (0..operands.len() as u8).collect();
                        order.sort_by(|&x, &y| {
                            let px = estimate(operands[x as usize], catalog).pages;
                            let py = estimate(operands[y as usize], catalog).pages;
                            px.partial_cmp(&py)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(x.cmp(&y))
                        });
                        steps.push(Step::ReorderBool {
                            path: path.clone(),
                            order,
                        });
                    }
                }
            }
            if matches!(q, Query::And(..)) && tightening(a, b).is_some() {
                steps.push(Step::TightenBase { path: path.clone() });
            }
        }
        Query::Diff(a, b) if a == b => {
            steps.push(Step::ShortCircuitDiff { path: path.clone() });
        }
        Query::HierPath { q3, .. } if is_statically_empty(q3) => {
            steps.push(Step::DeRewrite { path: path.clone() });
        }
        Query::Hier {
            op: HierOp::Ancestors | HierOp::Descendants,
            ..
        } => {
            steps.push(Step::RewriteConstrained { path: path.clone() });
        }
        _ => {}
    }
    for (i, c) in children(q).into_iter().enumerate() {
        path.push(i as u8);
        walk(c, kind, path, catalog, steps);
        path.pop();
    }
}

/// The node's children in operand order.
fn children(q: &Query) -> Vec<&Query> {
    match q {
        Query::Atomic { .. } => Vec::new(),
        Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => vec![a, b],
        Query::Hier { q1, q2, .. } => vec![q1, q2],
        Query::HierPath { q1, q2, q3, .. } => vec![q1, q2, q3],
        Query::AggSelect { query, .. } => vec![query],
        Query::EmbedRef { q1, q2, .. } => vec![q1, q2],
    }
}

/// Rebuild `q` with the node at `path` replaced by `f(node)`; `None`
/// when the path dangles or `f` declines.
fn rewrite_at(q: &Query, path: &[u8], f: &dyn Fn(&Query) -> Option<Query>) -> Option<Query> {
    let Some((&idx, rest)) = path.split_first() else {
        return f(q);
    };
    let idx = idx as usize;
    let rebuild = |child: Query, q: &Query, at: usize| -> Option<Query> {
        Some(match (q, at) {
            (Query::And(a, _), 1) => Query::and((**a).clone(), child),
            (Query::And(_, b), 0) => Query::and(child, (**b).clone()),
            (Query::Or(a, _), 1) => Query::or((**a).clone(), child),
            (Query::Or(_, b), 0) => Query::or(child, (**b).clone()),
            (Query::Diff(a, _), 1) => Query::diff((**a).clone(), child),
            (Query::Diff(_, b), 0) => Query::diff(child, (**b).clone()),
            (Query::Hier { op, q1, q2, agg }, at) if at < 2 => Query::Hier {
                op: *op,
                q1: if at == 0 {
                    Box::new(child.clone())
                } else {
                    q1.clone()
                },
                q2: if at == 1 { Box::new(child) } else { q2.clone() },
                agg: agg.clone(),
            },
            (
                Query::HierPath {
                    op,
                    q1,
                    q2,
                    q3,
                    agg,
                },
                at,
            ) if at < 3 => Query::HierPath {
                op: *op,
                q1: if at == 0 {
                    Box::new(child.clone())
                } else {
                    q1.clone()
                },
                q2: if at == 1 {
                    Box::new(child.clone())
                } else {
                    q2.clone()
                },
                q3: if at == 2 { Box::new(child) } else { q3.clone() },
                agg: agg.clone(),
            },
            (Query::AggSelect { filter, .. }, 0) => Query::AggSelect {
                query: Box::new(child),
                filter: filter.clone(),
            },
            (
                Query::EmbedRef {
                    op,
                    q1,
                    q2,
                    attr,
                    agg,
                },
                at,
            ) if at < 2 => Query::EmbedRef {
                op: *op,
                q1: if at == 0 {
                    Box::new(child.clone())
                } else {
                    q1.clone()
                },
                q2: if at == 1 { Box::new(child) } else { q2.clone() },
                attr: attr.clone(),
                agg: agg.clone(),
            },
            _ => return None,
        })
    };
    let kids = children(q);
    let child = kids.get(idx)?;
    let new_child = rewrite_at(child, rest, f)?;
    rebuild(new_child, q, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_model::Dn;

    fn atom(base: &str, kind: &str) -> Query {
        Query::atomic(
            Dn::parse(base).unwrap(),
            Scope::Sub,
            AtomicFilter::eq("kind", kind),
        )
    }

    #[test]
    fn reorder_rebuilds_left_deep_in_order() {
        let q = Query::or(
            Query::or(atom("dc=test", "a"), atom("dc=test", "b")),
            atom("dc=test", "c"),
        );
        let step = Step::ReorderBool {
            path: vec![],
            order: vec![2, 0, 1],
        };
        let got = step.apply(&q).unwrap();
        let want = Query::or(
            Query::or(atom("dc=test", "c"), atom("dc=test", "a")),
            atom("dc=test", "b"),
        );
        assert_eq!(got, want);
        // A non-permutation is rejected, not misapplied.
        let bad = Step::ReorderBool {
            path: vec![],
            order: vec![0, 0, 1],
        };
        assert!(bad.apply(&q).is_none());
    }

    #[test]
    fn tighten_narrows_the_wider_base() {
        let q = Query::and(
            atom("dc=test", "a"),
            atom("n=e1, dc=test", "b"),
        );
        let got = Step::TightenBase { path: vec![] }.apply(&q).unwrap();
        let want = Query::and(
            atom("n=e1, dc=test", "a"),
            atom("n=e1, dc=test", "b"),
        );
        assert_eq!(got, want);
        // Unrelated bases don't tighten.
        let q = Query::and(atom("dc=test", "a"), atom("dc=other", "b"));
        assert!(Step::TightenBase { path: vec![] }.apply(&q).is_none());
    }

    #[test]
    fn de_rewrite_and_short_circuit_round_trip() {
        let x = atom("dc=test", "x");
        let diffxx = Query::diff(x.clone(), x.clone());
        let q = Query::hier_path(
            HierPathOp::AncestorsConstrained,
            atom("dc=test", "a"),
            atom("dc=test", "b"),
            diffxx.clone(),
        );
        assert!(is_statically_empty(&diffxx));
        let plain = Step::DeRewrite { path: vec![] }.apply(&q).unwrap();
        assert_eq!(
            plain,
            Query::hier(HierOp::Ancestors, atom("dc=test", "a"), atom("dc=test", "b"))
        );
        // The ruinous direction exists as a candidate…
        let back = Step::RewriteConstrained { path: vec![] }.apply(&plain).unwrap();
        assert!(matches!(back, Query::HierPath { .. }));
        // …and p/c refuse it.
        let pc = Query::hier(HierOp::Parents, atom("dc=test", "a"), atom("dc=test", "b"));
        assert!(Step::RewriteConstrained { path: vec![] }.apply(&pc).is_none());
    }

    #[test]
    fn steps_apply_at_deep_paths() {
        let inner = Query::diff(atom("dc=test", "x"), atom("dc=test", "x"));
        let q = Query::hier(
            HierOp::Children,
            atom("dc=test", "a"),
            Query::and(atom("dc=test", "b"), inner),
        );
        let got = Step::ShortCircuitDiff { path: vec![1, 1] }.apply(&q).unwrap();
        match &got {
            Query::Hier { q2, .. } => match q2.as_ref() {
                Query::And(_, rhs) => assert!(is_statically_empty(rhs)),
                other => panic!("unexpected shape {other}"),
            },
            other => panic!("unexpected shape {other}"),
        }
        // Dangling path → None, never a panic.
        assert!(Step::ShortCircuitDiff { path: vec![4] }.apply(&q).is_none());
    }

    #[test]
    fn enumeration_finds_each_family() {
        let cat = StatsCatalog::new();
        let q = Query::and(
            Query::and(atom("dc=test", "a"), atom("n=e1, dc=test", "b")),
            Query::hier(
                HierOp::Descendants,
                atom("dc=test", "c"),
                Query::diff(atom("dc=test", "d"), atom("dc=test", "d")),
            ),
        );
        let steps = enumerate_steps(&q, &cat);
        let kinds: Vec<&str> = steps.iter().map(Step::kind).collect();
        assert!(kinds.contains(&"reorder-bool"));
        assert!(kinds.contains(&"tighten-base"));
        assert!(kinds.contains(&"short-circuit-diff"));
        assert!(kinds.contains(&"rewrite-constrained"));
        // The nested And is part of the root chain — exactly one reorder.
        assert_eq!(kinds.iter().filter(|k| **k == "reorder-bool").count(), 1);
    }
}
