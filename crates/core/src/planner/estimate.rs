//! Cardinality and cost estimation over query trees.
//!
//! Estimates flow bottom-up exactly the way evaluation does: each
//! atomic leaf is looked up in the [`StatsCatalog`] by shape (falling
//! back to a neutral default when the shape has never been observed),
//! and each operator derives its output estimate from its children —
//! intersection takes the smaller side, union the sum, selection
//! operators are bounded by their candidate list. The cost of a plan is
//! the sum of [`predicted_node_io`] over every node, fed the *estimated*
//! pages flowing into it — the same per-node shape EXPLAIN ANALYZE
//! reports, so observed feedback calibrates exactly the quantity the
//! chooser ranks by.

use crate::ast::Query;
use crate::cost::{predicted_node_io, CostInputs};
use crate::planner::stats::StatsCatalog;
use netdir_filter::AtomicFilter;

/// Neutral default for a never-observed atomic shape.
const DEFAULT_ENTRIES: f64 = 64.0;
/// Neutral default pages for a never-observed atomic shape.
const DEFAULT_PAGES: f64 = 8.0;
/// `m` (max values per attribute) used for the L3 sort-merge term until
/// the catalog has better information.
const DEFAULT_MAX_VALUES: u64 = 4;

/// An estimated intermediate result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated cardinality.
    pub entries: f64,
    /// Estimated size in pages.
    pub pages: f64,
}

impl Estimate {
    fn zero() -> Estimate {
        Estimate {
            entries: 0.0,
            pages: 0.0,
        }
    }
}

/// Estimate the output of `q` under `catalog`'s statistics.
pub fn estimate(q: &Query, catalog: &StatsCatalog) -> Estimate {
    match q {
        Query::Atomic {
            base,
            scope,
            filter,
        } => {
            // A constant-false atomic is empty by construction — no
            // observation needed (and none will ever arrive to say
            // otherwise, since its shape predicts itself).
            if matches!(filter, AtomicFilter::False) {
                return Estimate::zero();
            }
            match catalog.lookup(base, *scope, filter) {
                Some(s) => Estimate {
                    entries: s.entries,
                    pages: s.pages,
                },
                None => Estimate {
                    entries: DEFAULT_ENTRIES,
                    pages: DEFAULT_PAGES,
                },
            }
        }
        Query::And(a, b) => {
            let (ea, eb) = (estimate(a, catalog), estimate(b, catalog));
            Estimate {
                entries: ea.entries.min(eb.entries),
                pages: ea.pages.min(eb.pages),
            }
        }
        Query::Or(a, b) => {
            let (ea, eb) = (estimate(a, catalog), estimate(b, catalog));
            Estimate {
                entries: ea.entries + eb.entries,
                pages: ea.pages + eb.pages,
            }
        }
        Query::Diff(a, b) => {
            // Structurally-identical operands cancel exactly; otherwise
            // the left side bounds the result.
            if a == b {
                Estimate::zero()
            } else {
                estimate(a, catalog)
            }
        }
        // The hierarchy/reference operators select a subset of their
        // candidate list `q1`.
        Query::Hier { q1, .. } | Query::HierPath { q1, .. } | Query::EmbedRef { q1, .. } => {
            estimate(q1, catalog)
        }
        Query::AggSelect { query, .. } => estimate(query, catalog),
    }
}

/// A vanishing per-node charge that breaks exact cost ties toward the
/// *smaller* tree (e.g. de-rewriting `ac` whose blocker operand is
/// already free). Far below one page, so it never outvotes a real I/O
/// difference.
const NODE_EPS: f64 = 1e-6;

/// The estimated total I/O of evaluating `q`: the sum over every node of
/// [`predicted_node_io`] applied to the estimated pages flowing into it
/// (children's outputs for operators, own output for leaves), plus
/// [`NODE_EPS`] per node as a smaller-tree tie-breaker.
pub fn plan_cost(q: &Query, catalog: &StatsCatalog) -> f64 {
    let inputs = CostInputs {
        atomic_pages: 0,
        max_values_per_attr: DEFAULT_MAX_VALUES,
    };
    fn walk(q: &Query, catalog: &StatsCatalog, inputs: CostInputs, total: &mut f64) -> Estimate {
        let children: Vec<&Query> = match q {
            Query::Atomic { .. } => Vec::new(),
            Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => vec![a, b],
            Query::Hier { q1, q2, .. } => vec![q1, q2],
            Query::HierPath { q1, q2, q3, .. } => vec![q1, q2, q3],
            Query::AggSelect { query, .. } => vec![query],
            Query::EmbedRef { q1, q2, .. } => vec![q1, q2],
        };
        let out = estimate(q, catalog);
        let input_pages = if children.is_empty() {
            out.pages
        } else {
            children
                .iter()
                .map(|c| walk(c, catalog, inputs, total).pages)
                .sum()
        };
        // predicted_node_io takes whole pages; round up so sub-page
        // estimates still register.
        *total += predicted_node_io(q, input_pages.ceil() as u64, inputs) + NODE_EPS;
        out
    }
    let mut total = 0.0;
    walk(q, catalog, inputs, &mut total);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{HierOp, HierPathOp};
    use crate::rewrite::{empty_query, whole_directory};
    use netdir_filter::Scope;
    use netdir_model::Dn;

    fn atom(kind: &str) -> Query {
        Query::atomic(
            Dn::parse("dc=test").unwrap(),
            Scope::Sub,
            AtomicFilter::eq("kind", kind),
        )
    }

    #[test]
    fn false_atomic_estimates_empty_and_free() {
        let cat = StatsCatalog::new();
        let e = estimate(&empty_query(), &cat);
        assert_eq!(e.entries, 0.0);
        assert_eq!(e.pages, 0.0);
        assert!(plan_cost(&empty_query(), &cat) < 1e-3, "only the tie-break term");
    }

    #[test]
    fn catalog_feedback_moves_the_estimate() {
        let cat = StatsCatalog::new();
        let q = atom("red");
        let before = estimate(&q, &cat);
        assert_eq!(before.entries, DEFAULT_ENTRIES);
        cat.observe(
            &Dn::parse("dc=test").unwrap(),
            Scope::Sub,
            &AtomicFilter::eq("kind", "red"),
            500,
            40,
        );
        let after = estimate(&q, &cat);
        assert_eq!(after.entries, 500.0);
        // Same shape, different constant → shares the observed row.
        assert_eq!(estimate(&atom("never-observed"), &cat), after);
        // A different attribute is a different shape → still at defaults.
        let other = Query::atomic(
            Dn::parse("dc=test").unwrap(),
            Scope::Sub,
            AtomicFilter::present("weight"),
        );
        assert!(plan_cost(&q, &cat) > plan_cost(&other, &cat) * 2.0);
    }

    #[test]
    fn legacy_empty_diff_costs_more_than_constant_false() {
        let cat = StatsCatalog::new();
        let legacy = Query::diff(whole_directory(), whole_directory());
        assert_eq!(estimate(&legacy, &cat).entries, 0.0, "Diff(q,q) is empty");
        assert!(plan_cost(&legacy, &cat) > plan_cost(&empty_query(), &cat));
        // …and dominates the cost of the a-rewrite that carries it.
        let plain = Query::hier(HierOp::Ancestors, atom("red"), atom("blue"));
        let ruinous = Query::hier_path(
            HierPathOp::AncestorsConstrained,
            atom("red"),
            atom("blue"),
            legacy,
        );
        assert!(plan_cost(&ruinous, &cat) > plan_cost(&plain, &cat));
    }
}
