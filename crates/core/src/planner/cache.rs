//! The plan cache: winning step sequences keyed by normalized query
//! shape, so repeated query templates skip enumeration entirely.
//!
//! Entries are invalidated *lazily* by epoch: mutating the directory
//! bumps the planner epoch, and a cached plan from an older epoch is
//! treated as a miss (and replaced on the next store). This keeps the
//! mutation path O(1) — no sweep over the cache under a lock.

use crate::planner::enumerate::Step;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cap on cached shapes; on overflow the cache is cleared wholesale
/// (shapes are templates, so a real workload stays far below this).
const MAX_SHAPES: usize = 1024;

struct CachedPlan {
    epoch: u64,
    steps: Vec<Step>,
}

/// Epoch-invalidated map from query shape to winning step sequence.
#[derive(Default)]
pub struct PlanCache {
    epoch: AtomicU64,
    inner: Mutex<HashMap<String, CachedPlan>>,
}

impl PlanCache {
    /// An empty cache at epoch 0.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Invalidate every cached plan (called after directory mutation).
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// The cached steps for `shape`, if present and current-epoch.
    pub fn get(&self, shape: &str) -> Option<Vec<Step>> {
        let epoch = self.epoch();
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .get(shape)
            .filter(|p| p.epoch == epoch)
            .map(|p| p.steps.clone())
    }

    /// Store the winning steps for `shape` at the current epoch.
    pub fn put(&self, shape: String, steps: Vec<Step>) {
        let epoch = self.epoch();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.len() >= MAX_SHAPES && !inner.contains_key(&shape) {
            inner.clear();
        }
        inner.insert(shape, CachedPlan { epoch, steps });
    }

    /// Number of cached shapes (stale entries included until replaced).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bump_invalidates() {
        let cache = PlanCache::new();
        let steps = vec![Step::ShortCircuitDiff { path: vec![0] }];
        cache.put("shape-a".into(), steps.clone());
        assert_eq!(cache.get("shape-a"), Some(steps.clone()));
        assert_eq!(cache.get("shape-b"), None);
        cache.bump_epoch();
        assert_eq!(cache.get("shape-a"), None, "stale epoch must miss");
        cache.put("shape-a".into(), steps.clone());
        assert_eq!(cache.get("shape-a"), Some(steps));
    }

    #[test]
    fn overflow_clears_rather_than_grows() {
        let cache = PlanCache::new();
        for i in 0..MAX_SHAPES + 1 {
            cache.put(format!("shape-{i}"), Vec::new());
        }
        assert!(cache.len() <= MAX_SHAPES);
    }
}
