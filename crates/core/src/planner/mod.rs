//! Cost-based plan optimization with observed-I/O feedback.
//!
//! The paper's algebra admits many equivalent trees for one query —
//! boolean merge chains can associate any way, `&` of nested `sub`
//! scopes can tighten its base, and Theorem 8.2(d) rewrites hierarchy
//! operators in both directions. Which tree is cheapest depends on list
//! sizes the text cannot know; Section 8's cost formulas are in exactly
//! those sizes. This module closes the loop:
//!
//! 1. [`enumerate::enumerate_steps`] proposes semantics-preserving
//!    [`Step`] edits (every one is byte-identical on output — the
//!    chooser only ever trades I/O, never answers);
//! 2. [`estimate::plan_cost`] ranks whole trees by summing
//!    [`crate::cost::predicted_node_io`] over estimated page flows;
//! 3. the [`StatsCatalog`] supplies those estimates from *observed*
//!    per-node I/O — fed back either live (wrap any [`AtomicSource`] in
//!    an [`ObservingSource`]) or from EXPLAIN ANALYZE traces
//!    ([`Planner::observe_trace`]);
//! 4. the [`PlanCache`] remembers winning step sequences by normalized
//!    query shape ([`query_shape`]), so template traffic — identical
//!    structure, different comparison constants — plans once.
//!
//! The chooser is greedy and conservative: at most [`MAX_ROUNDS`]
//! rounds, each applying the single best *strictly* improving step;
//! identity wins every tie. A directory mutation bumps the planner
//! epoch, lazily invalidating cached plans (the catalog's EWMA rows
//! survive — they re-converge from subsequent observations).

pub mod cache;
pub mod enumerate;
pub mod estimate;
pub mod stats;

pub use cache::PlanCache;
pub use enumerate::{apply_steps, enumerate_steps, Step};
pub use estimate::{estimate, plan_cost, Estimate};
pub use stats::{atomic_shape, filter_shape, AtomicStats, CatalogSnapshot, StatsCatalog};

use crate::ast::{AggAttribute, AggSelFilter, Query};
use crate::eval::AtomicSource;
use netdir_obs::QueryTrace;
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::{Dn, Entry};
use netdir_pager::{PagedList, PagerResult};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bound on greedy improvement rounds per planned query.
pub const MAX_ROUNDS: usize = 8;

/// Strict-improvement margin: a candidate must beat the incumbent by
/// more than this, so estimate noise never flips a tie away from the
/// identity plan.
const EPS: f64 = 1e-9;

/// The normalized shape of a whole query: structure, bases, scopes,
/// attribute names and operators verbatim; comparison constants (in
/// atomic filters and aggregate selections) abstracted away. Two queries
/// from the same template share a shape — and therefore a cached plan
/// and the same catalog rows.
pub fn query_shape(q: &Query) -> String {
    fn agg_attr(a: &AggAttribute) -> String {
        match a {
            AggAttribute::Const(_) => "\u{2}".to_string(),
            other => other.to_string(),
        }
    }
    fn agg(f: &AggSelFilter) -> String {
        format!("{} {} {}", agg_attr(&f.lhs), f.op, agg_attr(&f.rhs))
    }
    fn render(q: &Query, out: &mut String) {
        match q {
            Query::Atomic {
                base,
                scope,
                filter,
            } => {
                let _ = write!(out, "({} ? {scope} ? {})", base.canonical(), filter_shape(filter));
            }
            Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => {
                out.push('(');
                out.push(match q {
                    Query::And(..) => '&',
                    Query::Or(..) => '|',
                    _ => '-',
                });
                out.push(' ');
                render(a, out);
                out.push(' ');
                render(b, out);
                out.push(')');
            }
            Query::Hier { op, q1, q2, agg: g } => {
                let _ = write!(out, "({}", op.symbol());
                if let Some(f) = g {
                    let _ = write!(out, "[{}]", agg(f));
                }
                out.push(' ');
                render(q1, out);
                out.push(' ');
                render(q2, out);
                out.push(')');
            }
            Query::HierPath {
                op,
                q1,
                q2,
                q3,
                agg: g,
            } => {
                let _ = write!(out, "({}", op.symbol());
                if let Some(f) = g {
                    let _ = write!(out, "[{}]", agg(f));
                }
                for c in [q1, q2, q3] {
                    out.push(' ');
                    render(c, out);
                }
                out.push(')');
            }
            Query::AggSelect { query, filter } => {
                out.push_str("(g ");
                render(query, out);
                let _ = write!(out, " {})", agg(filter));
            }
            Query::EmbedRef {
                op,
                q1,
                q2,
                attr,
                agg: g,
            } => {
                let _ = write!(out, "({}", op.symbol());
                if let Some(f) = g {
                    let _ = write!(out, "[{}]", agg(f));
                }
                out.push(' ');
                render(q1, out);
                out.push(' ');
                render(q2, out);
                let _ = write!(out, " {attr})");
            }
        }
    }
    let mut out = String::new();
    render(q, &mut out);
    out
}

/// The outcome of planning one query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The chosen (possibly transformed) query — byte-identical in
    /// output to the query that was planned.
    pub query: Query,
    /// The steps that produced it (empty = identity plan).
    pub steps: Vec<Step>,
    /// Whether the steps came from the plan cache.
    pub cache_hit: bool,
    /// Estimated cost of the query as written.
    pub predicted_naive: f64,
    /// Estimated cost of the chosen plan (≤ `predicted_naive`).
    pub predicted_chosen: f64,
}

/// Counter snapshot for metrics export.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannerSnapshot {
    /// Queries planned.
    pub planned: u64,
    /// Plans replayed from the cache.
    pub cache_hits: u64,
    /// Plans enumerated afresh.
    pub cache_misses: u64,
    /// Steps applied across all plans (cached and fresh).
    pub steps_applied: u64,
    /// Candidate steps considered by the chooser.
    pub candidates_considered: u64,
    /// Current invalidation epoch.
    pub epoch: u64,
    /// Distinct atomic shapes in the stats catalog.
    pub catalog_shapes: u64,
    /// Observations absorbed by the stats catalog.
    pub catalog_observations: u64,
}

/// The cost-based planner: stats catalog + plan cache + greedy chooser.
///
/// Thread-safe by interior locking; share one per directory behind an
/// `Arc`.
#[derive(Default)]
pub struct Planner {
    catalog: StatsCatalog,
    cache: PlanCache,
    planned: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    steps_applied: AtomicU64,
    candidates: AtomicU64,
}

impl Planner {
    /// A planner with an empty catalog and cache.
    pub fn new() -> Planner {
        Planner::default()
    }

    /// The stats catalog (for wrapping sources or direct observation).
    pub fn catalog(&self) -> &StatsCatalog {
        &self.catalog
    }

    /// Invalidate all cached plans (call after directory mutation). The
    /// catalog is deliberately retained: EWMA rows drift to the new
    /// regime instead of restarting from defaults.
    pub fn bump_epoch(&self) {
        self.cache.bump_epoch();
    }

    /// Plan `q`: replay the cached step sequence for its shape, or
    /// enumerate and choose greedily, caching the winner.
    pub fn plan(&self, q: &Query) -> PlannedQuery {
        self.planned.fetch_add(1, Ordering::Relaxed);
        let shape = query_shape(q);
        if let Some(steps) = self.cache.get(&shape) {
            // A cached sequence can fail to re-apply only if shapes
            // collided (they can't, by construction) — but a structural
            // bail falls through to fresh planning, never a wrong plan.
            if let Some(chosen) = apply_steps(q, &steps) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.steps_applied
                    .fetch_add(steps.len() as u64, Ordering::Relaxed);
                return PlannedQuery {
                    predicted_naive: plan_cost(q, &self.catalog),
                    predicted_chosen: plan_cost(&chosen, &self.catalog),
                    query: chosen,
                    steps,
                    cache_hit: true,
                };
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let naive = plan_cost(q, &self.catalog);
        let mut current = q.clone();
        let mut cost = naive;
        let mut steps: Vec<Step> = Vec::new();
        for _ in 0..MAX_ROUNDS {
            let candidates = enumerate_steps(&current, &self.catalog);
            self.candidates
                .fetch_add(candidates.len() as u64, Ordering::Relaxed);
            let mut best: Option<(f64, Step, Query)> = None;
            for s in candidates {
                let Some(next) = s.apply(&current) else { continue };
                let c = plan_cost(&next, &self.catalog);
                let improves = c + EPS < cost;
                let beats_best = best.as_ref().is_none_or(|(bc, _, _)| c < *bc);
                if improves && beats_best {
                    best = Some((c, s, next));
                }
            }
            let Some((c, s, next)) = best else { break };
            cost = c;
            steps.push(s);
            current = next;
        }
        self.steps_applied
            .fetch_add(steps.len() as u64, Ordering::Relaxed);
        self.cache.put(shape, steps.clone());
        PlannedQuery {
            query: current,
            steps,
            cache_hit: false,
            predicted_naive: naive,
            predicted_chosen: cost,
        }
    }

    /// Harvest observed atomic cardinalities from an EXPLAIN ANALYZE
    /// trace of `q` into the catalog. Spans are pre-order, exactly the
    /// order a pre-order walk of `q` visits nodes; a mismatched trace
    /// (different query) is ignored rather than mis-attributed.
    pub fn observe_trace(&self, q: &Query, trace: &QueryTrace) {
        if trace.spans.len() != q.num_nodes() {
            return;
        }
        fn walk(planner: &Planner, q: &Query, trace: &QueryTrace, idx: &mut usize) {
            let span = &trace.spans[*idx];
            *idx += 1;
            if let Query::Atomic {
                base,
                scope,
                filter,
            } = q
            {
                if !matches!(filter, AtomicFilter::False) {
                    planner
                        .catalog
                        .observe(base, *scope, filter, span.entries_out, span.pages_out);
                }
            }
            match q {
                Query::Atomic { .. } => {}
                Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => {
                    walk(planner, a, trace, idx);
                    walk(planner, b, trace, idx);
                }
                Query::Hier { q1, q2, .. } | Query::EmbedRef { q1, q2, .. } => {
                    walk(planner, q1, trace, idx);
                    walk(planner, q2, trace, idx);
                }
                Query::HierPath { q1, q2, q3, .. } => {
                    walk(planner, q1, trace, idx);
                    walk(planner, q2, trace, idx);
                    walk(planner, q3, trace, idx);
                }
                Query::AggSelect { query, .. } => walk(planner, query, trace, idx),
            }
        }
        walk(self, q, trace, &mut 0);
    }

    /// Counters for metrics export.
    pub fn snapshot(&self) -> PlannerSnapshot {
        let cat = self.catalog.snapshot();
        PlannerSnapshot {
            planned: self.planned.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            steps_applied: self.steps_applied.load(Ordering::Relaxed),
            candidates_considered: self.candidates.load(Ordering::Relaxed),
            epoch: self.cache.epoch(),
            catalog_shapes: cat.shapes,
            catalog_observations: cat.observations,
        }
    }
}

/// An [`AtomicSource`] wrapper that records every atomic result's
/// observed cardinality and page count into a [`StatsCatalog`].
///
/// The observation happens strictly *after* the inner source's I/O
/// completes — the catalog lock is never held across page reads.
pub struct ObservingSource<'a, S: AtomicSource> {
    inner: &'a S,
    catalog: &'a StatsCatalog,
}

impl<'a, S: AtomicSource> ObservingSource<'a, S> {
    /// Wrap `inner`, feeding observations to `catalog`.
    pub fn new(inner: &'a S, catalog: &'a StatsCatalog) -> ObservingSource<'a, S> {
        ObservingSource { inner, catalog }
    }
}

impl<S: AtomicSource> AtomicSource for ObservingSource<'_, S> {
    fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>> {
        let out = self.inner.evaluate_atomic(base, scope, filter)?;
        self.catalog
            .observe(base, scope, filter, out.len(), out.num_pages());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::HierOp;
    use crate::eval::Evaluator;
    use netdir_index::IndexedDirectory;
    use netdir_model::{Directory, Entry};
    use netdir_pager::Pager;

    fn atom(base: &str, filter: AtomicFilter) -> Query {
        Query::atomic(Dn::parse(base).unwrap(), Scope::Sub, filter)
    }

    fn test_directory() -> Directory {
        let mut d = Directory::new();
        let root = Dn::parse("dc=test").unwrap();
        d.insert(Entry::builder(root.clone()).class("thing").build().unwrap())
            .unwrap();
        d.insert(
            Entry::builder(Dn::parse("ou=narrow, dc=test").unwrap())
                .class("thing")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..80 {
            let parent = if i % 5 == 0 {
                "dc=test".to_string()
            } else {
                "ou=narrow, dc=test".to_string()
            };
            d.insert(
                Entry::builder(Dn::parse(&format!("n=e{i}, {parent}")).unwrap())
                    .class("thing")
                    .attr("kind", if i % 4 == 0 { "rare" } else { "common" })
                    .attr("weight", i % 7)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn shapes_share_across_constants_only() {
        let red = atom("dc=test", AtomicFilter::eq("kind", "red"));
        let blue = atom("dc=test", AtomicFilter::eq("kind", "blue"));
        assert_eq!(query_shape(&red), query_shape(&blue));
        let q1 = Query::and(red.clone(), atom("dc=test", AtomicFilter::present("weight")));
        let q2 = Query::and(blue.clone(), atom("dc=test", AtomicFilter::present("weight")));
        assert_eq!(query_shape(&q1), query_shape(&q2));
        assert_ne!(query_shape(&q1), query_shape(&Query::or(red, blue)));
        // Agg constants abstract too.
        let g1 = Query::agg_select(q1, AggSelFilter::exists_witness());
        let shape = query_shape(&g1);
        assert!(shape.contains('\u{2}'), "constant abstracted: {shape}");
    }

    #[test]
    fn ruinous_rewrite_is_enumerated_but_never_chosen() {
        let planner = Planner::new();
        let q = Query::hier(
            HierOp::Ancestors,
            atom("dc=test", AtomicFilter::eq("kind", "rare")),
            atom("dc=test", AtomicFilter::True),
        );
        let planned = planner.plan(&q);
        assert!(
            planned
                .steps
                .iter()
                .all(|s| !matches!(s, Step::RewriteConstrained { .. })),
            "cost model must reject the (- X X) rewrite: {:?}",
            planned.steps
        );
        assert!(planned.predicted_chosen <= planned.predicted_naive + 1e-9);
        // …but a query that arrives already carrying the ruinous operand
        // gets de-rewritten.
        let ruinous = crate::rewrite::rewrite_tree(&q);
        let fixed = planner.plan(&ruinous);
        assert!(
            fixed
                .steps
                .iter()
                .any(|s| matches!(s, Step::DeRewrite { .. } | Step::ShortCircuitDiff { .. })),
            "expected a repair step, got {:?}",
            fixed.steps
        );
        assert!(fixed.predicted_chosen < fixed.predicted_naive);
    }

    #[test]
    fn cache_hits_on_template_traffic_and_epoch_invalidates() {
        let planner = Planner::new();
        let template = |v: &str| {
            Query::and(
                atom("dc=test", AtomicFilter::eq("kind", v)),
                atom("dc=test", AtomicFilter::present("weight")),
            )
        };
        let first = planner.plan(&template("red"));
        assert!(!first.cache_hit);
        let second = planner.plan(&template("blue"));
        assert!(second.cache_hit, "same shape must replay the cached plan");
        planner.bump_epoch();
        let third = planner.plan(&template("green"));
        assert!(!third.cache_hit, "epoch bump must invalidate");
        let snap = planner.snapshot();
        assert_eq!(snap.planned, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.epoch, 1);
    }

    #[test]
    fn observed_feedback_drives_byte_identical_cheaper_plans() {
        let d = test_directory();
        let pager = Pager::new(512, 128);
        let idx = IndexedDirectory::build(&pager, &d).unwrap();
        let planner = Planner::new();

        // Train: evaluate the atoms once through an observing source.
        let rare = atom("dc=test", AtomicFilter::eq("kind", "rare"));
        let broad1 = atom("dc=test", AtomicFilter::True);
        let broad2 = atom("dc=test", AtomicFilter::present("weight"));
        let observing = ObservingSource::new(&idx, planner.catalog());
        let ev = Evaluator::new(&observing, &pager);
        for a in [&rare, &broad1, &broad2] {
            ev.evaluate(a).unwrap();
        }
        assert!(planner.snapshot().catalog_observations >= 3);

        // The two broad atoms merging first is the worst association —
        // the whole directory materializes as an intermediate. Reordered
        // so the rare list merges first, every intermediate is small.
        let q = Query::and(Query::and(broad1.clone(), broad2.clone()), rare.clone());
        let planned = planner.plan(&q);
        assert!(
            planned
                .steps
                .iter()
                .any(|s| matches!(s, Step::ReorderBool { .. })),
            "expected a reorder, got {:?}",
            planned.steps
        );
        assert!(planned.predicted_chosen < planned.predicted_naive);

        // Byte-identical: same entries, same order.
        let naive_out = Evaluator::new(&idx, &pager)
            .evaluate(&q)
            .unwrap()
            .to_vec()
            .unwrap();
        let planned_out = Evaluator::new(&idx, &pager)
            .evaluate(&planned.query)
            .unwrap()
            .to_vec()
            .unwrap();
        assert_eq!(naive_out, planned_out);
    }

    #[test]
    fn analyze_traces_feed_the_catalog() {
        let d = test_directory();
        let pager = Pager::new(512, 128);
        let idx = IndexedDirectory::build(&pager, &d).unwrap();
        let planner = Planner::new();
        let q = Query::and(
            atom("dc=test", AtomicFilter::eq("kind", "rare")),
            atom("ou=narrow, dc=test", AtomicFilter::True),
        );
        let (_, trace) = crate::explain::analyze(&idx, &pager, &q).unwrap();
        planner.observe_trace(&q, &trace);
        let snap = planner.snapshot();
        assert_eq!(snap.catalog_shapes, 2);
        assert_eq!(snap.catalog_observations, 2);
        let got = planner
            .catalog()
            .lookup(
                &Dn::parse("dc=test").unwrap(),
                Scope::Sub,
                &AtomicFilter::eq("kind", "anything-same-shape"),
            )
            .unwrap();
        assert!(got.entries > 0.0);
        // A mismatched trace is ignored, not mis-attributed.
        planner.observe_trace(&atom("dc=test", AtomicFilter::True), &trace);
        assert_eq!(planner.snapshot().catalog_observations, 2);
    }
}
