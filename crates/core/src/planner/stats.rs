//! The per-directory statistics catalog.
//!
//! The planner's estimates start from nothing: the catalog maps the
//! *shape* of an atomic sub-query — base DN, scope, and the filter with
//! its comparison values abstracted away — to the list cardinality and
//! page count execution actually observed. Every completed evaluation
//! feeds it (via [`crate::planner::ObservingSource`] on the normal path
//! or [`crate::planner::Planner::observe_trace`] on the EXPLAIN ANALYZE
//! path), so estimates improve over a session's traffic exactly as the
//! observed-vs-predicted feedback loop of the EXPLAIN subsystem
//! intended. Template traffic — the same query shapes with different
//! comparison constants — shares catalog rows by construction.

use netdir_filter::{AtomicFilter, Scope};
use netdir_model::Dn;
use std::collections::HashMap;
use std::sync::Mutex;

/// Exponential moving-average weight for new observations. High enough
/// to track directory drift, low enough that one outlier page-cache
/// artifact doesn't whipsaw the plans.
const EWMA_ALPHA: f64 = 0.4;

/// What the catalog remembers about one atomic shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicStats {
    /// Smoothed observed cardinality.
    pub entries: f64,
    /// Smoothed observed size in pages.
    pub pages: f64,
}

/// The shape key of an atomic sub-query: base, scope, and the filter
/// with comparison values abstracted (`kind=red` and `kind=blue` share a
/// row; `kind=*` does not).
pub fn atomic_shape(base: &Dn, scope: Scope, filter: &AtomicFilter) -> String {
    format!("{}\u{1}{scope}\u{1}{}", base.canonical(), filter_shape(filter))
}

/// The value-abstracted rendering of an atomic filter.
pub fn filter_shape(filter: &AtomicFilter) -> String {
    match filter {
        AtomicFilter::True => "true".to_string(),
        AtomicFilter::False => "false".to_string(),
        AtomicFilter::Present(a) => format!("{a}=*"),
        AtomicFilter::Eq(a, _) => format!("{a}=\u{2}"),
        AtomicFilter::Substring(a, _) => format!("{a}=sub\u{2}"),
        AtomicFilter::IntCmp(a, op, _) => format!("{a}{op}\u{2}"),
        AtomicFilter::DnEq(a, _) => format!("{a}=dn\u{2}"),
    }
}

/// Aggregated catalog counters for metrics export.
#[derive(Debug, Clone, Copy, Default)]
pub struct CatalogSnapshot {
    /// Distinct atomic shapes with at least one observation.
    pub shapes: u64,
    /// Total observations absorbed.
    pub observations: u64,
}

/// The stats catalog: atomic-list cardinalities keyed by shape.
///
/// Lock discipline: the map's mutex is only held for in-memory reads and
/// writes — observation happens *after* the pager I/O that produced the
/// list being recorded.
#[derive(Debug, Default)]
pub struct StatsCatalog {
    rows: Mutex<HashMap<String, AtomicStats>>,
    observations: std::sync::atomic::AtomicU64,
}

impl StatsCatalog {
    /// An empty catalog.
    pub fn new() -> StatsCatalog {
        StatsCatalog::default()
    }

    /// Record one observed atomic evaluation.
    pub fn observe(&self, base: &Dn, scope: Scope, filter: &AtomicFilter, entries: u64, pages: u64) {
        let key = atomic_shape(base, scope, filter);
        let mut rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
        let row = rows.entry(key).or_insert(AtomicStats {
            entries: entries as f64,
            pages: pages as f64,
        });
        row.entries = (1.0 - EWMA_ALPHA) * row.entries + EWMA_ALPHA * entries as f64;
        row.pages = (1.0 - EWMA_ALPHA) * row.pages + EWMA_ALPHA * pages as f64;
        self.observations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// The smoothed stats for an atomic shape, if it has been observed.
    pub fn lookup(&self, base: &Dn, scope: Scope, filter: &AtomicFilter) -> Option<AtomicStats> {
        let key = atomic_shape(base, scope, filter);
        self.rows
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .copied()
    }

    /// Counters for metrics export.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot {
            shapes: self.rows.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            observations: self
                .observations
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    #[test]
    fn shapes_abstract_comparison_values() {
        let base = dn("dc=test");
        let red = atomic_shape(&base, Scope::Sub, &AtomicFilter::eq("kind", "red"));
        let blue = atomic_shape(&base, Scope::Sub, &AtomicFilter::eq("kind", "blue"));
        assert_eq!(red, blue, "constants must not split catalog rows");
        let present = atomic_shape(&base, Scope::Sub, &AtomicFilter::present("kind"));
        assert_ne!(red, present);
        let one = atomic_shape(&base, Scope::One, &AtomicFilter::eq("kind", "red"));
        assert_ne!(red, one, "scope is part of the shape");
    }

    #[test]
    fn observations_converge_by_ewma() {
        let cat = StatsCatalog::new();
        let base = dn("dc=test");
        let f = AtomicFilter::eq("kind", "red");
        assert!(cat.lookup(&base, Scope::Sub, &f).is_none());
        cat.observe(&base, Scope::Sub, &f, 100, 10);
        let first = cat.lookup(&base, Scope::Sub, &f).unwrap();
        assert_eq!(first.entries, 100.0);
        // Drift toward a new regime without jumping to it.
        cat.observe(&base, Scope::Sub, &f, 200, 20);
        let second = cat.lookup(&base, Scope::Sub, &f).unwrap();
        assert!(second.entries > 100.0 && second.entries < 200.0);
        let snap = cat.snapshot();
        assert_eq!(snap.shapes, 1);
        assert_eq!(snap.observations, 2);
    }
}
