//! Bottom-up query evaluation (Section 8.2).
//!
//! "Each query expression can be evaluated bottom-up … First, the atomic
//! queries are evaluated, and the resulting entries are sorted by the
//! lexicographic ordering on the reverse of their dn's. Next, each
//! operator in the query tree is evaluated … and the result is pipelined
//! to a higher operator. Since each operator gets sorted input lists, and
//! computes a sorted output list, no additional sorting … is necessary."
//!
//! [`Evaluator`] walks the tree in reverse topological (post-) order,
//! evaluating atomic leaves through an [`AtomicSource`] (an indexed
//! directory, a remote server stub — anything that yields sorted entry
//! lists) and operators through the algorithms of this crate. Every
//! intermediate result is a paged list on the evaluator's pager, so a
//! single I/O ledger covers the whole tree; [`Evaluator::evaluate_traced`]
//! additionally reports per-node I/O and cardinalities — the raw material
//! of the Theorem 8.3/8.4 experiments.

use crate::agg::CompiledAggFilter;
use crate::ast::Query;
use crate::error::{QueryError, QueryResult};
use crate::{agg_simple, boolean, er_join, hs_stack};
use netdir_filter::{AtomicFilter, Scope};
use netdir_index::IndexedDirectory;
use netdir_model::{Dn, Entry};
use netdir_pager::{parallel_map, IoSnapshot, PagedList, Pager, PagerResult};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// A source of atomic-query results: sorted entry lists.
pub trait AtomicSource {
    /// Evaluate `(base ? scope ? filter)` to a reverse-DN-sorted list.
    fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>>;
}

impl AtomicSource for IndexedDirectory {
    fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>> {
        IndexedDirectory::evaluate_atomic(self, base, scope, filter)
    }
}

/// Per-node trace record from [`Evaluator::evaluate_traced`].
#[derive(Debug, Clone)]
pub struct NodeTrace {
    /// The node, rendered.
    pub node: String,
    /// Entries flowing in from child operators (0 for atomic leaves).
    pub input_len: u64,
    /// Result cardinality.
    pub output_len: u64,
    /// Result size in pages.
    pub output_pages: u64,
    /// I/O spent evaluating this node (excluding its children).
    pub io: IoSnapshot,
    /// Wall time spent in this node (excluding its children).
    pub elapsed_nanos: u64,
}

/// Summary of one [`Evaluator::evaluate_parallel_report`] run.
#[derive(Debug, Clone, Default)]
pub struct ParReport {
    /// Requested parallelism degree.
    pub degree: usize,
    /// Number of scheduling waves (tree depth of the ready-set walk).
    pub waves: usize,
    /// Ready-set width per wave — how much independent work each wave had.
    pub ready_widths: Vec<usize>,
    /// Total worker threads used across all waves.
    pub workers_spawned: u64,
    /// Per-worker I/O sub-ledgers, one per worker per wave. Their sum
    /// equals the shared ledger's delta for the run.
    pub worker_io: Vec<IoSnapshot>,
}

/// Memoized sub-query results, sharded by query hash so concurrent
/// workers contend on different locks. Replaces the earlier `RefCell`
/// map, which panicked on reentrant use and blocked `Sync`.
struct Memo {
    shards: [Mutex<HashMap<Query, PagedList<Entry>>>; Memo::SHARDS],
}

impl Memo {
    const SHARDS: usize = 8;

    fn new() -> Self {
        Memo {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, q: &Query) -> &Mutex<HashMap<Query, PagedList<Entry>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        q.hash(&mut h);
        &self.shards[(h.finish() as usize) % Memo::SHARDS]
    }

    fn get(&self, q: &Query) -> Option<PagedList<Entry>> {
        self.shard(q)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(q)
            .cloned()
    }

    fn insert(&self, q: &Query, out: &PagedList<Entry>) {
        self.shard(q)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(q.clone(), out.clone());
    }
}

/// The children of a node, in operand order.
fn children_of(q: &Query) -> Vec<&Query> {
    match q {
        Query::Atomic { .. } => Vec::new(),
        Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => vec![a, b],
        Query::Hier { q1, q2, .. } => vec![q1, q2],
        Query::HierPath { q1, q2, q3, .. } => vec![q1, q2, q3],
        Query::AggSelect { query, .. } => vec![query],
        Query::EmbedRef { q1, q2, .. } => vec![q1, q2],
    }
}

/// The query evaluator.
pub struct Evaluator<'s, S: AtomicSource> {
    source: &'s S,
    pager: Pager,
    /// When enabled, identical sub-queries evaluate once (common
    /// sub-expression elimination). Off by default so cost experiments
    /// measure each node; applications with self-referential compositions
    /// (the QoS engine's `top` appears three times) switch it on.
    memo: Option<Memo>,
}

impl<'s, S: AtomicSource> Evaluator<'s, S> {
    /// Evaluate over `source`, staging intermediates on `pager`.
    pub fn new(source: &'s S, pager: &Pager) -> Self {
        Evaluator {
            source,
            pager: pager.clone(),
            memo: None,
        }
    }

    /// Enable common-sub-expression caching for this evaluator.
    pub fn with_memo(mut self) -> Self {
        self.memo = Some(Memo::new());
        self
    }

    /// Evaluate `q` to a sorted entry list.
    pub fn evaluate(&self, q: &Query) -> QueryResult<PagedList<Entry>> {
        self.eval_node(q, &mut None)
    }

    /// Evaluate `q` with up to `degree` concurrent workers.
    ///
    /// See [`Evaluator::evaluate_parallel_report`]; this discards the
    /// scheduling report.
    pub fn evaluate_parallel(&self, q: &Query, degree: usize) -> QueryResult<PagedList<Entry>>
    where
        S: Sync,
    {
        Ok(self.evaluate_parallel_report(q, degree)?.0)
    }

    /// Evaluate `q` bottom-up with up to `degree` concurrent workers,
    /// returning the result plus a [`ParReport`] of the schedule.
    ///
    /// The tree is walked in *waves*: each wave's ready set is every node
    /// whose children are all resolved (wave 0 = the atomic leaves), and
    /// the whole wave is handed to a scoped worker pool. Because each
    /// node's evaluation is a pure function of its child lists, and
    /// results are collected by node identity rather than completion
    /// order, the output is byte-identical to sequential [`evaluate`]
    /// (reverse-DN sorted, same entries, same order) at every degree.
    /// `degree <= 1` takes the sequential path directly.
    ///
    /// [`evaluate`]: Evaluator::evaluate
    pub fn evaluate_parallel_report(
        &self,
        q: &Query,
        degree: usize,
    ) -> QueryResult<(PagedList<Entry>, ParReport)>
    where
        S: Sync,
    {
        if degree <= 1 {
            let out = self.evaluate(q)?;
            return Ok((
                out,
                ParReport {
                    degree: 1,
                    ..ParReport::default()
                },
            ));
        }

        // Flatten the tree into an arena (post-order, so the root is last).
        fn build<'q>(
            q: &'q Query,
            nodes: &mut Vec<&'q Query>,
            children: &mut Vec<Vec<usize>>,
            parent: &mut Vec<Option<usize>>,
        ) -> usize {
            let kids: Vec<usize> = children_of(q)
                .into_iter()
                .map(|c| build(c, nodes, children, parent))
                .collect();
            let idx = nodes.len();
            nodes.push(q);
            children.push(kids.clone());
            parent.push(None);
            for k in kids {
                parent[k] = Some(idx);
            }
            idx
        }
        let mut nodes = Vec::new();
        let mut children = Vec::new();
        let mut parent = Vec::new();
        let root = build(q, &mut nodes, &mut children, &mut parent);

        let mut pending: Vec<usize> = children.iter().map(|c| c.len()).collect();
        let mut results: Vec<Option<PagedList<Entry>>> = vec![None; nodes.len()];
        let mut ready: Vec<usize> = (0..nodes.len()).filter(|&i| pending[i] == 0).collect();
        let mut report = ParReport {
            degree,
            ..ParReport::default()
        };

        while !ready.is_empty() {
            report.waves += 1;
            report.ready_widths.push(ready.len());
            let wave = std::mem::take(&mut ready);
            let (outs, workers) = parallel_map(degree, wave.clone(), |_, idx: usize| {
                let kids: Vec<PagedList<Entry>> = children[idx]
                    .iter()
                    .map(|&k| results[k].clone().expect("child resolved before parent"))
                    .collect();
                self.eval_ready(nodes[idx], &kids)
            })?;
            report.workers_spawned += workers.len() as u64;
            report.worker_io.extend(workers.iter().map(|w| w.io));
            for (idx, out) in wave.into_iter().zip(outs) {
                results[idx] = Some(out);
                if let Some(p) = parent[idx] {
                    pending[p] -= 1;
                    if pending[p] == 0 {
                        ready.push(p);
                    }
                }
            }
        }

        let out = results[root].take().expect("root evaluated last");
        Ok((out, report))
    }

    /// Evaluate one node whose children are already resolved (memo-aware,
    /// trace-free — per-node I/O attribution needs the sequential walk).
    fn eval_ready(
        &self,
        q: &Query,
        children: &[PagedList<Entry>],
    ) -> QueryResult<PagedList<Entry>> {
        if let Some(memo) = &self.memo {
            if let Some(hit) = memo.get(q) {
                return Ok(hit);
            }
        }
        let out = self.apply(q, children, &mut None)?;
        if let Some(memo) = &self.memo {
            memo.insert(q, &out);
        }
        Ok(out)
    }

    /// Evaluate `q`, also collecting a per-node trace (post-order).
    pub fn evaluate_traced(
        &self,
        q: &Query,
    ) -> QueryResult<(PagedList<Entry>, Vec<NodeTrace>)> {
        let mut traces = Some(Vec::new());
        let out = self.eval_node(q, &mut traces)?;
        Ok((out, traces.expect("traces preserved")))
    }

    fn eval_node(
        &self,
        q: &Query,
        traces: &mut Option<Vec<NodeTrace>>,
    ) -> QueryResult<PagedList<Entry>> {
        if let Some(memo) = &self.memo {
            if let Some(hit) = memo.get(q) {
                return Ok(hit);
            }
        }
        // Children first (their I/O is attributed to them).
        let children: Vec<PagedList<Entry>> = children_of(q)
            .into_iter()
            .map(|c| self.eval_node(c, traces))
            .collect::<QueryResult<_>>()?;
        let out = self.apply(q, &children, traces)?;
        if let Some(memo) = &self.memo {
            memo.insert(q, &out);
        }
        Ok(out)
    }

    /// Apply the operator at `q` to its already-evaluated child lists —
    /// the single code path shared by sequential and parallel evaluation,
    /// which is what makes their results identical by construction.
    fn apply(
        &self,
        q: &Query,
        children: &[PagedList<Entry>],
        traces: &mut Option<Vec<NodeTrace>>,
    ) -> QueryResult<PagedList<Entry>> {
        let before = self.pager.io();
        let started = std::time::Instant::now();
        let out = match q {
            Query::Atomic {
                base,
                scope,
                filter,
            } => self.source.evaluate_atomic(base, *scope, filter)?,
            Query::And(..) | Query::Or(..) | Query::Diff(..) => {
                let op = match q {
                    Query::And(..) => boolean::BoolOp::And,
                    Query::Or(..) => boolean::BoolOp::Or,
                    _ => boolean::BoolOp::Diff,
                };
                boolean::merge(&self.pager, op, &children[0], &children[1])?
            }
            Query::Hier { op, agg, .. } => {
                let filter = compile_structural(agg)?;
                hs_stack::hs_select(
                    &self.pager,
                    (*op).into(),
                    &children[0],
                    &children[1],
                    None,
                    &filter,
                )?
            }
            Query::HierPath { op, agg, .. } => {
                let filter = compile_structural(agg)?;
                hs_stack::hs_select(
                    &self.pager,
                    (*op).into(),
                    &children[0],
                    &children[1],
                    Some(&children[2]),
                    &filter,
                )?
            }
            Query::AggSelect { filter, .. } => {
                let compiled = CompiledAggFilter::compile(filter, false)?;
                agg_simple::simple_agg_select(&self.pager, &children[0], &compiled)?
            }
            Query::EmbedRef { op, attr, agg, .. } => {
                let filter = compile_structural(agg)?;
                er_join::er_select(&self.pager, *op, &children[0], &children[1], attr, &filter)?
            }
        };
        let input_len = children.iter().map(|c| c.len()).sum();
        self.trace(traces, q, &out, input_len, before, started);
        Ok(out)
    }

    fn trace(
        &self,
        traces: &mut Option<Vec<NodeTrace>>,
        q: &Query,
        out: &PagedList<Entry>,
        input_len: u64,
        before: IoSnapshot,
        started: std::time::Instant,
    ) {
        if let Some(traces) = traces {
            traces.push(NodeTrace {
                node: summarize(q),
                input_len,
                output_len: out.len(),
                output_pages: out.num_pages(),
                io: self.pager.io().since(before),
                elapsed_nanos: u64::try_from(started.elapsed().as_nanos())
                    .unwrap_or(u64::MAX),
            });
        }
    }
}

fn compile_structural(agg: &Option<crate::ast::AggSelFilter>) -> QueryResult<CompiledAggFilter> {
    match agg {
        None => Ok(CompiledAggFilter::exists_witness()),
        Some(f) => CompiledAggFilter::compile(f, true),
    }
}

/// One-line description of a node (operator symbol, not the whole subtree).
fn summarize(q: &Query) -> String {
    match q {
        Query::Atomic {
            base,
            scope,
            filter,
        } => format!("({base} ? {scope} ? {filter})"),
        Query::And(..) => "(&)".into(),
        Query::Or(..) => "(|)".into(),
        Query::Diff(..) => "(-)".into(),
        Query::Hier { op, agg, .. } => match agg {
            None => format!("({})", op.symbol()),
            Some(f) => format!("({} … {f})", op.symbol()),
        },
        Query::HierPath { op, agg, .. } => match agg {
            None => format!("({})", op.symbol()),
            Some(f) => format!("({} … {f})", op.symbol()),
        },
        Query::AggSelect { filter, .. } => format!("(g … {filter})"),
        Query::EmbedRef { op, attr, agg, .. } => match agg {
            None => format!("({} … {attr})", op.symbol()),
            Some(f) => format!("({} … {attr} {f})", op.symbol()),
        },
    }
}

/// Convenience: evaluate a query string against an indexed directory.
pub fn run_query(
    idx: &IndexedDirectory,
    pager: &Pager,
    query: &str,
) -> QueryResult<Vec<Entry>> {
    let q = crate::parser::parse_query(query)?;
    let out = Evaluator::new(idx, pager).evaluate(&q)?;
    out.to_vec().map_err(QueryError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use netdir_model::{Directory, Entry};
    use netdir_pager::tiny_pager;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    /// A miniature AT&T-ish directory exercising all operators.
    fn dir() -> Directory {
        let mut d = Directory::new();
        let mut add = |e: Entry| {
            d.insert(e).unwrap();
        };
        for s in ["dc=com", "dc=att, dc=com", "dc=research, dc=att, dc=com", "dc=org"] {
            add(Entry::builder(dn(s)).class("dcObject").build().unwrap());
        }
        for (ou, parent) in [
            ("people", "dc=att, dc=com"),
            ("people", "dc=research, dc=att, dc=com"),
            ("tp", "dc=att, dc=com"),
        ] {
            add(Entry::builder(dn(&format!("ou={ou}, {parent}")))
                .class("organizationalUnit")
                .build()
                .unwrap());
        }
        // jagadish appears both in att and in research.
        for (uid, parent, sn) in [
            ("jag", "ou=people, dc=att, dc=com", "jagadish"),
            ("jag2", "ou=people, dc=research, dc=att, dc=com", "jagadish"),
            ("divesh", "ou=people, dc=att, dc=com", "srivastava"),
        ] {
            add(Entry::builder(dn(&format!("uid={uid}, {parent}")))
                .class("person")
                .attr("surName", sn)
                .build()
                .unwrap());
        }
        // Profiles referenced by policies.
        add(Entry::builder(dn("TPName=smtp, ou=tp, dc=att, dc=com"))
            .class("trafficProfile")
            .attr("sourcePort", 25i64)
            .build()
            .unwrap());
        add(Entry::builder(dn("SLAPolicyName=mail, ou=tp, dc=att, dc=com"))
            .class("SLAPolicyRules")
            .attr("SLARulePriority", 1i64)
            .attr("SLATPRef", dn("TPName=smtp, ou=tp, dc=att, dc=com"))
            .build()
            .unwrap());
        d
    }

    fn setup() -> (IndexedDirectory, Pager) {
        let pager = tiny_pager();
        let idx = IndexedDirectory::build(&pager, &dir()).unwrap();
        (idx, pager)
    }

    fn run(q: &str) -> Vec<String> {
        let (idx, pager) = setup();
        run_query(&idx, &pager, q)
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect()
    }

    #[test]
    fn example_4_1_end_to_end() {
        let got = run(
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
               (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        );
        assert_eq!(got, vec!["uid=jag, ou=people, dc=att, dc=com"]);
    }

    #[test]
    fn example_5_1_end_to_end() {
        let got = run(
            "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
                (dc=att, dc=com ? sub ? surName=jagadish))",
        );
        // Reverse-DN order: the research OU's key extends dc=att's key
        // with "dc=research", which sorts before the sibling "ou=people".
        assert_eq!(
            got,
            vec![
                "ou=people, dc=research, dc=att, dc=com",
                "ou=people, dc=att, dc=com"
            ]
        );
    }

    #[test]
    fn example_5_3_end_to_end() {
        // Which subnets have SMTP traffic profiles with no intervening
        // dcObject?
        let got = run(
            "(dc (dc=att, dc=com ? sub ? objectClass=dcObject) \
                 (& (dc=att, dc=com ? sub ? sourcePort=25) \
                    (dc=att, dc=com ? sub ? objectClass=trafficProfile)) \
                 (dc=att, dc=com ? sub ? objectClass=dcObject))",
        );
        assert_eq!(got, vec!["dc=att, dc=com"]);
    }

    #[test]
    fn l3_vd_end_to_end() {
        let got = run(
            "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
                 (dc=att, dc=com ? sub ? sourcePort=25) \
                 SLATPRef)",
        );
        assert_eq!(got, vec!["SLAPolicyName=mail, ou=tp, dc=att, dc=com"]);
    }

    #[test]
    fn traced_evaluation_reports_every_node() {
        let (idx, pager) = setup();
        let q = parse_query(
            "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
                (dc=att, dc=com ? sub ? surName=jagadish))",
        )
        .unwrap();
        let (out, traces) = Evaluator::new(&idx, &pager).evaluate_traced(&q).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(traces.len(), 3); // two atoms + the operator
        // Eq filter values render canonically (case-folded).
        assert!(traces[0].node.contains("organizationalunit"));
        assert_eq!(traces[2].node, "(c)");
        assert_eq!(traces[2].output_len, 2);
    }

    #[test]
    fn bad_agg_filter_surfaces() {
        let (idx, pager) = setup();
        let q = parse_query("(g (dc=com ? sub ? a=*) count($2) > 0)");
        // count($2) in g context is caught at evaluation (compile step).
        let q = q.unwrap();
        let err = Evaluator::new(&idx, &pager).evaluate(&q).unwrap_err();
        assert!(matches!(err, QueryError::BadAggFilter { .. }));
    }

    #[test]
    fn memoized_evaluation_matches_unmemoized() {
        // The QoS-style shape: the same subquery appears three times.
        let (idx, pager) = setup();
        let q = parse_query(
            "(| (| (dc=att, dc=com ? sub ? objectClass=person) \
                   (dc=att, dc=com ? sub ? objectClass=person)) \
                (& (dc=att, dc=com ? sub ? objectClass=person) \
                   (dc=att, dc=com ? sub ? surName=jagadish)))",
        )
        .unwrap();
        let plain = Evaluator::new(&idx, &pager).evaluate(&q).unwrap();
        let memoed = Evaluator::new(&idx, &pager)
            .with_memo()
            .evaluate(&q)
            .unwrap();
        assert_eq!(
            plain.to_vec().unwrap(),
            memoed.to_vec().unwrap(),
            "memoized and unmemoized evaluation must return identical lists"
        );
        // And the memo actually deduplicates: the repeated atom costs one
        // source evaluation's worth of allocations, not three.
        pager.reset_io();
        Evaluator::new(&idx, &pager).evaluate(&q).unwrap();
        let unmemo_allocs = pager.io().allocs;
        pager.reset_io();
        Evaluator::new(&idx, &pager).with_memo().evaluate(&q).unwrap();
        assert!(pager.io().allocs < unmemo_allocs);
    }

    #[test]
    fn parallel_evaluation_is_byte_identical_and_reports_schedule() {
        let (idx, pager) = setup();
        let q = parse_query(
            "(- (| (dc=att, dc=com ? sub ? surName=jagadish) \
                   (dc=att, dc=com ? sub ? objectClass=organizationalUnit)) \
                (c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
                   (dc=research, dc=att, dc=com ? sub ? surName=jagadish)))",
        )
        .unwrap();
        let ev = Evaluator::new(&idx, &pager);
        let expect = ev.evaluate(&q).unwrap().to_vec().unwrap();
        for degree in [1, 2, 4, 8] {
            let (out, report) = ev.evaluate_parallel_report(&q, degree).unwrap();
            assert_eq!(out.to_vec().unwrap(), expect, "degree {degree}");
            if degree > 1 {
                // 7 nodes in 3 waves: 4 leaves, then (|) and (c), then (-).
                assert_eq!(report.waves, 3);
                assert_eq!(report.ready_widths, vec![4, 2, 1]);
                assert!(report.workers_spawned > 0);
                let shard_io: u64 = report.worker_io.iter().map(|io| io.total()).sum();
                let _ = shard_io; // pool may serve everything warm here
            }
        }
    }

    #[test]
    fn parallel_evaluation_surfaces_the_sequential_error() {
        let (idx, pager) = setup();
        // The bad agg filter is compiled at its node's evaluation; the
        // parallel path must report it just like the sequential one.
        let q = parse_query(
            "(| (g (dc=com ? sub ? a=*) count($2) > 0) \
                (dc=com ? sub ? objectClass=dcObject))",
        )
        .unwrap();
        let ev = Evaluator::new(&idx, &pager);
        let seq = ev.evaluate(&q).unwrap_err();
        let par = ev.evaluate_parallel(&q, 4).unwrap_err();
        assert!(matches!(seq, QueryError::BadAggFilter { .. }));
        assert!(matches!(par, QueryError::BadAggFilter { .. }));
    }

    #[test]
    fn closure_queries_compose() {
        // Feed an L1 result into another L1 operator: (a (c ...) ...).
        let got = run(
            "(a (uid=jag, ou=people, dc=att, dc=com ? base ? objectClass=person) \
                (c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
                   (dc=att, dc=com ? sub ? surName=jagadish)))",
        );
        assert_eq!(got, vec!["uid=jag, ou=people, dc=att, dc=com"]);
    }
}
