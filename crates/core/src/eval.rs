//! Bottom-up query evaluation (Section 8.2).
//!
//! "Each query expression can be evaluated bottom-up … First, the atomic
//! queries are evaluated, and the resulting entries are sorted by the
//! lexicographic ordering on the reverse of their dn's. Next, each
//! operator in the query tree is evaluated … and the result is pipelined
//! to a higher operator. Since each operator gets sorted input lists, and
//! computes a sorted output list, no additional sorting … is necessary."
//!
//! [`Evaluator`] walks the tree in reverse topological (post-) order,
//! evaluating atomic leaves through an [`AtomicSource`] (an indexed
//! directory, a remote server stub — anything that yields sorted entry
//! lists) and operators through the algorithms of this crate. Every
//! intermediate result is a paged list on the evaluator's pager, so a
//! single I/O ledger covers the whole tree; [`Evaluator::evaluate_traced`]
//! additionally reports per-node I/O and cardinalities — the raw material
//! of the Theorem 8.3/8.4 experiments.

use crate::agg::CompiledAggFilter;
use crate::ast::Query;
use crate::error::{QueryError, QueryResult};
use crate::{agg_simple, boolean, er_join, hs_stack};
use netdir_filter::{AtomicFilter, Scope};
use netdir_index::IndexedDirectory;
use netdir_model::{Dn, Entry};
use netdir_pager::{IoSnapshot, PagedList, Pager, PagerResult};

/// A source of atomic-query results: sorted entry lists.
pub trait AtomicSource {
    /// Evaluate `(base ? scope ? filter)` to a reverse-DN-sorted list.
    fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>>;
}

impl AtomicSource for IndexedDirectory {
    fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>> {
        IndexedDirectory::evaluate_atomic(self, base, scope, filter)
    }
}

/// Per-node trace record from [`Evaluator::evaluate_traced`].
#[derive(Debug, Clone)]
pub struct NodeTrace {
    /// The node, rendered.
    pub node: String,
    /// Entries flowing in from child operators (0 for atomic leaves).
    pub input_len: u64,
    /// Result cardinality.
    pub output_len: u64,
    /// Result size in pages.
    pub output_pages: u64,
    /// I/O spent evaluating this node (excluding its children).
    pub io: IoSnapshot,
    /// Wall time spent in this node (excluding its children).
    pub elapsed_nanos: u64,
}

/// The query evaluator.
pub struct Evaluator<'s, S: AtomicSource> {
    source: &'s S,
    pager: Pager,
    /// When enabled, identical sub-queries evaluate once (common
    /// sub-expression elimination). Off by default so cost experiments
    /// measure each node; applications with self-referential compositions
    /// (the QoS engine's `top` appears three times) switch it on.
    memo: Option<std::cell::RefCell<std::collections::HashMap<Query, PagedList<Entry>>>>,
}

impl<'s, S: AtomicSource> Evaluator<'s, S> {
    /// Evaluate over `source`, staging intermediates on `pager`.
    pub fn new(source: &'s S, pager: &Pager) -> Self {
        Evaluator {
            source,
            pager: pager.clone(),
            memo: None,
        }
    }

    /// Enable common-sub-expression caching for this evaluator.
    pub fn with_memo(mut self) -> Self {
        self.memo = Some(std::cell::RefCell::new(std::collections::HashMap::new()));
        self
    }

    /// Evaluate `q` to a sorted entry list.
    pub fn evaluate(&self, q: &Query) -> QueryResult<PagedList<Entry>> {
        self.eval_node(q, &mut None)
    }

    /// Evaluate `q`, also collecting a per-node trace (post-order).
    pub fn evaluate_traced(
        &self,
        q: &Query,
    ) -> QueryResult<(PagedList<Entry>, Vec<NodeTrace>)> {
        let mut traces = Some(Vec::new());
        let out = self.eval_node(q, &mut traces)?;
        Ok((out, traces.expect("traces preserved")))
    }

    fn eval_node(
        &self,
        q: &Query,
        traces: &mut Option<Vec<NodeTrace>>,
    ) -> QueryResult<PagedList<Entry>> {
        if let Some(memo) = &self.memo {
            if let Some(hit) = memo.borrow().get(q) {
                return Ok(hit.clone());
            }
        }
        let out = self.eval_node_uncached(q, traces)?;
        if let Some(memo) = &self.memo {
            memo.borrow_mut().insert(q.clone(), out.clone());
        }
        Ok(out)
    }

    fn eval_node_uncached(
        &self,
        q: &Query,
        traces: &mut Option<Vec<NodeTrace>>,
    ) -> QueryResult<PagedList<Entry>> {
        // Children first (their I/O is attributed to them).
        let result = match q {
            Query::Atomic {
                base,
                scope,
                filter,
            } => {
                let before = self.pager.io();
                let started = std::time::Instant::now();
                let out = self.source.evaluate_atomic(base, *scope, filter)?;
                self.trace(traces, q, &out, 0, before, started);
                out
            }
            Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => {
                let op = match q {
                    Query::And(..) => boolean::BoolOp::And,
                    Query::Or(..) => boolean::BoolOp::Or,
                    _ => boolean::BoolOp::Diff,
                };
                let la = self.eval_node(a, traces)?;
                let lb = self.eval_node(b, traces)?;
                let before = self.pager.io();
                let started = std::time::Instant::now();
                let out = boolean::merge(&self.pager, op, &la, &lb)?;
                self.trace(traces, q, &out, la.len() + lb.len(), before, started);
                out
            }
            Query::Hier { op, q1, q2, agg } => {
                let l1 = self.eval_node(q1, traces)?;
                let l2 = self.eval_node(q2, traces)?;
                let filter = compile_structural(agg)?;
                let before = self.pager.io();
                let started = std::time::Instant::now();
                let out = hs_stack::hs_select(
                    &self.pager,
                    (*op).into(),
                    &l1,
                    &l2,
                    None,
                    &filter,
                )?;
                self.trace(traces, q, &out, l1.len() + l2.len(), before, started);
                out
            }
            Query::HierPath {
                op,
                q1,
                q2,
                q3,
                agg,
            } => {
                let l1 = self.eval_node(q1, traces)?;
                let l2 = self.eval_node(q2, traces)?;
                let l3 = self.eval_node(q3, traces)?;
                let filter = compile_structural(agg)?;
                let before = self.pager.io();
                let started = std::time::Instant::now();
                let out = hs_stack::hs_select(
                    &self.pager,
                    (*op).into(),
                    &l1,
                    &l2,
                    Some(&l3),
                    &filter,
                )?;
                self.trace(traces, q, &out, l1.len() + l2.len() + l3.len(), before, started);
                out
            }
            Query::AggSelect { query, filter } => {
                let l1 = self.eval_node(query, traces)?;
                let compiled = CompiledAggFilter::compile(filter, false)?;
                let before = self.pager.io();
                let started = std::time::Instant::now();
                let out = agg_simple::simple_agg_select(&self.pager, &l1, &compiled)?;
                self.trace(traces, q, &out, l1.len(), before, started);
                out
            }
            Query::EmbedRef {
                op,
                q1,
                q2,
                attr,
                agg,
            } => {
                let l1 = self.eval_node(q1, traces)?;
                let l2 = self.eval_node(q2, traces)?;
                let filter = compile_structural(agg)?;
                let before = self.pager.io();
                let started = std::time::Instant::now();
                let out =
                    er_join::er_select(&self.pager, *op, &l1, &l2, attr, &filter)?;
                self.trace(traces, q, &out, l1.len() + l2.len(), before, started);
                out
            }
        };
        Ok(result)
    }

    fn trace(
        &self,
        traces: &mut Option<Vec<NodeTrace>>,
        q: &Query,
        out: &PagedList<Entry>,
        input_len: u64,
        before: IoSnapshot,
        started: std::time::Instant,
    ) {
        if let Some(traces) = traces {
            traces.push(NodeTrace {
                node: summarize(q),
                input_len,
                output_len: out.len(),
                output_pages: out.num_pages(),
                io: self.pager.io().since(before),
                elapsed_nanos: u64::try_from(started.elapsed().as_nanos())
                    .unwrap_or(u64::MAX),
            });
        }
    }
}

fn compile_structural(agg: &Option<crate::ast::AggSelFilter>) -> QueryResult<CompiledAggFilter> {
    match agg {
        None => Ok(CompiledAggFilter::exists_witness()),
        Some(f) => CompiledAggFilter::compile(f, true),
    }
}

/// One-line description of a node (operator symbol, not the whole subtree).
fn summarize(q: &Query) -> String {
    match q {
        Query::Atomic {
            base,
            scope,
            filter,
        } => format!("({base} ? {scope} ? {filter})"),
        Query::And(..) => "(&)".into(),
        Query::Or(..) => "(|)".into(),
        Query::Diff(..) => "(-)".into(),
        Query::Hier { op, agg, .. } => match agg {
            None => format!("({})", op.symbol()),
            Some(f) => format!("({} … {f})", op.symbol()),
        },
        Query::HierPath { op, agg, .. } => match agg {
            None => format!("({})", op.symbol()),
            Some(f) => format!("({} … {f})", op.symbol()),
        },
        Query::AggSelect { filter, .. } => format!("(g … {filter})"),
        Query::EmbedRef { op, attr, agg, .. } => match agg {
            None => format!("({} … {attr})", op.symbol()),
            Some(f) => format!("({} … {attr} {f})", op.symbol()),
        },
    }
}

/// Convenience: evaluate a query string against an indexed directory.
pub fn run_query(
    idx: &IndexedDirectory,
    pager: &Pager,
    query: &str,
) -> QueryResult<Vec<Entry>> {
    let q = crate::parser::parse_query(query)?;
    let out = Evaluator::new(idx, pager).evaluate(&q)?;
    out.to_vec().map_err(QueryError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use netdir_model::{Directory, Entry};
    use netdir_pager::tiny_pager;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    /// A miniature AT&T-ish directory exercising all operators.
    fn dir() -> Directory {
        let mut d = Directory::new();
        let mut add = |e: Entry| {
            d.insert(e).unwrap();
        };
        for s in ["dc=com", "dc=att, dc=com", "dc=research, dc=att, dc=com", "dc=org"] {
            add(Entry::builder(dn(s)).class("dcObject").build().unwrap());
        }
        for (ou, parent) in [
            ("people", "dc=att, dc=com"),
            ("people", "dc=research, dc=att, dc=com"),
            ("tp", "dc=att, dc=com"),
        ] {
            add(Entry::builder(dn(&format!("ou={ou}, {parent}")))
                .class("organizationalUnit")
                .build()
                .unwrap());
        }
        // jagadish appears both in att and in research.
        for (uid, parent, sn) in [
            ("jag", "ou=people, dc=att, dc=com", "jagadish"),
            ("jag2", "ou=people, dc=research, dc=att, dc=com", "jagadish"),
            ("divesh", "ou=people, dc=att, dc=com", "srivastava"),
        ] {
            add(Entry::builder(dn(&format!("uid={uid}, {parent}")))
                .class("person")
                .attr("surName", sn)
                .build()
                .unwrap());
        }
        // Profiles referenced by policies.
        add(Entry::builder(dn("TPName=smtp, ou=tp, dc=att, dc=com"))
            .class("trafficProfile")
            .attr("sourcePort", 25i64)
            .build()
            .unwrap());
        add(Entry::builder(dn("SLAPolicyName=mail, ou=tp, dc=att, dc=com"))
            .class("SLAPolicyRules")
            .attr("SLARulePriority", 1i64)
            .attr("SLATPRef", dn("TPName=smtp, ou=tp, dc=att, dc=com"))
            .build()
            .unwrap());
        d
    }

    fn setup() -> (IndexedDirectory, Pager) {
        let pager = tiny_pager();
        let idx = IndexedDirectory::build(&pager, &dir()).unwrap();
        (idx, pager)
    }

    fn run(q: &str) -> Vec<String> {
        let (idx, pager) = setup();
        run_query(&idx, &pager, q)
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect()
    }

    #[test]
    fn example_4_1_end_to_end() {
        let got = run(
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
               (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        );
        assert_eq!(got, vec!["uid=jag, ou=people, dc=att, dc=com"]);
    }

    #[test]
    fn example_5_1_end_to_end() {
        let got = run(
            "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
                (dc=att, dc=com ? sub ? surName=jagadish))",
        );
        // Reverse-DN order: the research OU's key extends dc=att's key
        // with "dc=research", which sorts before the sibling "ou=people".
        assert_eq!(
            got,
            vec![
                "ou=people, dc=research, dc=att, dc=com",
                "ou=people, dc=att, dc=com"
            ]
        );
    }

    #[test]
    fn example_5_3_end_to_end() {
        // Which subnets have SMTP traffic profiles with no intervening
        // dcObject?
        let got = run(
            "(dc (dc=att, dc=com ? sub ? objectClass=dcObject) \
                 (& (dc=att, dc=com ? sub ? sourcePort=25) \
                    (dc=att, dc=com ? sub ? objectClass=trafficProfile)) \
                 (dc=att, dc=com ? sub ? objectClass=dcObject))",
        );
        assert_eq!(got, vec!["dc=att, dc=com"]);
    }

    #[test]
    fn l3_vd_end_to_end() {
        let got = run(
            "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
                 (dc=att, dc=com ? sub ? sourcePort=25) \
                 SLATPRef)",
        );
        assert_eq!(got, vec!["SLAPolicyName=mail, ou=tp, dc=att, dc=com"]);
    }

    #[test]
    fn traced_evaluation_reports_every_node() {
        let (idx, pager) = setup();
        let q = parse_query(
            "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
                (dc=att, dc=com ? sub ? surName=jagadish))",
        )
        .unwrap();
        let (out, traces) = Evaluator::new(&idx, &pager).evaluate_traced(&q).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(traces.len(), 3); // two atoms + the operator
        // Eq filter values render canonically (case-folded).
        assert!(traces[0].node.contains("organizationalunit"));
        assert_eq!(traces[2].node, "(c)");
        assert_eq!(traces[2].output_len, 2);
    }

    #[test]
    fn bad_agg_filter_surfaces() {
        let (idx, pager) = setup();
        let q = parse_query("(g (dc=com ? sub ? a=*) count($2) > 0)");
        // count($2) in g context is caught at evaluation (compile step).
        let q = q.unwrap();
        let err = Evaluator::new(&idx, &pager).evaluate(&q).unwrap_err();
        assert!(matches!(err, QueryError::BadAggFilter { .. }));
    }

    #[test]
    fn closure_queries_compose() {
        // Feed an L1 result into another L1 operator: (a (c ...) ...).
        let got = run(
            "(a (uid=jag, ou=people, dc=att, dc=com ? base ? objectClass=person) \
                (c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
                   (dc=att, dc=com ? sub ? surName=jagadish)))",
        );
        assert_eq!(got, vec!["uid=jag, ou=people, dc=att, dc=com"]);
    }
}
