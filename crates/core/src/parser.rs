//! Parser for the paper's query syntax (grammars of Figures 7–10).
//!
//! ```text
//! (dc=att, dc=com ? sub ? surName=jagadish)                 — atomic
//! (- Q1 Q2)  (& Q1 Q2)  (| Q1 Q2)                           — L0
//! (p Q1 Q2)  (c Q1 Q2)  (a Q1 Q2)  (d Q1 Q2)
//! (ac Q1 Q2 Q3)  (dc Q1 Q2 Q3)                              — L1
//! (g Q count(SLAPVPRef) > 1)
//! (c Q1 Q2 count($2) > 10)                                  — L2
//! (vd Q1 Q2 SLATPRef)  (dv Q1 Q2 SLADSActRef [AggSel])      — L3
//! ```
//!
//! Binary boolean operators are parsed n-ary-tolerantly (`(& a b c)`
//! associates left), since the figures' grammar is binary but examples
//! chain naturally.

use crate::ast::*;
use crate::error::{QueryError, QueryResult};
use netdir_filter::atomic::IntOp;
use netdir_filter::{parse_atomic, Scope};
use netdir_model::{AttrName, Dn};

/// Parse a query string.
///
/// ```
/// use netdir_query::{parse_query, classify, Language};
/// let q = parse_query(
///     "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
///         (dc=att, dc=com ? sub ? surName=jagadish) \
///         count($2) > 10)").unwrap();
/// assert_eq!(classify(&q), Language::L2);
/// assert_eq!(parse_query(&q.to_string()).unwrap(), q); // round-trips
/// ```
pub fn parse_query(input: &str) -> QueryResult<Query> {
    let mut p = Parser {
        src: input,
        pos: 0,
    };
    let q = p.parse_query()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

/// Parse an aggregate selection filter string, e.g.
/// `min(SLARulePriority) = min(min(SLARulePriority))`.
pub fn parse_agg_filter(input: &str) -> QueryResult<AggSelFilter> {
    let p = Parser {
        src: input,
        pos: 0,
    };
    p.parse_agg_filter_text(input.trim())
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> QueryError {
        QueryError::Parse {
            input: self.src.to_string(),
            detail: format!("{} (at byte {})", detail.into(), self.pos),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn expect(&mut self, c: char) -> QueryResult<()> {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.rest().starts_with(c)
    }

    fn parse_query(&mut self) -> QueryResult<Query> {
        self.expect('(')?;
        self.skip_ws();
        // Operator symbol or atomic query body?
        let op = self.peek_operator();
        match op {
            Some(sym) => {
                self.pos += sym.len();
                self.parse_operator_body(sym)
            }
            None => self.parse_atomic_body(),
        }
    }

    /// An operator symbol must be followed by whitespace or '(' to avoid
    /// mistaking an atomic body like `dc=att…` (starting with 'd') or
    /// `a=1…` for an operator.
    fn peek_operator(&self) -> Option<&'static str> {
        const OPS: [&str; 12] = [
            "&", "|", "-", "ac", "dc", "p", "c", "a", "d", "g", "vd", "dv",
        ];
        let rest = self.rest();
        for sym in OPS {
            if let Some(after) = rest.strip_prefix(sym) {
                if after.starts_with(char::is_whitespace) || after.starts_with('(') {
                    return Some(sym);
                }
            }
        }
        None
    }

    fn parse_operator_body(&mut self, sym: &str) -> QueryResult<Query> {
        match sym {
            "&" | "|" | "-" => {
                let mut qs = Vec::new();
                while self.peek_is('(') {
                    qs.push(self.parse_query()?);
                }
                self.expect(')')?;
                if qs.len() < 2 {
                    return Err(self.err(format!("({sym} …) needs at least two operands")));
                }
                let mut it = qs.into_iter();
                let first = it.next().expect("len >= 2");
                Ok(it.fold(first, |acc, q| match sym {
                    "&" => Query::and(acc, q),
                    "|" => Query::or(acc, q),
                    _ => Query::diff(acc, q),
                }))
            }
            "p" | "c" | "a" | "d" => {
                let op = match sym {
                    "p" => HierOp::Parents,
                    "c" => HierOp::Children,
                    "a" => HierOp::Ancestors,
                    _ => HierOp::Descendants,
                };
                let q1 = self.parse_query()?;
                let q2 = self.parse_query()?;
                let agg = self.parse_optional_agg()?;
                self.expect(')')?;
                Ok(Query::Hier {
                    op,
                    q1: Box::new(q1),
                    q2: Box::new(q2),
                    agg,
                })
            }
            "ac" | "dc" => {
                let op = if sym == "ac" {
                    HierPathOp::AncestorsConstrained
                } else {
                    HierPathOp::DescendantsConstrained
                };
                let q1 = self.parse_query()?;
                let q2 = self.parse_query()?;
                let q3 = self.parse_query()?;
                let agg = self.parse_optional_agg()?;
                self.expect(')')?;
                Ok(Query::HierPath {
                    op,
                    q1: Box::new(q1),
                    q2: Box::new(q2),
                    q3: Box::new(q3),
                    agg,
                })
            }
            "g" => {
                let q = self.parse_query()?;
                let Some(agg) = self.parse_optional_agg()? else {
                    return Err(self.err("(g …) requires an aggregate selection filter"));
                };
                self.expect(')')?;
                Ok(Query::AggSelect {
                    query: Box::new(q),
                    filter: agg,
                })
            }
            "vd" | "dv" => {
                let op = if sym == "vd" {
                    RefOp::ValueDn
                } else {
                    RefOp::DnValue
                };
                let q1 = self.parse_query()?;
                let q2 = self.parse_query()?;
                // Attribute name, then optional agg filter, then ')'.
                let tail = self.take_until_close()?;
                let tail = tail.trim();
                if tail.is_empty() {
                    return Err(self.err(format!("({sym} …) requires an attribute name")));
                }
                let (attr_s, agg_s) = match tail.find(char::is_whitespace) {
                    None => (tail, None),
                    Some(i) => (&tail[..i], Some(tail[i..].trim())),
                };
                let agg = match agg_s {
                    None => None,
                    Some("") => None,
                    Some(s) => Some(self.parse_agg_filter_text(s)?),
                };
                Ok(Query::EmbedRef {
                    op,
                    q1: Box::new(q1),
                    q2: Box::new(q2),
                    attr: AttrName::new(attr_s),
                    agg,
                })
            }
            _ => unreachable!("peek_operator only returns known symbols"),
        }
    }

    /// Optional trailing aggregate filter before the closing paren.
    fn parse_optional_agg(&mut self) -> QueryResult<Option<AggSelFilter>> {
        self.skip_ws();
        if self.rest().starts_with(')') {
            return Ok(None); // caller consumes the ')'
        }
        let text = self.take_until_close_peek()?;
        let f = self.parse_agg_filter_text(text.trim())?;
        self.pos += text.len();
        Ok(Some(f))
    }

    /// Text up to (not including) the next top-level ')', consuming it
    /// but not the paren.
    fn take_until_close(&mut self) -> QueryResult<&'a str> {
        let s = self.take_until_close_peek()?;
        self.pos += s.len();
        self.expect(')')?;
        Ok(s)
    }

    fn take_until_close_peek(&mut self) -> QueryResult<&'a str> {
        self.skip_ws();
        let rest = self.rest();
        let mut depth = 0usize;
        for (i, ch) in rest.char_indices() {
            match ch {
                '(' => depth += 1,
                ')' => {
                    if depth == 0 {
                        return Ok(&rest[..i]);
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        Err(self.err("unterminated query"))
    }

    /// Atomic query body: `BaseDN ? Scope ? AtomicFilter` up to ')'.
    fn parse_atomic_body(&mut self) -> QueryResult<Query> {
        let body = self.take_until_close()?;
        let mut parts = body.splitn(3, '?');
        let base_s = parts
            .next()
            .ok_or_else(|| self.err("missing base DN"))?
            .trim();
        let scope_s = parts
            .next()
            .ok_or_else(|| self.err("atomic query needs `base ? scope ? filter`"))?
            .trim();
        let filter_s = parts
            .next()
            .ok_or_else(|| self.err("atomic query needs a filter"))?
            .trim();
        let base = if base_s.eq_ignore_ascii_case("null-dn") {
            Dn::root()
        } else {
            Dn::parse(base_s).map_err(|e| self.err(format!("bad base DN: {e}")))?
        };
        let scope =
            Scope::parse(scope_s).ok_or_else(|| self.err(format!("bad scope {scope_s:?}")))?;
        let filter =
            parse_atomic(filter_s).map_err(|e| self.err(format!("bad filter: {e}")))?;
        Ok(Query::Atomic {
            base,
            scope,
            filter,
        })
    }

    /// Parse `AggAttribute IntOp AggAttribute` from a detached string.
    fn parse_agg_filter_text(&self, s: &str) -> QueryResult<AggSelFilter> {
        // Find the comparison operator at depth 0.
        let bytes = s.as_bytes();
        let mut depth = 0usize;
        let mut found: Option<(usize, usize, IntOp)> = None;
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => depth = depth.saturating_sub(1),
                b'<' | b'>' | b'=' if depth == 0 => {
                    let (op, len) = match (bytes[i], bytes.get(i + 1)) {
                        (b'<', Some(b'=')) => (IntOp::Le, 2),
                        (b'>', Some(b'=')) => (IntOp::Ge, 2),
                        (b'<', _) => (IntOp::Lt, 1),
                        (b'>', _) => (IntOp::Gt, 1),
                        (b'=', _) => (IntOp::Eq, 1),
                        _ => unreachable!(),
                    };
                    found = Some((i, len, op));
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let Some((at, len, op)) = found else {
            return Err(self.err(format!("no comparison operator in {s:?}")));
        };
        let lhs = self.parse_agg_attribute(s[..at].trim())?;
        let rhs = self.parse_agg_attribute(s[at + len..].trim())?;
        Ok(AggSelFilter { lhs, op, rhs })
    }

    fn parse_agg_attribute(&self, s: &str) -> QueryResult<AggAttribute> {
        if let Ok(c) = s.parse::<i64>() {
            return Ok(AggAttribute::Const(c));
        }
        if s == "count($$)" {
            return Ok(AggAttribute::CountAll);
        }
        if s == "count($1)" {
            return Ok(AggAttribute::CountR1);
        }
        // agg(inner)
        let (agg, inner) = self.split_agg_call(s)?;
        // Nested aggregate → entry-set aggregate.
        if let Ok((inner_agg, inner_arg)) = self.split_agg_call(inner) {
            let ea = self.make_entry_agg(inner_agg, inner_arg)?;
            return Ok(AggAttribute::EntrySet(agg, Box::new(ea)));
        }
        if inner == "$2" {
            if agg != Aggregate::Count {
                return Err(self.err("only count($2) is a valid witness-set aggregate"));
            }
            return Ok(AggAttribute::Entry(EntryAgg::CountWitnesses));
        }
        Ok(AggAttribute::Entry(self.make_entry_agg(agg, inner)?))
    }

    fn make_entry_agg(&self, agg: Aggregate, arg: &str) -> QueryResult<EntryAgg> {
        if arg == "$2" {
            if agg != Aggregate::Count {
                return Err(self.err("only count($2) is a valid witness-set aggregate"));
            }
            return Ok(EntryAgg::CountWitnesses);
        }
        let attr_ref = if let Some(a) = arg.strip_prefix("$1.") {
            AttrRef::Of1(AttrName::new(a))
        } else if let Some(a) = arg.strip_prefix("$2.") {
            AttrRef::Of2(AttrName::new(a))
        } else {
            AttrRef::Own(AttrName::new(arg))
        };
        if attr_ref.attr().as_str().is_empty() {
            return Err(self.err(format!("empty attribute in aggregate argument {arg:?}")));
        }
        Ok(EntryAgg::Agg(agg, attr_ref))
    }

    /// Split `name(arg)` into an [`Aggregate`] and its argument text.
    fn split_agg_call<'s>(&self, s: &'s str) -> QueryResult<(Aggregate, &'s str)> {
        let open = s
            .find('(')
            .ok_or_else(|| self.err(format!("expected aggregate call, got {s:?}")))?;
        if !s.ends_with(')') {
            return Err(self.err(format!("unterminated aggregate call {s:?}")));
        }
        let name = s[..open].trim();
        let agg = match name {
            "min" => Aggregate::Min,
            "max" => Aggregate::Max,
            "count" => Aggregate::Count,
            "sum" => Aggregate::Sum,
            "average" | "avg" => Aggregate::Average,
            _ => return Err(self.err(format!("unknown aggregate {name:?}"))),
        };
        Ok((agg, s[open + 1..s.len() - 1].trim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_filter::AtomicFilter;

    fn roundtrip(s: &str) -> Query {
        let q = parse_query(s).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(q, q2, "display/parse roundtrip for {s}");
        q
    }

    #[test]
    fn atomic_query() {
        let q = roundtrip("(dc=att, dc=com ? sub ? surName=jagadish)");
        match q {
            Query::Atomic {
                base,
                scope,
                filter,
            } => {
                assert_eq!(base, Dn::parse("dc=att, dc=com").unwrap());
                assert_eq!(scope, Scope::Sub);
                assert_eq!(filter, AtomicFilter::eq("surName", "jagadish"));
            }
            other => panic!("wrong parse {other:?}"),
        }
    }

    #[test]
    fn example_4_1_difference() {
        // Example 4.1: AT&T minus Research.
        let q = roundtrip(
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
               (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        );
        assert!(matches!(q, Query::Diff(_, _)));
        assert_eq!(q.num_nodes(), 3);
    }

    #[test]
    fn example_5_1_children() {
        let q = roundtrip(
            "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit) \
                (dc=att, dc=com ? sub ? surName=jagadish))",
        );
        assert!(matches!(
            q,
            Query::Hier {
                op: HierOp::Children,
                agg: None,
                ..
            }
        ));
    }

    #[test]
    fn example_5_3_constrained_descendants() {
        let q = roundtrip(
            "(dc (dc=att, dc=com ? sub ? objectClass=dcObject) \
                 (& (dc=att, dc=com ? sub ? sourcePort=25) \
                    (dc=att, dc=com ? sub ? objectClass=trafficProfile)) \
                 (dc=att, dc=com ? sub ? objectClass=dcObject))",
        );
        match &q {
            Query::HierPath { op, q2, .. } => {
                assert_eq!(*op, HierPathOp::DescendantsConstrained);
                assert!(matches!(**q2, Query::And(_, _)));
            }
            other => panic!("wrong parse {other:?}"),
        }
        assert_eq!(q.num_nodes(), 6);
    }

    #[test]
    fn example_6_1_simple_agg() {
        let q = roundtrip(
            "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
                count(SLAPVPRef) > 1)",
        );
        match q {
            Query::AggSelect { filter, .. } => {
                assert_eq!(
                    filter.lhs,
                    AggAttribute::Entry(EntryAgg::Agg(
                        Aggregate::Count,
                        AttrRef::Own("SLAPVPRef".into())
                    ))
                );
                assert_eq!(filter.rhs, AggAttribute::Const(1));
            }
            other => panic!("wrong parse {other:?}"),
        }
    }

    #[test]
    fn example_6_2_structural_agg() {
        let q = roundtrip(
            "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber) \
                (dc=att, dc=com ? sub ? objectClass=QHP) \
                count($2) > 10)",
        );
        match q {
            Query::Hier { op, agg, .. } => {
                assert_eq!(op, HierOp::Children);
                let agg = agg.unwrap();
                assert_eq!(agg.lhs, AggAttribute::Entry(EntryAgg::CountWitnesses));
                assert_eq!(agg.rhs, AggAttribute::Const(10));
            }
            other => panic!("wrong parse {other:?}"),
        }
    }

    #[test]
    fn example_7_1_embedded_reference_with_nested_agg() {
        let q = roundtrip(
            "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction) \
                 (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules) \
                        (& (dc=att, dc=com ? sub ? sourcePort=25) \
                           (dc=att, dc=com ? sub ? objectClass=trafficProfile)) \
                        SLATPRef) \
                    min(SLARulePriority) = min(min(SLARulePriority))) \
                 SLADSActRef)",
        );
        match &q {
            Query::EmbedRef { op, attr, q2, .. } => {
                assert_eq!(*op, RefOp::DnValue);
                assert_eq!(attr, &AttrName::new("SLADSActRef"));
                assert!(matches!(**q2, Query::AggSelect { .. }));
            }
            other => panic!("wrong parse {other:?}"),
        }
        assert_eq!(q.num_nodes(), 8);
    }

    #[test]
    fn null_dn_base_and_nary_booleans() {
        let q = roundtrip("(& (null-dn ? sub ? objectClass=*) (dc=com ? base ? a=1) (dc=com ? one ? b=2))");
        // n-ary & folds left.
        assert!(matches!(q, Query::And(_, _)));
        assert_eq!(q.num_nodes(), 5);
        let atoms = q.atomic_subqueries();
        match atoms[0] {
            Query::Atomic { base, .. } => assert!(base.is_root()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn max_count_filter_parses() {
        let f = parse_agg_filter("count($2) = max(count($2))").unwrap();
        assert_eq!(f.lhs, AggAttribute::Entry(EntryAgg::CountWitnesses));
        assert_eq!(
            f.rhs,
            AggAttribute::EntrySet(Aggregate::Max, Box::new(EntryAgg::CountWitnesses))
        );
    }

    #[test]
    fn witness_attr_refs_parse() {
        let f = parse_agg_filter("min($2.priority) <= sum($1.weight)").unwrap();
        assert_eq!(
            f.lhs,
            AggAttribute::Entry(EntryAgg::Agg(
                Aggregate::Min,
                AttrRef::Of2("priority".into())
            ))
        );
        assert_eq!(f.op, IntOp::Le);
        assert_eq!(
            f.rhs,
            AggAttribute::Entry(EntryAgg::Agg(
                Aggregate::Sum,
                AttrRef::Of1("weight".into())
            ))
        );
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "(p (dc=com ? sub ? a=1))",                 // missing operand
            "(dc=com ? sub)",                            // missing filter
            "(dc=com ? tree ? a=1)",                     // bad scope
            "(g (dc=com ? sub ? a=1))",                  // g without filter
            "(vd (dc=com ? sub ? a=1) (dc=com ? sub ? b=2))", // vd without attr
            "(dc=com ? sub ? a=1) extra",                // trailing
            "(& (dc=com ? sub ? a=1))",                  // unary &
            "(g (dc=com ? sub ? a=1) frob(x) > 1)",      // unknown aggregate
            "(c (dc=com ? sub ? a=1) (dc=com ? sub ? b=2) min($2) > 1)", // min($2)
        ] {
            assert!(parse_query(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn operator_vs_atomic_disambiguation() {
        // Atomic bodies starting with operator letters must not confuse
        // the parser: `d=x`, `a=1`, `dc=com`, `p=q`.
        for s in [
            "(d=x ? base ? a=1)",
            "(a=1, dc=com ? one ? b=2)",
            "(dc=com ? sub ? c=3)",
            "(p=q ? sub ? objectClass=*)",
        ] {
            let q = parse_query(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(matches!(q, Query::Atomic { .. }), "{s} must parse atomic");
        }
    }
}
