//! The Theorem 8.2(d) rewrites: `{ac, dc}` express all of `{p, c, a, d}`.
//!
//! Section 8.1 shows `L0 + {ac, dc}` equals `L1` in expressive power but
//! argues *against* dropping the four simpler operators, because the
//! rewrites' third operand ranges over the **whole directory**:
//!
//! ```text
//! (p Q1 Q2) = (ac Q1 Q2 (null-dn ? sub ? objectClass=*))
//! ```
//!
//! and evaluation cost is linear in the size of operator inputs — so the
//! rewrite turns a cheap query into one that scans everything. Experiment
//! E11 measures exactly this blow-up.
//!
//! Caveat (inherent to the paper's rewrite, documented here for fairness):
//! `p`/`c` relate entries by *DN arithmetic*, while the `ac`/`dc` rewrite
//! detects "no entry strictly between". The two coincide on instances
//! where every ancestor of an entry is present (true of directories
//! maintained by real servers, which require parents to exist); in a
//! sparse forest a grandchild with an absent parent is `ac`-adjacent but
//! not a `p`-parent. Tests exercise both regimes.

use crate::ast::{HierOp, HierPathOp, Query};
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::Dn;

/// The "whole directory" operand: `(null-dn ? sub ? objectClass=*)`.
pub fn whole_directory() -> Query {
    Query::atomic(Dn::root(), Scope::Sub, AtomicFilter::True)
}

/// A guaranteed-empty operand: the constant-false atomic `(null-dn ? base ? false)`.
///
/// An earlier version built `(- X X)` over the whole directory — two
/// full scans to produce provably nothing, charged to every `a`/`d`
/// rewrite. The constant-false filter is answered by the index layer
/// with an empty candidate list, so the operand costs zero page reads.
pub fn empty_query() -> Query {
    Query::atomic(Dn::root(), Scope::Base, AtomicFilter::False)
}

/// Rewrite a binary hierarchy operator into its `ac`/`dc` equivalent
/// (Theorem 8.2(d)).
///
/// * `p` → `ac` with the whole directory as blockers (only the immediate
///   present ancestor survives);
/// * `c` → `dc` likewise;
/// * `a` → `ac` with an *empty* blocker set (nothing blocks);
/// * `d` → `dc` likewise.
pub fn rewrite_via_constrained(op: HierOp, q1: Query, q2: Query) -> Query {
    match op {
        HierOp::Parents => Query::hier_path(
            HierPathOp::AncestorsConstrained,
            q1,
            q2,
            whole_directory(),
        ),
        HierOp::Children => Query::hier_path(
            HierPathOp::DescendantsConstrained,
            q1,
            q2,
            whole_directory(),
        ),
        HierOp::Ancestors => {
            Query::hier_path(HierPathOp::AncestorsConstrained, q1, q2, empty_query())
        }
        HierOp::Descendants => {
            Query::hier_path(HierPathOp::DescendantsConstrained, q1, q2, empty_query())
        }
    }
}

/// Rewrite every plain `p`/`c`/`a`/`d` node in a query tree (used by the
/// rewrite-cost experiment).
pub fn rewrite_tree(q: &Query) -> Query {
    match q {
        Query::Atomic { .. } => q.clone(),
        Query::And(a, b) => Query::and(rewrite_tree(a), rewrite_tree(b)),
        Query::Or(a, b) => Query::or(rewrite_tree(a), rewrite_tree(b)),
        Query::Diff(a, b) => Query::diff(rewrite_tree(a), rewrite_tree(b)),
        Query::Hier { op, q1, q2, agg } => {
            let q1 = rewrite_tree(q1);
            let q2 = rewrite_tree(q2);
            match agg {
                None => rewrite_via_constrained(*op, q1, q2),
                // Aggregate forms rewrite identically (the filter moves
                // onto the constrained operator).
                Some(f) => match rewrite_via_constrained(*op, q1, q2) {
                    Query::HierPath {
                        op, q1, q2, q3, ..
                    } => Query::HierPath {
                        op,
                        q1,
                        q2,
                        q3,
                        agg: Some(f.clone()),
                    },
                    _ => unreachable!("rewrite_via_constrained returns HierPath"),
                },
            }
        }
        Query::HierPath {
            op,
            q1,
            q2,
            q3,
            agg,
        } => Query::HierPath {
            op: *op,
            q1: Box::new(rewrite_tree(q1)),
            q2: Box::new(rewrite_tree(q2)),
            q3: Box::new(rewrite_tree(q3)),
            agg: agg.clone(),
        },
        Query::AggSelect { query, filter } => {
            Query::agg_select(rewrite_tree(query), filter.clone())
        }
        Query::EmbedRef {
            op,
            q1,
            q2,
            attr,
            agg,
        } => Query::EmbedRef {
            op: *op,
            q1: Box::new(rewrite_tree(q1)),
            q2: Box::new(rewrite_tree(q2)),
            attr: attr.clone(),
            agg: agg.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::lang::{classify, Language};
    use netdir_index::IndexedDirectory;
    use netdir_model::{Directory, Entry};
    use netdir_pager::Pager;

    fn atom() -> Query {
        Query::atomic(
            Dn::parse("dc=com").unwrap(),
            Scope::Sub,
            AtomicFilter::present("x"),
        )
    }

    #[test]
    fn rewrites_stay_in_l1() {
        for op in [
            HierOp::Parents,
            HierOp::Children,
            HierOp::Ancestors,
            HierOp::Descendants,
        ] {
            let q = rewrite_via_constrained(op, atom(), atom());
            assert_eq!(classify(&q), Language::L1);
            assert!(matches!(q, Query::HierPath { .. }));
        }
    }

    #[test]
    fn rewrite_grows_the_tree() {
        let plain = Query::hier(HierOp::Parents, atom(), atom());
        let rewritten = rewrite_tree(&plain);
        assert!(rewritten.num_nodes() > plain.num_nodes());
        // The whole-directory operand appears.
        let atoms = rewritten.atomic_subqueries();
        assert!(atoms.iter().any(|a| matches!(
            a,
            Query::Atomic { base, scope: Scope::Sub, filter: AtomicFilter::True } if base.is_root()
        )));
    }

    /// The `a`/`d` rewrites' guaranteed-empty operand must cost nothing:
    /// the old `(- X X)` form paid two whole-directory scans per rewrite
    /// (the I/O blow-up E11 measures for `p`/`c` leaked into `a`/`d`,
    /// where it buys no semantics at all).
    #[test]
    fn empty_operand_costs_no_directory_scans() {
        let mut d = Directory::new();
        let root = Dn::parse("dc=test").unwrap();
        d.insert(Entry::builder(root.clone()).class("thing").build().unwrap())
            .unwrap();
        for i in 0..60 {
            let parent = if i % 3 == 0 {
                root.clone()
            } else {
                Dn::parse(&format!("n=e{}, dc=test", i / 3)).unwrap()
            };
            let e = Entry::builder(Dn::parse(&format!("n=e{i}, {parent}")).unwrap())
                .class("thing")
                .attr("kind", if i % 2 == 0 { "red" } else { "blue" })
                .build()
                .unwrap();
            d.insert(e).unwrap();
        }
        let pager = Pager::new(512, 64);
        let idx = IndexedDirectory::build(&pager, &d).unwrap();
        let cold = |q: &Query| {
            pager.flush().unwrap();
            pager.pool().clear_cache().unwrap();
            pager.reset_io();
            let out = Evaluator::new(&idx, &pager)
                .evaluate(q)
                .unwrap()
                .to_vec()
                .unwrap();
            (out, pager.io().reads)
        };

        // The empty operand itself touches no pages at all.
        let (out, reads) = cold(&empty_query());
        assert!(out.is_empty());
        assert_eq!(reads, 0, "constant-false operand must not read pages");

        let atom = || {
            Query::atomic(
                Dn::parse("dc=test").unwrap(),
                Scope::Sub,
                AtomicFilter::eq("kind", "red"),
            )
        };
        for op in [HierOp::Ancestors, HierOp::Descendants] {
            let rewritten = rewrite_via_constrained(op, atom(), atom());
            let legacy_empty = Query::diff(whole_directory(), whole_directory());
            let legacy = match rewrite_via_constrained(op, atom(), atom()) {
                Query::HierPath { op, q1, q2, agg, .. } => Query::HierPath {
                    op,
                    q1,
                    q2,
                    q3: Box::new(legacy_empty),
                    agg,
                },
                _ => unreachable!("rewrite_via_constrained returns HierPath"),
            };
            let (out_new, io_new) = cold(&rewritten);
            let (out_old, io_old) = cold(&legacy);
            assert_eq!(out_new, out_old, "the two empty operands must agree");
            assert!(
                io_new < io_old,
                "{op:?}: rewritten form must beat the (- X X) operand \
                 ({io_new} vs {io_old} reads)"
            );
        }
    }

    #[test]
    fn rewrite_tree_is_recursive() {
        let inner = Query::hier(HierOp::Descendants, atom(), atom());
        let outer = Query::hier(HierOp::Parents, inner, atom());
        let rewritten = rewrite_tree(&outer);
        // Both hier nodes became constrained nodes.
        fn count_paths(q: &Query) -> usize {
            match q {
                Query::HierPath { q1, q2, q3, .. } => {
                    1 + count_paths(q1) + count_paths(q2) + count_paths(q3)
                }
                Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => {
                    count_paths(a) + count_paths(b)
                }
                Query::Hier { q1, q2, .. } => count_paths(q1) + count_paths(q2),
                Query::AggSelect { query, .. } => count_paths(query),
                Query::EmbedRef { q1, q2, .. } => count_paths(q1) + count_paths(q2),
                Query::Atomic { .. } => 0,
            }
        }
        assert_eq!(count_paths(&rewritten), 2);
    }
}
