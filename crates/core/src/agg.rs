//! Aggregate machinery shared by the L2/L3 operators.
//!
//! Section 6.4 observes that any "distributive or algebraic" aggregate can
//! be maintained incrementally on the stack; [`AggAcc`] is that incremental
//! state — it tracks min, max, sum and count at once (average falls out as
//! sum/count), is mergeable (`merge` is the distributive combine), and is
//! cheap enough to carry per stack frame and per pending record.
//!
//! [`CompiledAggFilter`] pre-analyses an [`AggSelFilter`]: which witness
//! attributes (`$2.a`) must be accumulated, and which per-entry aggregates
//! feed the *entry-set* aggregates (`agg1(ea)`, `count($$)`/`count($1)`)
//! that force the two-phase evaluation of Figures 3 and 6.
//!
//! Numeric semantics: aggregates operate on the *integer* values of an
//! attribute (strings do not order-aggregate; `count` alone counts values
//! of every type). An aggregate over an empty multiset is undefined, and a
//! comparison involving an undefined value is false. Values are carried as
//! `f64` (exact for the |int| < 2^53 range of directory data; `average`
//! needs the division anyway).

use crate::ast::{AggAttribute, AggSelFilter, Aggregate, AttrRef, EntryAgg};
use crate::error::{QueryError, QueryResult};
use netdir_model::{AttrName, Entry, Value};
use netdir_pager::record::{codec, PageCtx, Record};
use netdir_pager::PagerResult;

/// Incremental state for all distributive aggregates at once.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggAcc {
    /// Minimum int value seen, if any.
    pub min: Option<f64>,
    /// Maximum int value seen, if any.
    pub max: Option<f64>,
    /// Sum of int values seen.
    pub sum: f64,
    /// Count of int values seen (for sum/average).
    pub count_int: u64,
    /// Count of all values seen (any type; for `count(a)`).
    pub count_all: u64,
}

impl AggAcc {
    /// The empty accumulator.
    pub fn empty() -> AggAcc {
        AggAcc::default()
    }

    /// Fold in one integer value.
    pub fn add_int(&mut self, v: f64) {
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        self.sum += v;
        self.count_int += 1;
        self.count_all += 1;
    }

    /// Fold in one non-integer value (participates in `count` only).
    pub fn add_other(&mut self) {
        self.count_all += 1;
    }

    /// Fold in every value of `attr` on `entry`.
    pub fn add_attr_values(&mut self, entry: &Entry, attr: &AttrName) {
        for v in entry.values(attr) {
            match v {
                Value::Int(i) => self.add_int(*i as f64),
                _ => self.add_other(),
            }
        }
    }

    /// Distributive combine.
    pub fn merge(&mut self, other: &AggAcc) {
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.sum += other.sum;
        self.count_int += other.count_int;
        self.count_all += other.count_all;
    }

    /// Final value of `agg` over everything folded in; `None` when
    /// undefined (min/max/average of nothing).
    pub fn get(&self, agg: Aggregate) -> Option<f64> {
        match agg {
            Aggregate::Min => self.min,
            Aggregate::Max => self.max,
            Aggregate::Count => Some(self.count_all as f64),
            Aggregate::Sum => Some(self.sum),
            Aggregate::Average => {
                if self.count_int == 0 {
                    None
                } else {
                    Some(self.sum / self.count_int as f64)
                }
            }
        }
    }
}

impl Record for AggAcc {
    fn encode(&self, out: &mut Vec<u8>) {
        let put_opt = |out: &mut Vec<u8>, v: Option<f64>| match v {
            None => out.push(0),
            Some(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
        };
        put_opt(out, self.min);
        put_opt(out, self.max);
        out.extend_from_slice(&self.sum.to_le_bytes());
        codec::put_u64(out, self.count_int);
        codec::put_u64(out, self.count_all);
    }

    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        let mut r = codec::Reader::new(bytes);
        let get_opt = |r: &mut codec::Reader| -> PagerResult<Option<f64>> {
            Ok(match r.get_u8()? {
                0 => None,
                _ => Some(f64::from_le_bytes(r.get_u64()?.to_le_bytes())),
            })
        };
        let min = get_opt(&mut r)?;
        let max = get_opt(&mut r)?;
        let sum = f64::from_le_bytes(r.get_u64()?.to_le_bytes());
        let count_int = r.get_u64()?;
        let count_all = r.get_u64()?;
        r.finish()?;
        Ok(AggAcc {
            min,
            max,
            sum,
            count_int,
            count_all,
        })
    }
}

/// Witness-side accumulation: the witness count plus one [`AggAcc`] per
/// `$2.a` attribute the filter mentions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WitnessState {
    /// `count($2)`.
    pub count: u64,
    /// Parallel to [`CompiledAggFilter::witness_attrs`].
    pub per_attr: Vec<AggAcc>,
}

impl WitnessState {
    /// Empty state sized for `spec`.
    pub fn empty(spec: &CompiledAggFilter) -> WitnessState {
        WitnessState {
            count: 0,
            per_attr: vec![AggAcc::empty(); spec.witness_attrs.len()],
        }
    }

    /// Fold in one witness entry.
    pub fn add_witness(&mut self, spec: &CompiledAggFilter, witness: &Entry) {
        self.count += 1;
        for (acc, attr) in self.per_attr.iter_mut().zip(&spec.witness_attrs) {
            acc.add_attr_values(witness, attr);
        }
    }

    /// Fold in one witness *without* its entry. Valid only when the filter
    /// accumulates no per-attribute witness aggregates
    /// ([`CompiledAggFilter::needs_witness_entry`] is false) — the common
    /// `count($2) > 0` case, where the witness never needs decoding.
    pub fn add_anonymous_witness(&mut self) {
        debug_assert!(
            self.per_attr.is_empty(),
            "anonymous witness with per-attribute accumulators"
        );
        self.count += 1;
    }

    /// Distributive combine.
    pub fn merge(&mut self, other: &WitnessState) {
        self.count += other.count;
        for (a, b) in self.per_attr.iter_mut().zip(&other.per_attr) {
            a.merge(b);
        }
    }
}

impl Record for WitnessState {
    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.count);
        codec::put_u32(out, self.per_attr.len() as u32);
        let mut scratch = Vec::new();
        for acc in &self.per_attr {
            scratch.clear();
            acc.encode(&mut scratch);
            codec::put_bytes(out, &scratch);
        }
    }

    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        let mut r = codec::Reader::new(bytes);
        let count = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut per_attr = Vec::with_capacity(n);
        for _ in 0..n {
            per_attr.push(AggAcc::decode(r.get_bytes()?)?);
        }
        r.finish()?;
        Ok(WitnessState { count, per_attr })
    }
}

/// A sorted-list record: an entry annotated with its witness state.
/// Produced in reverse-DN order by the structural operators' first phase;
/// consumed by the selection phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotated {
    /// The candidate entry from `Q1`.
    pub entry: Entry,
    /// Its accumulated witness aggregates.
    pub wit: WitnessState,
}

impl Record for Annotated {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut e = Vec::new();
        self.entry.encode(&mut e);
        codec::put_bytes(out, &e);
        let mut w = Vec::new();
        self.wit.encode(&mut w);
        codec::put_bytes(out, &w);
    }

    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        let mut r = codec::Reader::new(bytes);
        let entry = Entry::decode(r.get_bytes()?)?;
        let wit = WitnessState::decode(r.get_bytes()?)?;
        r.finish()?;
        Ok(Annotated { entry, wit })
    }

    // v2 page hooks: the annotated record sorts and compresses by its
    // entry's reverse-DN key; the body nests the entry's slim encoding.

    fn page_key(&self) -> Option<Vec<u8>> {
        self.entry.page_key()
    }

    fn page_key_of_encoded(bytes: &[u8]) -> PagerResult<Option<Vec<u8>>> {
        let mut r = codec::Reader::new(bytes);
        Entry::page_key_of_encoded(r.get_bytes()?)
    }

    fn encode_body(&self, out: &mut Vec<u8>, ctx: &PageCtx) {
        let mut e = Vec::new();
        self.entry.encode_body(&mut e, ctx);
        codec::put_vbytes(&mut *out, &e);
        let mut w = Vec::new();
        self.wit.encode(&mut w);
        codec::put_vbytes(&mut *out, &w);
    }

    fn decode_body(key: &[u8], body: &[u8], ctx: &PageCtx) -> PagerResult<Self> {
        let mut r = codec::Reader::new(body);
        let entry = Entry::decode_body(key, r.get_vbytes()?, ctx)?;
        let wit = WitnessState::decode(r.get_vbytes()?)?;
        r.finish()?;
        Ok(Annotated { entry, wit })
    }
}

/// Global (entry-set) accumulation for the second phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalState {
    /// `count($1)` / `count($$)` — number of Q1/result-set entries.
    pub count_r1: u64,
    /// Parallel to [`CompiledAggFilter::set_terms`]: the across-entries
    /// accumulator of each inner per-entry aggregate.
    pub per_term: Vec<AggAcc>,
}

/// A pre-analysed aggregate selection filter.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAggFilter {
    /// The filter as written.
    pub filter: AggSelFilter,
    /// Distinct `$2.a` attributes needing witness accumulation.
    pub witness_attrs: Vec<AttrName>,
    /// Inner per-entry aggregates of the filter's entry-set aggregates.
    pub set_terms: Vec<EntryAgg>,
    /// True iff some aggregate reads the candidate entry's own attributes
    /// (`agg(a)` / `agg($1.a)`) — the lazy evaluation paths must decode
    /// candidates exactly when this holds.
    reads_entry: bool,
}

impl CompiledAggFilter {
    /// Analyse `filter`. `structural` is true for the hierarchy/reference
    /// operators (witness references allowed) and false for simple `g`
    /// selection (where `$2` has no meaning and is rejected).
    pub fn compile(filter: &AggSelFilter, structural: bool) -> QueryResult<CompiledAggFilter> {
        let mut c = CompiledAggFilter {
            filter: filter.clone(),
            witness_attrs: Vec::new(),
            set_terms: Vec::new(),
            reads_entry: false,
        };
        for side in [&filter.lhs, &filter.rhs] {
            c.visit_attribute(side, structural)?;
        }
        Ok(c)
    }

    /// The plain-L1 filter `count($2) > 0`, pre-compiled.
    pub fn exists_witness() -> CompiledAggFilter {
        CompiledAggFilter::compile(&AggSelFilter::exists_witness(), true)
            .expect("count($2) > 0 always compiles")
    }

    fn visit_attribute(&mut self, aa: &AggAttribute, structural: bool) -> QueryResult<()> {
        match aa {
            AggAttribute::Const(_) | AggAttribute::CountAll | AggAttribute::CountR1 => Ok(()),
            AggAttribute::Entry(ea) => self.visit_entry_agg(ea, structural),
            AggAttribute::EntrySet(_, ea) => {
                self.visit_entry_agg(ea, structural)?;
                if !self.set_terms.contains(ea) {
                    self.set_terms.push((**ea).clone());
                }
                Ok(())
            }
        }
    }

    fn visit_entry_agg(&mut self, ea: &EntryAgg, structural: bool) -> QueryResult<()> {
        match ea {
            EntryAgg::CountWitnesses => {
                if !structural {
                    return Err(QueryError::BadAggFilter {
                        detail: "count($2) has no meaning in simple (g) selection".into(),
                    });
                }
                Ok(())
            }
            EntryAgg::Agg(_, AttrRef::Of2(a)) => {
                if !structural {
                    return Err(QueryError::BadAggFilter {
                        detail: format!("$2.{a} has no meaning in simple (g) selection"),
                    });
                }
                if !self.witness_attrs.contains(a) {
                    self.witness_attrs.push(a.clone());
                }
                Ok(())
            }
            EntryAgg::Agg(_, AttrRef::Own(_)) | EntryAgg::Agg(_, AttrRef::Of1(_)) => {
                self.reads_entry = true;
                Ok(())
            }
        }
    }

    /// Does evaluating this filter read the candidate entry's attributes?
    /// When false, [`CompiledAggFilter::accept_lazy`] never needs the
    /// entry decoded (witness counts and globals suffice).
    pub fn needs_entry(&self) -> bool {
        self.reads_entry
    }

    /// Does witness accumulation read witness entries' attributes? When
    /// false (e.g. the plain `count($2) > 0` filter), witnesses only bump
    /// a counter and [`WitnessState::add_anonymous_witness`] applies.
    pub fn needs_witness_entry(&self) -> bool {
        !self.witness_attrs.is_empty()
    }

    /// Does this filter reference entry-set aggregates (forcing the
    /// two-phase evaluation with a materialized annotated list)?
    pub fn needs_globals(&self) -> bool {
        !self.set_terms.is_empty()
            || matches!(self.filter.lhs, AggAttribute::CountAll | AggAttribute::CountR1)
            || matches!(self.filter.rhs, AggAttribute::CountAll | AggAttribute::CountR1)
    }

    /// Evaluate a per-entry aggregate on `(entry, witness-state)`.
    pub fn eval_entry_agg(&self, ea: &EntryAgg, entry: &Entry, wit: &WitnessState) -> Option<f64> {
        self.eval_entry_agg_opt(ea, Some(entry), wit)
    }

    fn eval_entry_agg_opt(
        &self,
        ea: &EntryAgg,
        entry: Option<&Entry>,
        wit: &WitnessState,
    ) -> Option<f64> {
        match ea {
            EntryAgg::CountWitnesses => Some(wit.count as f64),
            EntryAgg::Agg(agg, AttrRef::Own(a)) | EntryAgg::Agg(agg, AttrRef::Of1(a)) => {
                let entry = entry.expect("filter reads candidate entry (needs_entry() is true)");
                let mut acc = AggAcc::empty();
                acc.add_attr_values(entry, a);
                acc.get(*agg)
            }
            EntryAgg::Agg(agg, AttrRef::Of2(a)) => {
                let idx = self
                    .witness_attrs
                    .iter()
                    .position(|x| x == a)
                    .expect("compiled filter tracks every $2 attr");
                wit.per_attr[idx].get(*agg)
            }
        }
    }

    /// Fold an annotated entry into the global (entry-set) state.
    pub fn accumulate_global(&self, g: &mut GlobalState, entry: &Entry, wit: &WitnessState) {
        if g.per_term.len() != self.set_terms.len() {
            g.per_term = vec![AggAcc::empty(); self.set_terms.len()];
        }
        g.count_r1 += 1;
        for (acc, term) in g.per_term.iter_mut().zip(&self.set_terms) {
            if let Some(v) = self.eval_entry_agg(term, entry, wit) {
                acc.add_int(v);
            }
        }
    }

    fn eval_attribute(
        &self,
        aa: &AggAttribute,
        entry: Option<&Entry>,
        wit: &WitnessState,
        g: &GlobalState,
    ) -> Option<f64> {
        match aa {
            AggAttribute::Const(c) => Some(*c as f64),
            AggAttribute::Entry(ea) => self.eval_entry_agg_opt(ea, entry, wit),
            AggAttribute::EntrySet(agg, ea) => {
                let idx = self
                    .set_terms
                    .iter()
                    .position(|t| t == &**ea)
                    .expect("compiled filter tracks every set term");
                g.per_term.get(idx)?.get(*agg)
            }
            AggAttribute::CountAll | AggAttribute::CountR1 => Some(g.count_r1 as f64),
        }
    }

    /// The selection judgement: does `(entry, wit)` pass, given globals?
    pub fn accept(&self, entry: &Entry, wit: &WitnessState, g: &GlobalState) -> bool {
        self.accept_lazy(Some(entry), wit, g)
    }

    /// [`CompiledAggFilter::accept`] for a candidate that may remain
    /// undecoded: pass `None` only when [`CompiledAggFilter::needs_entry`]
    /// is false (the filter then reads witness state and globals alone).
    pub fn accept_lazy(&self, entry: Option<&Entry>, wit: &WitnessState, g: &GlobalState) -> bool {
        debug_assert!(entry.is_some() || !self.reads_entry);
        let (Some(lhs), Some(rhs)) = (
            self.eval_attribute(&self.filter.lhs, entry, wit, g),
            self.eval_attribute(&self.filter.rhs, entry, wit, g),
        ) else {
            return false; // undefined aggregate → filter fails
        };
        use netdir_filter::atomic::IntOp;
        match self.filter.op {
            IntOp::Lt => lhs < rhs,
            IntOp::Le => lhs <= rhs,
            IntOp::Gt => lhs > rhs,
            IntOp::Ge => lhs >= rhs,
            IntOp::Eq => lhs == rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_filter::atomic::IntOp;
    use netdir_model::Dn;

    fn entry_with_priorities(ps: &[i64]) -> Entry {
        Entry::builder(Dn::parse("cn=x, dc=com").unwrap())
            .class("c")
            .attr_values("priority", ps.iter().copied())
            .attr("label", "text")
            .build()
            .unwrap()
    }

    #[test]
    fn acc_tracks_all_aggregates() {
        let mut acc = AggAcc::empty();
        for v in [3.0, 1.0, 2.0] {
            acc.add_int(v);
        }
        acc.add_other();
        assert_eq!(acc.get(Aggregate::Min), Some(1.0));
        assert_eq!(acc.get(Aggregate::Max), Some(3.0));
        assert_eq!(acc.get(Aggregate::Sum), Some(6.0));
        assert_eq!(acc.get(Aggregate::Count), Some(4.0)); // counts the string too
        assert_eq!(acc.get(Aggregate::Average), Some(2.0));
    }

    #[test]
    fn empty_acc_is_undefined_for_min_max_avg() {
        let acc = AggAcc::empty();
        assert_eq!(acc.get(Aggregate::Min), None);
        assert_eq!(acc.get(Aggregate::Max), None);
        assert_eq!(acc.get(Aggregate::Average), None);
        assert_eq!(acc.get(Aggregate::Sum), Some(0.0));
        assert_eq!(acc.get(Aggregate::Count), Some(0.0));
    }

    #[test]
    fn merge_is_distributive() {
        let mut a = AggAcc::empty();
        a.add_int(5.0);
        let mut b = AggAcc::empty();
        b.add_int(2.0);
        b.add_int(9.0);
        let mut merged = a;
        merged.merge(&b);
        let mut direct = AggAcc::empty();
        for v in [5.0, 2.0, 9.0] {
            direct.add_int(v);
        }
        assert_eq!(merged, direct);
    }

    #[test]
    fn acc_record_roundtrip() {
        let mut acc = AggAcc::empty();
        acc.add_int(-4.0);
        acc.add_int(10.0);
        acc.add_other();
        let mut buf = Vec::new();
        acc.encode(&mut buf);
        assert_eq!(AggAcc::decode(&buf).unwrap(), acc);

        let empty = AggAcc::empty();
        let mut buf = Vec::new();
        empty.encode(&mut buf);
        assert_eq!(AggAcc::decode(&buf).unwrap(), empty);
    }

    fn filt(lhs: AggAttribute, op: IntOp, rhs: AggAttribute) -> AggSelFilter {
        AggSelFilter { lhs, op, rhs }
    }

    #[test]
    fn compile_collects_witness_attrs_and_set_terms() {
        let f = filt(
            AggAttribute::Entry(EntryAgg::Agg(Aggregate::Min, AttrRef::Of2("x".into()))),
            IntOp::Eq,
            AggAttribute::EntrySet(
                Aggregate::Max,
                Box::new(EntryAgg::Agg(Aggregate::Min, AttrRef::Of2("x".into()))),
            ),
        );
        let c = CompiledAggFilter::compile(&f, true).unwrap();
        assert_eq!(c.witness_attrs.len(), 1);
        assert_eq!(c.set_terms.len(), 1);
        assert!(c.needs_globals());
        let simple = CompiledAggFilter::exists_witness();
        assert!(!simple.needs_globals());
    }

    #[test]
    fn witness_refs_rejected_in_simple_context() {
        let f = AggSelFilter::exists_witness();
        assert!(matches!(
            CompiledAggFilter::compile(&f, false),
            Err(QueryError::BadAggFilter { .. })
        ));
        let f = filt(
            AggAttribute::Entry(EntryAgg::Agg(Aggregate::Min, AttrRef::Of2("x".into()))),
            IntOp::Gt,
            AggAttribute::Const(0),
        );
        assert!(CompiledAggFilter::compile(&f, false).is_err());
    }

    #[test]
    fn accept_simple_entry_aggregate() {
        // count(priority) > 1
        let f = filt(
            AggAttribute::Entry(EntryAgg::Agg(
                Aggregate::Count,
                AttrRef::Own("priority".into()),
            )),
            IntOp::Gt,
            AggAttribute::Const(1),
        );
        let c = CompiledAggFilter::compile(&f, false).unwrap();
        let g = GlobalState::default();
        let w = WitnessState::default();
        assert!(c.accept(&entry_with_priorities(&[1, 2]), &w, &g));
        assert!(!c.accept(&entry_with_priorities(&[1]), &w, &g));
    }

    #[test]
    fn accept_fails_on_undefined_aggregate() {
        // min(missing) = 0 — undefined lhs → reject.
        let f = filt(
            AggAttribute::Entry(EntryAgg::Agg(
                Aggregate::Min,
                AttrRef::Own("missing".into()),
            )),
            IntOp::Eq,
            AggAttribute::Const(0),
        );
        let c = CompiledAggFilter::compile(&f, false).unwrap();
        assert!(!c.accept(
            &entry_with_priorities(&[1]),
            &WitnessState::default(),
            &GlobalState::default()
        ));
    }

    #[test]
    fn global_min_of_min_selection() {
        // min(priority) = min(min(priority))
        let ea = EntryAgg::Agg(Aggregate::Min, AttrRef::Own("priority".into()));
        let f = filt(
            AggAttribute::Entry(ea.clone()),
            IntOp::Eq,
            AggAttribute::EntrySet(Aggregate::Min, Box::new(ea)),
        );
        let c = CompiledAggFilter::compile(&f, false).unwrap();
        let entries = [
            entry_with_priorities(&[3, 5]),
            entry_with_priorities(&[2]),
            entry_with_priorities(&[4]),
        ];
        let mut g = GlobalState::default();
        let w = WitnessState::default();
        for e in &entries {
            c.accumulate_global(&mut g, e, &w);
        }
        assert_eq!(g.count_r1, 3);
        let picked: Vec<bool> = entries.iter().map(|e| c.accept(e, &w, &g)).collect();
        assert_eq!(picked, vec![false, true, false]);
    }

    #[test]
    fn witness_state_roundtrip_and_merge() {
        let f = filt(
            AggAttribute::Entry(EntryAgg::Agg(
                Aggregate::Sum,
                AttrRef::Of2("priority".into()),
            )),
            IntOp::Gt,
            AggAttribute::Const(0),
        );
        let c = CompiledAggFilter::compile(&f, true).unwrap();
        let mut w = WitnessState::empty(&c);
        w.add_witness(&c, &entry_with_priorities(&[2, 3]));
        w.add_witness(&c, &entry_with_priorities(&[5]));
        assert_eq!(w.count, 2);
        assert_eq!(w.per_attr[0].get(Aggregate::Sum), Some(10.0));

        let mut buf = Vec::new();
        w.encode(&mut buf);
        assert_eq!(WitnessState::decode(&buf).unwrap(), w);

        let mut w2 = WitnessState::empty(&c);
        w2.add_witness(&c, &entry_with_priorities(&[1]));
        w2.merge(&w);
        assert_eq!(w2.count, 3);
        assert_eq!(w2.per_attr[0].get(Aggregate::Sum), Some(11.0));
    }

    #[test]
    fn annotated_record_roundtrip() {
        let c = CompiledAggFilter::exists_witness();
        let mut wit = WitnessState::empty(&c);
        wit.count = 3;
        let ann = Annotated {
            entry: entry_with_priorities(&[1]),
            wit,
        };
        let mut buf = Vec::new();
        ann.encode(&mut buf);
        assert_eq!(Annotated::decode(&buf).unwrap(), ann);
    }
}
