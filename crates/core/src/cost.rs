//! The I/O cost model of Theorems 8.3 and 8.4.
//!
//! * **Theorem 8.3** — any L2 query evaluates in constant memory with I/O
//!   `O(|Q| · |L|/B)`: `|Q|` = query-tree nodes, `|L|` = cumulative size of
//!   the atomic sub-query outputs, `B` = blocking factor.
//! * **Theorem 8.4** — any L3 query evaluates in
//!   `O(|Q| · |L|/B · m · log(|L|/B · m))`, `m` = max values per attribute.
//!
//! [`predicted_io`] instantiates these formulas for a concrete query and
//! measured atomic-output page counts; experiment E8/E9 compares the
//! prediction's *shape* against measured ledgers (the constants are
//! implementation-specific; the theorems are asymptotic).

use crate::ast::Query;
use crate::lang::{classify, Language};

/// Inputs to the cost formulas.
#[derive(Debug, Clone, Copy)]
pub struct CostInputs {
    /// Cumulative pages of all atomic sub-query outputs (`|L|/B`).
    pub atomic_pages: u64,
    /// Max values per attribute (`m`); only L3 terms use it.
    pub max_values_per_attr: u64,
}

/// Predicted I/O (in pages, up to constants) for evaluating `q`.
///
/// Genuinely empty inputs predict 0: only the `log` argument is clamped
/// (a `log2` of sub-page inputs must not go negative or undefined), not
/// the page count itself, so EXPLAIN ANALYZE's predictions and the
/// planner's feedback loop aren't calibrated against a ≥1-page floor
/// artifact when a sub-query provably produces nothing.
pub fn predicted_io(q: &Query, inputs: CostInputs) -> f64 {
    let nodes = q.num_nodes() as f64;
    let pages = inputs.atomic_pages as f64;
    match classify(q) {
        Language::L3 => {
            let m = inputs.max_values_per_attr.max(1) as f64;
            let nm = pages * m;
            nodes * nm * nm.max(1.0).log2().max(1.0)
        }
        _ => nodes * pages,
    }
}

/// Predicted I/O (in pages, up to constants) for evaluating *one*
/// operator node, given the pages flowing into it.
///
/// `input_pages` is the cumulative size of the node's direct inputs:
/// the children's output pages for operators, the node's own output
/// pages for atomic leaves (a leaf's work is producing its list). Every
/// operator below L3 is a single linear pass over sorted inputs
/// (Theorems 6.1/8.3); the ER join adds Theorem 7.1's sort-merge
/// `m · log` factor.
///
/// As with [`predicted_io`], zero input pages predict zero I/O; only the
/// `log` argument carries a floor.
pub fn predicted_node_io(q: &Query, input_pages: u64, inputs: CostInputs) -> f64 {
    let pages = input_pages as f64;
    match q {
        Query::EmbedRef { .. } => {
            let m = inputs.max_values_per_attr.max(1) as f64;
            let nm = pages * m;
            nm * nm.max(1.0).log2().max(1.0)
        }
        _ => pages,
    }
}

/// The theorem that applies to `q`'s language.
pub fn applicable_theorem(q: &Query) -> &'static str {
    match classify(q) {
        Language::L3 => "Theorem 8.4 (O(|Q| · |L|/B · m · log(|L|/B · m)))",
        _ => "Theorem 8.3 (O(|Q| · |L|/B))",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{HierOp, RefOp};
    use netdir_filter::{AtomicFilter, Scope};
    use netdir_model::Dn;

    fn atom() -> Query {
        Query::atomic(
            Dn::parse("dc=com").unwrap(),
            Scope::Sub,
            AtomicFilter::present("x"),
        )
    }

    #[test]
    fn l2_cost_is_linear_in_pages_and_nodes() {
        let q = Query::hier(HierOp::Children, atom(), atom());
        let c1 = predicted_io(
            &q,
            CostInputs {
                atomic_pages: 100,
                max_values_per_attr: 1,
            },
        );
        let c2 = predicted_io(
            &q,
            CostInputs {
                atomic_pages: 200,
                max_values_per_attr: 1,
            },
        );
        assert!((c2 / c1 - 2.0).abs() < 1e-9, "doubling pages doubles cost");
        assert!(applicable_theorem(&q).contains("8.3"));
    }

    #[test]
    fn empty_inputs_predict_zero_io() {
        let empty = CostInputs {
            atomic_pages: 0,
            max_values_per_attr: 4,
        };
        let l2 = Query::hier(HierOp::Children, atom(), atom());
        assert_eq!(predicted_io(&l2, empty), 0.0);
        let l3 = Query::embed_ref(RefOp::ValueDn, atom(), atom(), "ref");
        assert_eq!(predicted_io(&l3, empty), 0.0);
        assert_eq!(predicted_node_io(&l2, 0, empty), 0.0);
        assert_eq!(predicted_node_io(&l3, 0, empty), 0.0);
        // One page still predicts at least one page — the log clamp
        // keeps small inputs from predicting *less* than their size.
        assert!(predicted_node_io(&l3, 1, empty) >= 1.0);
    }

    #[test]
    fn l3_cost_is_superlinear() {
        let q = Query::embed_ref(RefOp::ValueDn, atom(), atom(), "ref");
        let c1 = predicted_io(
            &q,
            CostInputs {
                atomic_pages: 100,
                max_values_per_attr: 1,
            },
        );
        let c2 = predicted_io(
            &q,
            CostInputs {
                atomic_pages: 200,
                max_values_per_attr: 1,
            },
        );
        assert!(c2 / c1 > 2.0, "log factor makes growth superlinear");
        assert!(applicable_theorem(&q).contains("8.4"));
        // Sensitivity to m.
        let cm = predicted_io(
            &q,
            CostInputs {
                atomic_pages: 100,
                max_values_per_attr: 8,
            },
        );
        assert!(cm > c1 * 8.0);
    }
}
