//! Abstract syntax of the query languages L0–L3.
//!
//! One [`Query`] type covers the whole hierarchy; [`crate::lang`]
//! classifies a given tree into the least language containing it
//! (Theorem 8.1's strict chain `LDAP ⊂ L0 ⊂ L1 ⊂ L2 ⊂ L3`).
//!
//! Grammar sources: Figure 7 (L0: atomic + `&`,`|`,`-`), Figure 8
//! (L1: `p`,`c`,`a`,`d`,`ac`,`dc`), Figure 9 (L2: `g` and aggregate-
//! selection operands on the hierarchy operators), Figure 10
//! (L3: `vd`,`dv`).

use netdir_filter::atomic::IntOp;
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::{AttrName, Dn};
use std::fmt;

/// The binary hierarchical-selection operators of L1 (Definition 5.1).
///
/// `(op Q1 Q2)` selects the entries of `Q1` that have at least one
/// *witness* in `Q2` standing in the named relation to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierOp {
    /// `p` — witness is a parent of the selected entry.
    Parents,
    /// `c` — witness is a child of the selected entry.
    Children,
    /// `a` — witness is a (proper) ancestor.
    Ancestors,
    /// `d` — witness is a (proper) descendant.
    Descendants,
}

impl HierOp {
    /// Operator mnemonic as written in queries.
    pub fn symbol(self) -> &'static str {
        match self {
            HierOp::Parents => "p",
            HierOp::Children => "c",
            HierOp::Ancestors => "a",
            HierOp::Descendants => "d",
        }
    }
}

/// The ternary path-constrained operators of L1 (Definition 5.1).
///
/// `(op Q1 Q2 Q3)` is like the binary form but a witness is disqualified
/// if some `Q3` entry lies strictly between it and the selected entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierPathOp {
    /// `ac` — closest unblocked ancestors.
    AncestorsConstrained,
    /// `dc` — closest unblocked descendants.
    DescendantsConstrained,
}

impl HierPathOp {
    /// Operator mnemonic as written in queries.
    pub fn symbol(self) -> &'static str {
        match self {
            HierPathOp::AncestorsConstrained => "ac",
            HierPathOp::DescendantsConstrained => "dc",
        }
    }
}

/// The embedded-reference operators of L3 (Definition 7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefOp {
    /// `vd` — select `Q1` entries whose attribute holds the DN of some
    /// `Q2` entry (the entry *points to* a witness).
    ValueDn,
    /// `dv` — select `Q1` entries whose DN appears in the attribute of
    /// some `Q2` entry (the entry *is pointed to* by a witness).
    DnValue,
}

impl RefOp {
    /// Operator mnemonic as written in queries.
    pub fn symbol(self) -> &'static str {
        match self {
            RefOp::ValueDn => "vd",
            RefOp::DnValue => "dv",
        }
    }
}

/// The aggregate functions (Figure 9's `Aggregate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// `min`
    Min,
    /// `max`
    Max,
    /// `count`
    Count,
    /// `sum`
    Sum,
    /// `average` — algebraic, computed as (sum, count).
    Average,
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Aggregate::Min => "min",
            Aggregate::Max => "max",
            Aggregate::Count => "count",
            Aggregate::Sum => "sum",
            Aggregate::Average => "average",
        })
    }
}

/// Which entry an aggregated attribute comes from (Figure 9's
/// `ModAttrName`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrRef {
    /// Bare `a` — the entry's own values (simple aggregate selection).
    Own(AttrName),
    /// `$1.a` — the `Q1` entry's own values (structural form; same values
    /// as `Own`, kept distinct for faithful round-tripping).
    Of1(AttrName),
    /// `$2.a` — the values of the entry's witnesses in `Q2`.
    Of2(AttrName),
}

impl AttrRef {
    /// The referenced attribute name.
    pub fn attr(&self) -> &AttrName {
        match self {
            AttrRef::Own(a) | AttrRef::Of1(a) | AttrRef::Of2(a) => a,
        }
    }

    /// True iff this refers to witness attributes (`$2.a`).
    pub fn is_witness(&self) -> bool {
        matches!(self, AttrRef::Of2(_))
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrRef::Own(a) => write!(f, "{a}"),
            AttrRef::Of1(a) => write!(f, "$1.{a}"),
            AttrRef::Of2(a) => write!(f, "$2.{a}"),
        }
    }
}

/// A per-entry aggregate (`EntryAggAttr` in Figure 9; Definitions 6.1/6.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EntryAgg {
    /// `agg(a)` / `agg($1.a)` / `agg($2.a)` — aggregate over the multiset
    /// of values (of the entry, or of its witness set).
    Agg(Aggregate, AttrRef),
    /// `count($2)` — the size of the entry's witness set.
    CountWitnesses,
}

impl fmt::Display for EntryAgg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryAgg::Agg(agg, r) => write!(f, "{agg}({r})"),
            EntryAgg::CountWitnesses => write!(f, "count($2)"),
        }
    }
}

/// One side of an aggregate-selection comparison (`AggAttribute`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggAttribute {
    /// An integer constant.
    Const(i64),
    /// A per-entry aggregate, evaluated on the candidate entry.
    Entry(EntryAgg),
    /// `agg1(ea)` — an entry-set aggregate: `ea` evaluated on every `Q1`
    /// entry, then aggregated across the whole set.
    EntrySet(Aggregate, Box<EntryAgg>),
    /// `count($$)` — the number of entries in the (simple) result set.
    CountAll,
    /// `count($1)` — the number of `Q1` entries (structural form; same
    /// value as `CountAll`).
    CountR1,
}

impl fmt::Display for AggAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggAttribute::Const(c) => write!(f, "{c}"),
            AggAttribute::Entry(ea) => write!(f, "{ea}"),
            AggAttribute::EntrySet(agg, ea) => write!(f, "{agg}({ea})"),
            AggAttribute::CountAll => write!(f, "count($$)"),
            AggAttribute::CountR1 => write!(f, "count($1)"),
        }
    }
}

/// An aggregate selection filter: `AggAttribute IntOp AggAttribute`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSelFilter {
    /// Left side.
    pub lhs: AggAttribute,
    /// Comparison operator.
    pub op: IntOp,
    /// Right side.
    pub rhs: AggAttribute,
}

impl AggSelFilter {
    /// The ubiquitous `count($2) > 0` — the filter under which the L2
    /// structural operators degenerate to the plain L1 operators
    /// (Section 6.2's closing remark).
    pub fn exists_witness() -> AggSelFilter {
        AggSelFilter {
            lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
            op: IntOp::Gt,
            rhs: AggAttribute::Const(0),
        }
    }

    /// True iff this filter is exactly `count($2) > 0`.
    pub fn is_exists_witness(&self) -> bool {
        *self == AggSelFilter::exists_witness()
    }
}

impl fmt::Display for AggSelFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A query in (at most) L3.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// `(base ? scope ? filter)` (Definition 4.1).
    Atomic {
        /// Entry relative to which the filter is evaluated.
        base: Dn,
        /// Search scope.
        scope: Scope,
        /// Atomic filter.
        filter: AtomicFilter,
    },
    /// `(& Q1 Q2)` — set intersection.
    And(Box<Query>, Box<Query>),
    /// `(| Q1 Q2)` — set union.
    Or(Box<Query>, Box<Query>),
    /// `(- Q1 Q2)` — set difference.
    Diff(Box<Query>, Box<Query>),
    /// `(op Q1 Q2 [AggSelFilter])` — binary hierarchical selection,
    /// optionally with a structural aggregate-selection filter (L2).
    Hier {
        /// Which relation the witness must stand in.
        op: HierOp,
        /// Candidates.
        q1: Box<Query>,
        /// Witnesses.
        q2: Box<Query>,
        /// Optional structural aggregate selection; `None` means
        /// `count($2) > 0` (plain L1 semantics).
        agg: Option<AggSelFilter>,
    },
    /// `(op Q1 Q2 Q3 [AggSelFilter])` — path-constrained hierarchical
    /// selection.
    HierPath {
        /// `ac` or `dc`.
        op: HierPathOp,
        /// Candidates.
        q1: Box<Query>,
        /// Witnesses.
        q2: Box<Query>,
        /// Blockers: disqualify witnesses with a `Q3` entry strictly
        /// between.
        q3: Box<Query>,
        /// Optional structural aggregate selection.
        agg: Option<AggSelFilter>,
    },
    /// `(g Q AggSelFilter)` — simple aggregate selection (Definition 6.1).
    AggSelect {
        /// The selected-from query.
        query: Box<Query>,
        /// The filter every retained entry must pass.
        filter: AggSelFilter,
    },
    /// `(vd Q1 Q2 attr [AggSelFilter])` / `(dv …)` — embedded-reference
    /// selection (Definition 7.1).
    EmbedRef {
        /// `vd` or `dv`.
        op: RefOp,
        /// Candidates.
        q1: Box<Query>,
        /// Witnesses.
        q2: Box<Query>,
        /// The DN-valued attribute carrying the references.
        attr: AttrName,
        /// Optional aggregate selection over the witness relationship.
        agg: Option<AggSelFilter>,
    },
}

impl Query {
    /// Convenience constructor for atomic queries.
    pub fn atomic(base: Dn, scope: Scope, filter: AtomicFilter) -> Query {
        Query::Atomic {
            base,
            scope,
            filter,
        }
    }

    /// `(& a b)`.
    pub fn and(a: Query, b: Query) -> Query {
        Query::And(Box::new(a), Box::new(b))
    }

    /// `(| a b)`.
    pub fn or(a: Query, b: Query) -> Query {
        Query::Or(Box::new(a), Box::new(b))
    }

    /// `(- a b)`.
    pub fn diff(a: Query, b: Query) -> Query {
        Query::Diff(Box::new(a), Box::new(b))
    }

    /// `(op q1 q2)` without aggregate selection.
    pub fn hier(op: HierOp, q1: Query, q2: Query) -> Query {
        Query::Hier {
            op,
            q1: Box::new(q1),
            q2: Box::new(q2),
            agg: None,
        }
    }

    /// `(op q1 q2 agg-filter)`.
    pub fn hier_agg(op: HierOp, q1: Query, q2: Query, agg: AggSelFilter) -> Query {
        Query::Hier {
            op,
            q1: Box::new(q1),
            q2: Box::new(q2),
            agg: Some(agg),
        }
    }

    /// `(op q1 q2 q3)` without aggregate selection.
    pub fn hier_path(op: HierPathOp, q1: Query, q2: Query, q3: Query) -> Query {
        Query::HierPath {
            op,
            q1: Box::new(q1),
            q2: Box::new(q2),
            q3: Box::new(q3),
            agg: None,
        }
    }

    /// `(g q filter)`.
    pub fn agg_select(q: Query, filter: AggSelFilter) -> Query {
        Query::AggSelect {
            query: Box::new(q),
            filter,
        }
    }

    /// `(vd/dv q1 q2 attr)` without aggregate selection.
    pub fn embed_ref(op: RefOp, q1: Query, q2: Query, attr: impl Into<AttrName>) -> Query {
        Query::EmbedRef {
            op,
            q1: Box::new(q1),
            q2: Box::new(q2),
            attr: attr.into(),
            agg: None,
        }
    }

    /// Number of nodes in the query tree — the `|Q|` of Theorems 8.3/8.4.
    pub fn num_nodes(&self) -> usize {
        match self {
            Query::Atomic { .. } => 1,
            Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => {
                1 + a.num_nodes() + b.num_nodes()
            }
            Query::Hier { q1, q2, .. } => 1 + q1.num_nodes() + q2.num_nodes(),
            Query::HierPath { q1, q2, q3, .. } => {
                1 + q1.num_nodes() + q2.num_nodes() + q3.num_nodes()
            }
            Query::AggSelect { query, .. } => 1 + query.num_nodes(),
            Query::EmbedRef { q1, q2, .. } => 1 + q1.num_nodes() + q2.num_nodes(),
        }
    }

    /// The atomic sub-queries, left to right.
    pub fn atomic_subqueries(&self) -> Vec<&Query> {
        let mut out = Vec::new();
        self.collect_atomics(&mut out);
        out
    }

    fn collect_atomics<'a>(&'a self, out: &mut Vec<&'a Query>) {
        match self {
            Query::Atomic { .. } => out.push(self),
            Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => {
                a.collect_atomics(out);
                b.collect_atomics(out);
            }
            Query::Hier { q1, q2, .. } => {
                q1.collect_atomics(out);
                q2.collect_atomics(out);
            }
            Query::HierPath { q1, q2, q3, .. } => {
                q1.collect_atomics(out);
                q2.collect_atomics(out);
                q3.collect_atomics(out);
            }
            Query::AggSelect { query, .. } => query.collect_atomics(out),
            Query::EmbedRef { q1, q2, .. } => {
                q1.collect_atomics(out);
                q2.collect_atomics(out);
            }
        }
    }
}

impl fmt::Display for Query {
    /// The paper's s-expression syntax; [`crate::parser::parse_query`]
    /// accepts everything this prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Atomic {
                base,
                scope,
                filter,
            } => write!(f, "({base} ? {scope} ? {filter})"),
            Query::And(a, b) => write!(f, "(& {a} {b})"),
            Query::Or(a, b) => write!(f, "(| {a} {b})"),
            Query::Diff(a, b) => write!(f, "(- {a} {b})"),
            Query::Hier { op, q1, q2, agg } => match agg {
                None => write!(f, "({} {q1} {q2})", op.symbol()),
                Some(a) => write!(f, "({} {q1} {q2} {a})", op.symbol()),
            },
            Query::HierPath {
                op,
                q1,
                q2,
                q3,
                agg,
            } => match agg {
                None => write!(f, "({} {q1} {q2} {q3})", op.symbol()),
                Some(a) => write!(f, "({} {q1} {q2} {q3} {a})", op.symbol()),
            },
            Query::AggSelect { query, filter } => write!(f, "(g {query} {filter})"),
            Query::EmbedRef {
                op,
                q1,
                q2,
                attr,
                agg,
            } => match agg {
                None => write!(f, "({} {q1} {q2} {attr})", op.symbol()),
                Some(a) => write!(f, "({} {q1} {q2} {attr} {a})", op.symbol()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(s: &str) -> Query {
        Query::atomic(
            Dn::parse("dc=att, dc=com").unwrap(),
            Scope::Sub,
            AtomicFilter::eq("surName", s),
        )
    }

    #[test]
    fn num_nodes_counts_operators_and_atoms() {
        let q = Query::diff(atom("a"), atom("b"));
        assert_eq!(q.num_nodes(), 3);
        let q = Query::hier(HierOp::Children, q.clone(), atom("c"));
        assert_eq!(q.num_nodes(), 5);
        let q = Query::hier_path(
            HierPathOp::DescendantsConstrained,
            atom("x"),
            atom("y"),
            atom("z"),
        );
        assert_eq!(q.num_nodes(), 4);
    }

    #[test]
    fn atomic_subqueries_in_order() {
        let q = Query::hier(HierOp::Parents, atom("a"), Query::and(atom("b"), atom("c")));
        let atoms = q.atomic_subqueries();
        assert_eq!(atoms.len(), 3);
    }

    #[test]
    fn display_matches_paper_shape() {
        let q = Query::diff(atom("jagadish"), atom("jagadish"));
        assert_eq!(
            q.to_string(),
            "(- (dc=att, dc=com ? sub ? surName=jagadish) \
             (dc=att, dc=com ? sub ? surName=jagadish))"
        );
        let f = AggSelFilter {
            lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
            op: IntOp::Gt,
            rhs: AggAttribute::Const(10),
        };
        let q = Query::hier_agg(HierOp::Children, atom("a"), atom("b"), f);
        assert!(q.to_string().ends_with("count($2) > 10)"));
    }

    #[test]
    fn agg_filter_display() {
        let f = AggSelFilter {
            lhs: AggAttribute::Entry(EntryAgg::Agg(
                Aggregate::Min,
                AttrRef::Own("SLARulePriority".into()),
            )),
            op: IntOp::Eq,
            rhs: AggAttribute::EntrySet(
                Aggregate::Min,
                Box::new(EntryAgg::Agg(
                    Aggregate::Min,
                    AttrRef::Own("SLARulePriority".into()),
                )),
            ),
        };
        assert_eq!(
            f.to_string(),
            "min(SLARulePriority) = min(min(SLARulePriority))"
        );
    }

    #[test]
    fn exists_witness_roundtrip() {
        let f = AggSelFilter::exists_witness();
        assert!(f.is_exists_witness());
        assert_eq!(f.to_string(), "count($2) > 0");
    }
}
