//! Error type for query parsing and evaluation.

use netdir_pager::PagerError;
use std::fmt;

/// Result alias for query operations.
pub type QueryResult<T> = Result<T, QueryError>;

/// Everything that can go wrong parsing or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Query-string syntax error.
    Parse { input: String, detail: String },
    /// The external-memory layer failed (pool exhausted, corrupt page…).
    Pager(PagerError),
    /// An aggregate selection filter is not well formed for its context
    /// (e.g. `$2.a` inside a simple `g` selection, which has no
    /// witnesses).
    BadAggFilter { detail: String },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { input, detail } => {
                write!(f, "cannot parse query {input:?}: {detail}")
            }
            QueryError::Pager(e) => write!(f, "I/O layer error: {e}"),
            QueryError::BadAggFilter { detail } => {
                write!(f, "bad aggregate selection filter: {detail}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Pager(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PagerError> for QueryError {
    fn from(e: PagerError) -> Self {
        QueryError::Pager(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pager_errors_convert_and_chain() {
        let e: QueryError = PagerError::PoolExhausted { frames: 4 }.into();
        assert!(e.to_string().contains("I/O layer"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
