//! The embedded-reference operators `vd` / `dv` (Section 7, Figure 3).
//!
//! Both are sort-merge semijoins on DN-valued attributes:
//!
//! * **`dv` (DNvalue)** — keep `Q1` entries *pointed to* by some `Q2`
//!   entry. Algorithm `ComputeERAggDV`: scan `L2` emitting a pair
//!   `(referenced DN, witness contribution)` per embedded reference, sort
//!   the pair list by the reverse-key of the referenced DN, then a single
//!   merge against `L1` accumulates each entry's witness state.
//! * **`vd` (valueDN)** — keep `Q1` entries that *point to* some `Q2`
//!   entry. Symmetric, with one extra round: pairs `(referenced DN,
//!   referencing DN)` from `L1` are sorted by target and merged against
//!   `L2` (collecting witness attributes from the referenced entries),
//!   then the survivors are re-sorted by source and merged back against
//!   `L1`.
//!
//! The external sorts are where Theorem 7.1's
//! `O(|L1|/B + (|L2|·m/B)·log(|L2|·m/B))` log-factor comes from (`m` =
//! max values per attribute).
//!
//! Only DN-typed values participate: in the typed model of Section 3,
//! references are values of the `distinguishedName` type.

use crate::agg::{Annotated, CompiledAggFilter, GlobalState, WitnessState};
use crate::ast::RefOp;
use netdir_model::{AttrName, Entry, Value};
use netdir_pager::record::{codec, Record};
use netdir_pager::{external_sort_by, ExtSortConfig, ListWriter, PagedList, Pager, PagerResult};

/// A pair in the `LP` list of Figure 3: a referenced-DN key plus the
/// witness contribution of the referencing side.
#[derive(Debug, Clone, PartialEq)]
struct KeyedWitness {
    key: Vec<u8>,
    wit: WitnessState,
}

impl Record for KeyedWitness {
    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_bytes(out, &self.key);
        let mut w = Vec::new();
        self.wit.encode(&mut w);
        codec::put_bytes(out, &w);
    }
    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        let mut r = codec::Reader::new(bytes);
        let key = r.get_bytes()?.to_vec();
        let wit = WitnessState::decode(r.get_bytes()?)?;
        r.finish()?;
        Ok(KeyedWitness { key, wit })
    }
}

/// A `(target key, source key)` pair for the first `vd` round.
#[derive(Debug, Clone, PartialEq)]
struct RefPair {
    target: Vec<u8>,
    source: Vec<u8>,
}

impl Record for RefPair {
    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_bytes(out, &self.target);
        codec::put_bytes(out, &self.source);
    }
    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        let mut r = codec::Reader::new(bytes);
        let target = r.get_bytes()?.to_vec();
        let source = r.get_bytes()?.to_vec();
        r.finish()?;
        Ok(RefPair { target, source })
    }
}

/// Evaluate `(vd/dv L1 L2 attr filter)`, producing the selected entries in
/// reverse-DN sorted order.
pub fn er_select(
    pager: &Pager,
    op: RefOp,
    l1: &PagedList<Entry>,
    l2: &PagedList<Entry>,
    attr: &AttrName,
    filter: &CompiledAggFilter,
) -> PagerResult<PagedList<Entry>> {
    match op {
        RefOp::DnValue => dv_select(pager, l1, l2, attr, filter),
        RefOp::ValueDn => vd_select(pager, l1, l2, attr, filter),
    }
}

fn sort_cfg() -> ExtSortConfig {
    ExtSortConfig::default()
}

/// `dv`: Q1 entries referenced by some Q2 entry's `attr`.
fn dv_select(
    pager: &Pager,
    l1: &PagedList<Entry>,
    l2: &PagedList<Entry>,
    attr: &AttrName,
    filter: &CompiledAggFilter,
) -> PagerResult<PagedList<Entry>> {
    // Phase 1 (Figure 3): emit one pair per embedded reference in L2.
    let mut pairs: ListWriter<KeyedWitness> = ListWriter::new(pager);
    for r2 in l2.iter() {
        let r2 = r2?;
        for v in r2.values(attr) {
            if let Value::Dn(target) = v {
                let mut wit = WitnessState::empty(filter);
                wit.add_witness(filter, &r2);
                pairs.push(&KeyedWitness {
                    key: target.sort_key().as_bytes().to_vec(),
                    wit,
                })?;
            }
        }
    }
    let pairs = pairs.finish()?;
    // Sort LP by the reverse-key of the referenced DN.
    let sorted = external_sort_by(pager, &pairs, sort_cfg(), |a, b| a.key.cmp(&b.key))?;
    // Phase 2: merge with L1.
    merge_and_select(pager, l1, &sorted, filter)
}

/// `vd`: Q1 entries holding a reference to some Q2 entry.
fn vd_select(
    pager: &Pager,
    l1: &PagedList<Entry>,
    l2: &PagedList<Entry>,
    attr: &AttrName,
    filter: &CompiledAggFilter,
) -> PagerResult<PagedList<Entry>> {
    // Round 1: pairs (target, source) from L1's references, sorted by
    // target.
    let mut pairs: ListWriter<RefPair> = ListWriter::new(pager);
    for r1 in l1.iter() {
        let r1 = r1?;
        for v in r1.values(attr) {
            if let Value::Dn(target) = v {
                pairs.push(&RefPair {
                    target: target.sort_key().as_bytes().to_vec(),
                    source: r1.dn().sort_key().as_bytes().to_vec(),
                })?;
            }
        }
    }
    let pairs = pairs.finish()?;
    let by_target = external_sort_by(pager, &pairs, sort_cfg(), |a, b| {
        a.target.cmp(&b.target).then_with(|| a.source.cmp(&b.source))
    })?;

    // Merge with L2: survivors carry the referenced entry's contribution.
    let mut survivors: ListWriter<KeyedWitness> = ListWriter::new(pager);
    {
        let mut it2 = l2.iter();
        let mut r2 = it2.next().transpose()?;
        for pair in by_target.iter() {
            let pair = pair?;
            while let Some(e) = &r2 {
                if e.dn().sort_key().as_bytes() < pair.target.as_slice() {
                    r2 = it2.next().transpose()?;
                } else {
                    break;
                }
            }
            if let Some(e) = &r2 {
                if e.dn().sort_key().as_bytes() == pair.target.as_slice() {
                    let mut wit = WitnessState::empty(filter);
                    wit.add_witness(filter, e);
                    survivors.push(&KeyedWitness {
                        key: pair.source,
                        wit,
                    })?;
                }
            }
        }
    }
    let survivors = survivors.finish()?;
    // Round 2: back to source order, merge with L1.
    let by_source =
        external_sort_by(pager, &survivors, sort_cfg(), |a, b| a.key.cmp(&b.key))?;
    merge_and_select(pager, l1, &by_source, filter)
}

/// Merge a key-sorted witness-pair list against `L1`, accumulate witness
/// states and set-level aggregates, select. Output stays sorted.
fn merge_and_select(
    pager: &Pager,
    l1: &PagedList<Entry>,
    pairs: &PagedList<KeyedWitness>,
    filter: &CompiledAggFilter,
) -> PagerResult<PagedList<Entry>> {
    let mut globals = GlobalState::default();
    let needs_globals = filter.needs_globals();
    let mut direct_out: ListWriter<Entry> = ListWriter::new(pager);
    let mut staged: ListWriter<Annotated> = ListWriter::new(pager);

    let mut pair_it = pairs.iter();
    let mut pair = pair_it.next().transpose()?;
    for r1 in l1.iter() {
        let r1 = r1?;
        let key = r1.dn().sort_key().as_bytes();
        let mut wit = WitnessState::empty(filter);
        // Skip pairs referencing absent targets (they sort between).
        while let Some(p) = &pair {
            if p.key.as_slice() < key {
                pair = pair_it.next().transpose()?;
            } else {
                break;
            }
        }
        while let Some(p) = &pair {
            if p.key.as_slice() == key {
                wit.merge(&p.wit);
                pair = pair_it.next().transpose()?;
            } else {
                break;
            }
        }
        filter.accumulate_global(&mut globals, &r1, &wit);
        if needs_globals {
            staged.push(&Annotated {
                entry: r1.clone(),
                wit,
            })?;
        } else if filter.accept(&r1, &wit, &globals) {
            direct_out.push(&r1)?;
        }
    }
    if !needs_globals {
        return direct_out.finish();
    }
    let staged = staged.finish()?;
    let mut out = ListWriter::new(pager);
    for ann in staged.iter() {
        let ann = ann?;
        if filter.accept(&ann.entry, &ann.wit, &globals) {
            out.push(&ann.entry)?;
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggAttribute, AggSelFilter, Aggregate, AttrRef, EntryAgg};
    use netdir_filter::atomic::IntOp;
    use netdir_model::Dn;
    use netdir_pager::tiny_pager;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    /// Policies referencing profiles, Figure 12 style.
    fn setup(pager: &Pager) -> (PagedList<Entry>, PagedList<Entry>) {
        let profiles: Vec<Entry> = ["lsplitOff", "csplitOff", "smtp"]
            .iter()
            .map(|n| {
                Entry::builder(dn(&format!("TPName={n}, ou=tp, dc=com")))
                    .class("trafficProfile")
                    .attr("sourcePort", 25i64)
                    .build()
                    .unwrap()
            })
            .collect();
        let mk_policy = |name: &str, prio: i64, refs: &[&str]| {
            Entry::builder(dn(&format!("SLAPolicyName={name}, ou=rules, dc=com")))
                .class("SLAPolicyRules")
                .attr("SLARulePriority", prio)
                .attr_values(
                    "SLATPRef",
                    refs.iter().map(|r| dn(&format!("TPName={r}, ou=tp, dc=com"))),
                )
                .build()
                .unwrap()
        };
        let policies = vec![
            mk_policy("dso", 2, &["lsplitOff", "csplitOff"]),
            mk_policy("mail", 1, &["smtp"]),
            mk_policy("none", 9, &[]),
            mk_policy("dangling", 5, &["ghost"]),
        ];
        let mut ps = policies;
        ps.sort_by(|a, b| a.dn().cmp(b.dn()));
        let mut pr = profiles;
        pr.sort_by(|a, b| a.dn().cmp(b.dn()));
        (
            PagedList::from_iter(pager, ps).unwrap(),
            PagedList::from_iter(pager, pr).unwrap(),
        )
    }

    fn names(l: &PagedList<Entry>, attr: &str) -> Vec<String> {
        let mut v: Vec<String> = l
            .to_vec()
            .unwrap()
            .iter()
            .map(|e| e.first_str(&attr.into()).unwrap().to_string())
            .collect();
        v.sort();
        v
    }

    fn exists() -> CompiledAggFilter {
        CompiledAggFilter::exists_witness()
    }

    #[test]
    fn vd_selects_referencing_entries() {
        let pager = tiny_pager();
        let (policies, profiles) = setup(&pager);
        let out = er_select(
            &pager,
            RefOp::ValueDn,
            &policies,
            &profiles,
            &"SLATPRef".into(),
            &exists(),
        )
        .unwrap();
        // dso and mail reference live profiles; none has no refs;
        // dangling's target is absent.
        assert_eq!(names(&out, "SLAPolicyName"), vec!["dso", "mail"]);
    }

    #[test]
    fn dv_selects_referenced_entries() {
        let pager = tiny_pager();
        let (policies, profiles) = setup(&pager);
        let out = er_select(
            &pager,
            RefOp::DnValue,
            &profiles,
            &policies,
            &"SLATPRef".into(),
            &exists(),
        )
        .unwrap();
        assert_eq!(
            names(&out, "TPName"),
            vec!["csplitOff", "lsplitOff", "smtp"]
        );
    }

    #[test]
    fn vd_with_count_filter() {
        let pager = tiny_pager();
        let (policies, profiles) = setup(&pager);
        // Policies referencing more than one live profile: only dso.
        let f = CompiledAggFilter::compile(
            &AggSelFilter {
                lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
                op: IntOp::Gt,
                rhs: AggAttribute::Const(1),
            },
            true,
        )
        .unwrap();
        let out = er_select(
            &pager,
            RefOp::ValueDn,
            &policies,
            &profiles,
            &"SLATPRef".into(),
            &f,
        )
        .unwrap();
        assert_eq!(names(&out, "SLAPolicyName"), vec!["dso"]);
    }

    #[test]
    fn example_7_1_highest_priority_rule() {
        // The Section 7 composite: the policy with the smallest
        // SLARulePriority among those referencing live profiles —
        // min(SLARulePriority) = min(min(SLARulePriority)) after vd.
        let pager = tiny_pager();
        let (policies, profiles) = setup(&pager);
        let referencing = er_select(
            &pager,
            RefOp::ValueDn,
            &policies,
            &profiles,
            &"SLATPRef".into(),
            &exists(),
        )
        .unwrap();
        let ea = EntryAgg::Agg(Aggregate::Min, AttrRef::Own("SLARulePriority".into()));
        let g = CompiledAggFilter::compile(
            &AggSelFilter {
                lhs: AggAttribute::Entry(ea.clone()),
                op: IntOp::Eq,
                rhs: AggAttribute::EntrySet(Aggregate::Min, Box::new(ea)),
            },
            false,
        )
        .unwrap();
        let best = crate::agg_simple::simple_agg_select(&pager, &referencing, &g).unwrap();
        assert_eq!(names(&best, "SLAPolicyName"), vec!["mail"]);
    }

    #[test]
    fn dv_max_count_filter_of_figure_3() {
        // Figure 3's instantiation: count($2) = max(count($2)) — the
        // profiles referenced by the most policies.
        let pager = tiny_pager();
        let (policies, profiles) = setup(&pager);
        let f = CompiledAggFilter::compile(
            &AggSelFilter {
                lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
                op: IntOp::Eq,
                rhs: AggAttribute::EntrySet(
                    Aggregate::Max,
                    Box::new(EntryAgg::CountWitnesses),
                ),
            },
            true,
        )
        .unwrap();
        let out = er_select(
            &pager,
            RefOp::DnValue,
            &profiles,
            &policies,
            &"SLATPRef".into(),
            &f,
        )
        .unwrap();
        // Every live profile is referenced exactly once → all tie at max.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn witness_attribute_aggregates() {
        // dv with min($2.SLARulePriority) < 2: profiles referenced by a
        // priority-1 policy — only smtp (referenced by mail).
        let pager = tiny_pager();
        let (policies, profiles) = setup(&pager);
        let f = CompiledAggFilter::compile(
            &AggSelFilter {
                lhs: AggAttribute::Entry(EntryAgg::Agg(
                    Aggregate::Min,
                    AttrRef::Of2("SLARulePriority".into()),
                )),
                op: IntOp::Lt,
                rhs: AggAttribute::Const(2),
            },
            true,
        )
        .unwrap();
        let out = er_select(
            &pager,
            RefOp::DnValue,
            &profiles,
            &policies,
            &"SLATPRef".into(),
            &f,
        )
        .unwrap();
        assert_eq!(names(&out, "TPName"), vec!["smtp"]);
    }

    #[test]
    fn empty_inputs() {
        let pager = tiny_pager();
        let (policies, profiles) = setup(&pager);
        let empty = PagedList::empty(&pager);
        for op in [RefOp::ValueDn, RefOp::DnValue] {
            assert!(er_select(&pager, op, &empty, &profiles, &"SLATPRef".into(), &exists())
                .unwrap()
                .is_empty());
            assert!(er_select(&pager, op, &policies, &empty, &"SLATPRef".into(), &exists())
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn output_sorted() {
        let pager = tiny_pager();
        let (policies, profiles) = setup(&pager);
        let out = er_select(
            &pager,
            RefOp::ValueDn,
            &policies,
            &profiles,
            &"SLATPRef".into(),
            &exists(),
        )
        .unwrap();
        let v = out.to_vec().unwrap();
        for w in v.windows(2) {
            assert!(w[0].dn() < w[1].dn());
        }
    }
}
