//! # netdir-query — the query languages of *Querying Network Directories*
//!
//! The paper's primary contribution, implemented in full:
//!
//! | Module | Paper anchor |
//! |---|---|
//! | [`ast`] | the grammars of Figures 7–10 (L0–L3) |
//! | [`parser`] | the s-expression syntax used throughout the examples |
//! | [`lang`] | Theorem 8.1's hierarchy `LDAP ⊂ L0 ⊂ L1 ⊂ L2 ⊂ L3` |
//! | [`boolean`] | §4.2 sorted-list merges (Jacobson et al. style) |
//! | [`hs_stack`] | Figures 2/4/5 stack algorithms + Figure 6 aggregates |
//! | [`agg`] | §6's aggregate machinery (distributive/algebraic) |
//! | [`agg_simple`] | §6.3's two-scan `g` evaluation (Theorem 6.1) |
//! | [`er_join`] | Figure 3's `ComputeERAggDV`/`VD` (Theorem 7.1) |
//! | [`eval`] | §8.2's bottom-up pipelined evaluator (Theorems 8.3/8.4) |
//! | [`cost`] | the I/O cost formulas of Theorems 8.3/8.4 |
//! | [`rewrite`] | Theorem 8.2(d)'s `ac`/`dc` rewrites and their cost |
//! | [`planner`] | cost-based plan choice over §8's formulas, fed by observed I/O |
//! | [`naive`] | quadratic reference oracles/baselines (§5.3's strawman) |
//!
//! Quick start:
//!
//! ```
//! use netdir_model::{Directory, Dn, Entry};
//! use netdir_index::IndexedDirectory;
//! use netdir_query::eval::run_query;
//!
//! let mut dir = Directory::new();
//! for s in ["dc=com", "dc=att, dc=com"] {
//!     dir.insert(Entry::builder(Dn::parse(s).unwrap())
//!         .class("dcObject").build().unwrap()).unwrap();
//! }
//! let pager = netdir_pager::default_pager();
//! let idx = IndexedDirectory::build(&pager, &dir).unwrap();
//! let hits = run_query(&idx, &pager,
//!     "(c (dc=com ? base ? objectClass=*) (dc=com ? sub ? dc=att))").unwrap();
//! assert_eq!(hits.len(), 1); // dc=com has the child dc=att
//! ```

pub mod agg;
pub mod agg_simple;
pub mod ast;
pub mod boolean;
pub mod cost;
pub mod er_join;
pub mod error;
pub mod eval;
pub mod explain;
pub mod hs_stack;
pub mod lang;
pub mod naive;
pub mod parser;
pub mod planner;
pub mod rewrite;

pub use ast::{
    AggAttribute, AggSelFilter, Aggregate, AttrRef, EntryAgg, HierOp, HierPathOp, Query, RefOp,
};
pub use error::{QueryError, QueryResult};
pub use eval::{run_query, AtomicSource, Evaluator, NodeTrace, ParReport};
pub use cost::{predicted_io, predicted_node_io, CostInputs};
pub use explain::{analyze, build_trace, explain, explain_traced};
pub use lang::{classify, Language};
pub use parser::{parse_agg_filter, parse_query};
pub use planner::{
    query_shape, ObservingSource, PlanCache, PlannedQuery, Planner, PlannerSnapshot, StatsCatalog,
    Step,
};
