//! Naive reference implementations.
//!
//! Every operator, implemented directly from its defining formula
//! (Definitions 4.1, 5.1, 6.1, 6.2, 7.1) with nested loops over in-memory
//! vectors. Two jobs:
//!
//! 1. **Oracle** — randomized tests check the external-memory algorithms
//!    against these, element for element.
//! 2. **Baseline** — "the straightforward way … is quadratic in the sum of
//!    the sizes of the two operands" (Section 5.3); the benchmark harness
//!    measures exactly that quadratic-vs-linear separation (experiment E4).

use crate::agg::{CompiledAggFilter, GlobalState, WitnessState};
use crate::ast::RefOp;
use crate::hs_stack::HsOp;
use netdir_model::{AttrName, Entry, Value};

fn sort_entries(mut v: Vec<Entry>) -> Vec<Entry> {
    v.sort_by(|a, b| a.dn().cmp(b.dn()));
    v
}

/// Does `witness` stand in relation `op` to `candidate`, unblocked by `l3`?
fn is_witness(op: HsOp, candidate: &Entry, witness: &Entry, l3: &[Entry]) -> bool {
    let c = candidate.dn();
    let w = witness.dn();
    match op {
        HsOp::Parents => w.is_parent_of(c),
        HsOp::Children => c.is_parent_of(w),
        HsOp::Ancestors => w.is_ancestor_of(c),
        HsOp::Descendants => c.is_ancestor_of(w),
        HsOp::AncestorsConstrained => {
            w.is_ancestor_of(c)
                && !l3.iter().any(|r3| {
                    r3.dn() != c && r3.dn() != w
                        && r3.dn().is_ancestor_of(c)
                        && w.is_ancestor_of(r3.dn())
                })
        }
        HsOp::DescendantsConstrained => {
            c.is_ancestor_of(w)
                && !l3.iter().any(|r3| {
                    r3.dn() != c && r3.dn() != w
                        && c.is_ancestor_of(r3.dn())
                        && r3.dn().is_ancestor_of(w)
                })
        }
    }
}

/// Naive hierarchical selection with aggregate filter — the quadratic
/// baseline and oracle for [`crate::hs_stack::hs_select`].
pub fn naive_hs_select(
    op: HsOp,
    l1: &[Entry],
    l2: &[Entry],
    l3: &[Entry],
    filter: &CompiledAggFilter,
) -> Vec<Entry> {
    let mut globals = GlobalState::default();
    let mut annotated: Vec<(Entry, WitnessState)> = Vec::with_capacity(l1.len());
    for r1 in l1 {
        let mut wit = WitnessState::empty(filter);
        for r2 in l2 {
            if is_witness(op, r1, r2, l3) {
                wit.add_witness(filter, r2);
            }
        }
        filter.accumulate_global(&mut globals, r1, &wit);
        annotated.push((r1.clone(), wit));
    }
    sort_entries(
        annotated
            .into_iter()
            .filter(|(e, w)| filter.accept(e, w, &globals))
            .map(|(e, _)| e)
            .collect(),
    )
}

/// Naive simple aggregate selection — oracle for
/// [`crate::agg_simple::simple_agg_select`].
pub fn naive_simple_agg(l1: &[Entry], filter: &CompiledAggFilter) -> Vec<Entry> {
    let no_wit = WitnessState::default();
    let mut globals = GlobalState::default();
    for e in l1 {
        filter.accumulate_global(&mut globals, e, &no_wit);
    }
    sort_entries(
        l1.iter()
            .filter(|e| filter.accept(e, &no_wit, &globals))
            .cloned()
            .collect(),
    )
}

/// Naive embedded-reference selection — the quadratic baseline and oracle
/// for [`crate::er_join::er_select`].
pub fn naive_er_select(
    op: RefOp,
    l1: &[Entry],
    l2: &[Entry],
    attr: &AttrName,
    filter: &CompiledAggFilter,
) -> Vec<Entry> {
    let references = |from: &Entry, to: &Entry| {
        from.values(attr)
            .any(|v| matches!(v, Value::Dn(d) if d == to.dn()))
    };
    let mut globals = GlobalState::default();
    let mut annotated: Vec<(Entry, WitnessState)> = Vec::with_capacity(l1.len());
    for r1 in l1 {
        let mut wit = WitnessState::empty(filter);
        for r2 in l2 {
            let hit = match op {
                RefOp::ValueDn => references(r1, r2),
                RefOp::DnValue => references(r2, r1),
            };
            if hit {
                wit.add_witness(filter, r2);
            }
        }
        filter.accumulate_global(&mut globals, r1, &wit);
        annotated.push((r1.clone(), wit));
    }
    sort_entries(
        annotated
            .into_iter()
            .filter(|(e, w)| filter.accept(e, w, &globals))
            .map(|(e, _)| e)
            .collect(),
    )
}

/// Naive boolean operators (by DN identity).
pub fn naive_boolean(op: crate::boolean::BoolOp, l1: &[Entry], l2: &[Entry]) -> Vec<Entry> {
    use crate::boolean::BoolOp;
    let in2 = |e: &Entry| l2.iter().any(|x| x.dn() == e.dn());
    let out: Vec<Entry> = match op {
        BoolOp::And => l1.iter().filter(|e| in2(e)).cloned().collect(),
        BoolOp::Diff => l1.iter().filter(|e| !in2(e)).cloned().collect(),
        BoolOp::Or => {
            let mut v: Vec<Entry> = l1.to_vec();
            for e in l2 {
                if !l1.iter().any(|x| x.dn() == e.dn()) {
                    v.push(e.clone());
                }
            }
            v
        }
    };
    sort_entries(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_model::Dn;

    fn entry(s: &str) -> Entry {
        Entry::builder(Dn::parse(s).unwrap())
            .class("t")
            .build()
            .unwrap()
    }

    #[test]
    fn naive_matches_definitions_on_small_case() {
        let all: Vec<Entry> = ["dc=com", "dc=att, dc=com", "ou=p, dc=att, dc=com"]
            .iter()
            .map(|s| entry(s))
            .collect();
        let f = CompiledAggFilter::exists_witness();
        let anc = naive_hs_select(
            HsOp::Ancestors,
            &all,
            &[entry("dc=att, dc=com")],
            &[],
            &f,
        );
        assert_eq!(anc.len(), 1);
        assert_eq!(anc[0].dn().to_string(), "ou=p, dc=att, dc=com");
    }

    #[test]
    fn naive_boolean_agrees_with_set_semantics() {
        use crate::boolean::BoolOp;
        let a = vec![entry("dc=a"), entry("dc=b")];
        let b = vec![entry("dc=b"), entry("dc=c")];
        assert_eq!(naive_boolean(BoolOp::And, &a, &b).len(), 1);
        assert_eq!(naive_boolean(BoolOp::Or, &a, &b).len(), 3);
        assert_eq!(naive_boolean(BoolOp::Diff, &a, &b).len(), 1);
    }
}
