//! Language classification — the expressiveness hierarchy of Theorem 8.1.
//!
//! `LDAP ⊂ L0 ⊂ L1 ⊂ L2 ⊂ L3`, strictly. [`classify`] returns the least
//! language of this chain containing a given query tree; [`witnesses`]
//! exhibits, for each inclusion, a query in the larger language whose
//! separation argument the paper sketches — these are executed in the
//! expressiveness experiment (E10) and the integration tests.

use crate::ast::Query;
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::Dn;
use std::fmt;

/// The language chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Language {
    /// One base + one scope + one (boolean-composed) filter.
    Ldap,
    /// Atomic queries composed with set-level `&`, `|`, `-`.
    L0,
    /// + hierarchical selection `p c a d ac dc`.
    L1,
    /// + aggregate selection (simple `g` and structural).
    L2,
    /// + embedded references `vd dv`.
    L3,
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Language::Ldap => "LDAP",
            Language::L0 => "L0",
            Language::L1 => "L1",
            Language::L2 => "L2",
            Language::L3 => "L3",
        })
    }
}

/// The least language in the chain containing `q`.
///
/// A single atomic query is LDAP-expressible (one base, one scope, one
/// atomic filter). Any boolean *combination* is L0: the paper's LDAP can
/// combine filters but not queries, so differing bases/scopes — or the set
/// difference operator, which LDAP filters lack at query level — need L0.
/// (A boolean combination whose operands all share base and scope *could*
/// collapse into one LDAP filter for `&`/`|`, but `-` over filters is
/// `(&(f1)(!(f2)))` only when the operands' scopes coincide; we classify
/// conservatively by syntax, as the paper's grammars do.)
pub fn classify(q: &Query) -> Language {
    match q {
        Query::Atomic { .. } => Language::Ldap,
        Query::And(a, b) | Query::Or(a, b) | Query::Diff(a, b) => {
            Language::L0.max(classify(a)).max(classify(b))
        }
        Query::Hier { q1, q2, agg, .. } => {
            let base = if agg.is_some() {
                Language::L2
            } else {
                Language::L1
            };
            base.max(classify(q1)).max(classify(q2))
        }
        Query::HierPath {
            q1, q2, q3, agg, ..
        } => {
            let base = if agg.is_some() {
                Language::L2
            } else {
                Language::L1
            };
            base.max(classify(q1))
                .max(classify(q2))
                .max(classify(q3))
        }
        Query::AggSelect { query, .. } => Language::L2.max(classify(query)),
        Query::EmbedRef { q1, q2, .. } => {
            Language::L3.max(classify(q1)).max(classify(q2))
        }
    }
}

/// For each strict inclusion `Li ⊂ Li+1`, a concrete query in `Li+1`
/// exercising the construct `Li` lacks. Returned as (language, query,
/// explanation) triples; the experiment harness runs each one.
pub fn witnesses() -> Vec<(Language, Query, &'static str)> {
    use crate::ast::{AggAttribute, AggSelFilter, EntryAgg, HierOp, RefOp};
    use netdir_filter::atomic::IntOp;

    let att = Dn::parse("dc=att, dc=com").unwrap();
    let research = Dn::parse("dc=research, dc=att, dc=com").unwrap();
    let jag = |base: &Dn| {
        Query::atomic(
            base.clone(),
            Scope::Sub,
            AtomicFilter::eq("surName", "jagadish"),
        )
    };

    vec![
        (
            Language::L0,
            // Example 4.1: different base entries under a set difference —
            // inexpressible with a single LDAP base/scope.
            Query::diff(jag(&att), jag(&research)),
            "Example 4.1: one L0 query; LDAP needs two round-trips plus \
             client-side difference",
        ),
        (
            Language::L1,
            // Example 5.1: organizational units directly containing a
            // jagadish entry — filters see one entry at a time, so no L0
            // query can relate two entries hierarchically.
            Query::hier(
                HierOp::Children,
                Query::atomic(
                    att.clone(),
                    Scope::Sub,
                    AtomicFilter::eq("objectClass", "organizationalUnit"),
                ),
                jag(&att),
            ),
            "Example 5.1: selection conditioned on a *different* entry's \
             existence in a hierarchy relation",
        ),
        (
            Language::L2,
            // Example 6.2: subscribers with more than 10 QHP children —
            // counting witnesses is beyond L1's existential tests.
            Query::hier_agg(
                HierOp::Children,
                Query::atomic(
                    att.clone(),
                    Scope::Sub,
                    AtomicFilter::eq("objectClass", "TOPSSubscriber"),
                ),
                Query::atomic(att.clone(), Scope::Sub, AtomicFilter::eq("objectClass", "QHP")),
                AggSelFilter {
                    lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
                    op: IntOp::Gt,
                    rhs: AggAttribute::Const(10),
                },
            ),
            "Example 6.2: aggregate (count) over witness sets",
        ),
        (
            Language::L3,
            // Example 7.1: joining on DN-valued attributes.
            Query::embed_ref(
                RefOp::ValueDn,
                Query::atomic(
                    att.clone(),
                    Scope::Sub,
                    AtomicFilter::eq("objectClass", "SLAPolicyRules"),
                ),
                Query::atomic(
                    att,
                    Scope::Sub,
                    AtomicFilter::eq("objectClass", "trafficProfile"),
                ),
                "SLATPRef",
            ),
            "Example 7.1: navigation along embedded DN references",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_ordered() {
        assert!(Language::Ldap < Language::L0);
        assert!(Language::L0 < Language::L1);
        assert!(Language::L1 < Language::L2);
        assert!(Language::L2 < Language::L3);
    }

    #[test]
    fn witnesses_classify_exactly() {
        for (lang, q, why) in witnesses() {
            assert_eq!(classify(&q), lang, "witness for {lang}: {why}");
        }
    }

    #[test]
    fn atomic_is_ldap() {
        let q = Query::atomic(
            Dn::parse("dc=com").unwrap(),
            Scope::Base,
            AtomicFilter::True,
        );
        assert_eq!(classify(&q), Language::Ldap);
    }

    #[test]
    fn nesting_escalates() {
        let a = Query::atomic(
            Dn::parse("dc=com").unwrap(),
            Scope::Sub,
            AtomicFilter::present("x"),
        );
        let l1 = Query::hier(crate::ast::HierOp::Parents, a.clone(), a.clone());
        // Boolean over an L1 query stays L1.
        assert_eq!(classify(&Query::and(l1.clone(), a.clone())), Language::L1);
        // g over L1 is L2.
        assert_eq!(
            classify(&Query::agg_select(
                l1,
                crate::ast::AggSelFilter::exists_witness()
            )),
            Language::L2
        );
    }
}
