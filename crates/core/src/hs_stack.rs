//! The stack-based hierarchical-selection algorithms.
//!
//! One engine implements all of:
//!
//! * `ComputeHSPC` (Figure 2) — `p` / `c`;
//! * `ComputeHSAD` (Figure 4) — `a` / `d`;
//! * `ComputeHSADc` (Figure 5) — `ac` / `dc`;
//! * their aggregate-selection generalizations `ComputeHSAgg*` (Figure 6,
//!   Section 6.4) — any distributive/algebraic aggregate over witness
//!   sets, via [`WitnessState`] carried where the figures carry integer
//!   counts. The plain L1 operators are exactly the aggregate filter
//!   `count($2) > 0` (Section 6.2).
//!
//! ## How it works
//!
//! The sorted inputs are merged (equal DNs coalesce, carrying a label set
//! `{i | entry ∈ Li}`, as in the figures). The stack always holds exactly
//! the merge-ancestors of the current element, so (paper's observations)
//! adjacent stack frames are immediate ancestor/descendant pairs among
//! merge entries, and every ancestor of a pushed element is on the stack.
//!
//! *Below-direction* operators (`p`, `a`, `ac` — witnesses are ancestors)
//! finalize an element's witness state **at push time** (all its ancestors
//! are on the stack), so annotated output streams in sorted order
//! directly.
//!
//! *Above-direction* operators (`c`, `d`, `dc` — witnesses are
//! descendants) finalize **at pop time**, after the subtree — but sorted
//! order demands the entry precede its subtree. Each frame therefore
//! buffers its subtree's decided records in a [`ChainArena`] chain; on pop
//! the frame's own record is prepended and the chain spliced onto the
//! parent's (O(1), no copying). The figures' Phase-1/Phase-2 split
//! ("associate values with entry rt in list L1", then scan L1) is realized
//! by this chain, which *is* the annotated L1 in sorted order.
//!
//! I/O: every input page read once, every annotated/output page written
//! and read O(1) times, chain blocks kept ≥ half full by the arena —
//! the `O((|L1|+|L2|[+|L3|])/B)` of Theorems 5.1 and 6.2. Memory: the
//! frame stack is O(directory depth); the unbounded buffers live on pages.

use crate::agg::{Annotated, CompiledAggFilter, GlobalState, WitnessState};
use crate::ast::{HierOp, HierPathOp};
use netdir_model::Entry;
use netdir_pager::chain::{Chain, ChainArena};
use netdir_pager::record::PageCtx;
use netdir_pager::{ListWriter, PagedList, Pager, PagerResult, RawRecord};

/// The six operators, unified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsOp {
    /// `p`
    Parents,
    /// `c`
    Children,
    /// `a`
    Ancestors,
    /// `d`
    Descendants,
    /// `ac`
    AncestorsConstrained,
    /// `dc`
    DescendantsConstrained,
}

impl HsOp {
    /// Witnesses are ancestors (decided at push).
    pub fn is_below(self) -> bool {
        matches!(
            self,
            HsOp::Parents | HsOp::Ancestors | HsOp::AncestorsConstrained
        )
    }

    /// Witness relation is exactly one level (`p`/`c`).
    pub fn is_single_step(self) -> bool {
        matches!(self, HsOp::Parents | HsOp::Children)
    }

    /// Takes a third (blocker) operand.
    pub fn is_constrained(self) -> bool {
        matches!(
            self,
            HsOp::AncestorsConstrained | HsOp::DescendantsConstrained
        )
    }
}

impl From<HierOp> for HsOp {
    fn from(op: HierOp) -> HsOp {
        match op {
            HierOp::Parents => HsOp::Parents,
            HierOp::Children => HsOp::Children,
            HierOp::Ancestors => HsOp::Ancestors,
            HierOp::Descendants => HsOp::Descendants,
        }
    }
}

impl From<HierPathOp> for HsOp {
    fn from(op: HierPathOp) -> HsOp {
        match op {
            HierPathOp::AncestorsConstrained => HsOp::AncestorsConstrained,
            HierPathOp::DescendantsConstrained => HsOp::DescendantsConstrained,
        }
    }
}

const L1: u8 = 1;
const L2: u8 = 2;
const L3: u8 = 4;

/// An entry that may still be raw page bytes. The engine routes, stacks
/// and counts elements by sort key alone; the entry decodes only at the
/// first operation that actually reads its attributes (or must re-encode
/// it into an [`Annotated`] record).
enum LazyEntry {
    Raw(RawRecord<Entry>),
    Ready(Entry),
}

impl LazyEntry {
    /// Decode in place (idempotent).
    fn force(&mut self, ctx: &PageCtx) -> PagerResult<()> {
        if let LazyEntry::Raw(raw) = self {
            *self = LazyEntry::Ready(raw.decode(ctx)?);
        }
        Ok(())
    }

    /// The decoded entry; caller must have [`LazyEntry::force`]d first.
    fn get(&self) -> &Entry {
        match self {
            LazyEntry::Ready(e) => e,
            LazyEntry::Raw(_) => unreachable!("LazyEntry read before force()"),
        }
    }

    /// The decoded entry if available without I/O or decode work.
    fn ready(&self) -> Option<&Entry> {
        match self {
            LazyEntry::Ready(e) => Some(e),
            LazyEntry::Raw(_) => None,
        }
    }

    /// Consume, decoding if still raw.
    fn into_entry(self, ctx: &PageCtx) -> PagerResult<Entry> {
        match self {
            LazyEntry::Raw(raw) => raw.decode(ctx),
            LazyEntry::Ready(e) => Ok(e),
        }
    }

    /// Emit to an output list — raw bytes pass through undecoded.
    fn emit(&self, out: &mut ListWriter<Entry>) -> PagerResult<()> {
        match self {
            LazyEntry::Raw(raw) => out.push_raw(raw),
            LazyEntry::Ready(e) => out.push(e),
        }
    }
}

struct MergedElem {
    key: Vec<u8>,
    depth: usize,
    labels: u8,
    entry: LazyEntry,
}

/// K-way merge of up to three sorted entry lists, coalescing equal keys.
/// Cursors carry raw records: comparison, depth and labels all come from
/// the page key, so merging itself decodes nothing.
struct Merge<'a> {
    heads: Vec<(Option<RawRecord<Entry>>, netdir_pager::RawListReader<Entry>, u8)>,
    _lists: std::marker::PhantomData<&'a ()>,
}

impl<'a> Merge<'a> {
    fn new(lists: &[(&'a PagedList<Entry>, u8)]) -> PagerResult<Merge<'a>> {
        let mut heads = Vec::with_capacity(lists.len());
        for (list, label) in lists {
            let mut it = list.iter_raw();
            let head = it.next().transpose()?;
            heads.push((head, it, *label));
        }
        Ok(Merge {
            heads,
            _lists: std::marker::PhantomData,
        })
    }

    fn next(&mut self) -> PagerResult<Option<MergedElem>> {
        // Find the minimum key among heads.
        let mut min_key: Option<&[u8]> = None;
        for (head, _, _) in &self.heads {
            if let Some(r) = head {
                let k = r.key();
                if min_key.is_none_or(|m| k < m) {
                    min_key = Some(k);
                }
            }
        }
        let Some(min_key) = min_key.map(<[u8]>::to_vec) else {
            return Ok(None);
        };
        let mut labels = 0u8;
        let mut entry: Option<RawRecord<Entry>> = None;
        for (head, it, label) in &mut self.heads {
            let matches = head
                .as_ref()
                .is_some_and(|r| r.key() == min_key.as_slice());
            if matches {
                labels |= *label;
                let r = head.take().expect("matched head");
                if entry.is_none() {
                    entry = Some(r);
                }
                *head = it.next().transpose()?;
            }
        }
        let entry = entry.expect("at least one list held the min key");
        // Depth = number of 0x00 RDN separators in the reverse-DN key.
        let depth = min_key.iter().filter(|&&b| b == 0).count();
        Ok(Some(MergedElem {
            depth,
            key: min_key,
            labels,
            entry: LazyEntry::Raw(entry),
        }))
    }
}

struct Frame {
    key: Vec<u8>,
    depth: usize,
    labels: u8,
    entry: Option<LazyEntry>,
    /// Below ops: this frame's own witness state (ancestors in L2).
    /// Above ops: accumulated witnesses among processed descendants.
    wit: WitnessState,
    /// Above ops: decided annotated records of this frame's subtree,
    /// in sorted order.
    pending: Chain,
}

/// Evaluate `(op L1 L2 [L3] filter)`, producing the selected entries in
/// reverse-DN sorted order.
///
/// `l3` must be `Some` exactly for the constrained operators.
pub fn hs_select(
    pager: &Pager,
    op: HsOp,
    l1: &PagedList<Entry>,
    l2: &PagedList<Entry>,
    l3: Option<&PagedList<Entry>>,
    filter: &CompiledAggFilter,
) -> PagerResult<PagedList<Entry>> {
    debug_assert_eq!(op.is_constrained(), l3.is_some());
    let mut lists: Vec<(&PagedList<Entry>, u8)> = vec![(l1, L1), (l2, L2)];
    if let Some(l3) = l3 {
        lists.push((l3, L3));
    }
    let mut merge = Merge::new(&lists)?;
    let mut globals = GlobalState::default();

    if op.is_below() {
        run_below(pager, op, &mut merge, filter, &mut globals)
    } else {
        run_above(pager, op, &mut merge, filter, &mut globals)
    }
}

/// `p` / `a` / `ac`: witness state final at push → stream in sorted order.
fn run_below(
    pager: &Pager,
    op: HsOp,
    merge: &mut Merge,
    filter: &CompiledAggFilter,
    globals: &mut GlobalState,
) -> PagerResult<PagedList<Entry>> {
    let ctx = pager.ctx();
    let mut stack: Vec<Frame> = vec![root_frame(filter)];
    let needs_globals = filter.needs_globals();
    // Without entry-set aggregates, select inline; with them, stage the
    // annotated stream and re-scan (the figures' two phases).
    let mut direct_out: ListWriter<Entry> = ListWriter::new(pager);
    let mut staged: ListWriter<Annotated> = ListWriter::new(pager);

    while let Some(mut elem) = merge.next()? {
        pop_to_ancestor_below(&mut stack, &elem.key);
        let top = stack.last_mut().expect("root frame never pops");
        let wit = witness_at_push(op, top, filter, elem.depth, &ctx)?;
        if elem.labels & L1 != 0 {
            if needs_globals {
                // Global aggregates read the candidate entry on the
                // re-scan anyway — decode once, here.
                elem.entry.force(&ctx)?;
                filter.accumulate_global(globals, elem.entry.get(), &wit);
                staged.push(&Annotated {
                    entry: elem.entry.get().clone(),
                    wit: wit.clone(),
                })?;
            } else {
                // Decode only if the filter reads the candidate's own
                // attributes; selected raw records pass through verbatim.
                if filter.needs_entry() {
                    elem.entry.force(&ctx)?;
                }
                if filter.accept_lazy(elem.entry.ready(), &wit, globals) {
                    elem.entry.emit(&mut direct_out)?;
                }
            }
        }
        stack.push(Frame {
            key: elem.key,
            depth: elem.depth,
            labels: elem.labels,
            entry: Some(elem.entry),
            wit,
            pending: Chain::empty(),
        });
    }

    if !needs_globals {
        return direct_out.finish();
    }
    let staged = staged.finish()?;
    let mut out = ListWriter::new(pager);
    for ann in staged.iter() {
        let ann = ann?;
        if filter.accept(&ann.entry, &ann.wit, globals) {
            out.push(&ann.entry)?;
        }
    }
    out.finish()
}

/// `c` / `d` / `dc`: witness state final at pop → per-frame pending
/// chains, spliced upward, keep output sorted.
fn run_above(
    pager: &Pager,
    op: HsOp,
    merge: &mut Merge,
    filter: &CompiledAggFilter,
    globals: &mut GlobalState,
) -> PagerResult<PagedList<Entry>> {
    let ctx = pager.ctx();
    let mut arena: ChainArena<Annotated> = ChainArena::new(pager);
    let mut stack: Vec<Frame> = vec![root_frame(filter)];

    while let Some(mut elem) = merge.next()? {
        while !is_ancestor_key(&stack.last().expect("root").key, &elem.key) {
            pop_above(op, &mut stack, &mut arena, filter, globals, &ctx)?;
        }
        if elem.labels & L2 != 0 {
            let top = stack.last_mut().expect("root");
            let counts = match op {
                HsOp::Children => top.depth + 1 == elem.depth,
                _ => true,
            };
            if counts {
                // Decode the witness only if the filter aggregates over
                // witness attributes; count-only filters just tally.
                if filter.needs_witness_entry() {
                    elem.entry.force(&ctx)?;
                    top.wit.add_witness(filter, elem.entry.get());
                } else {
                    top.wit.add_anonymous_witness();
                }
            }
        }
        stack.push(Frame {
            key: elem.key,
            depth: elem.depth,
            labels: elem.labels,
            entry: Some(elem.entry),
            wit: WitnessState::empty(filter),
            pending: Chain::empty(),
        });
    }
    while stack.len() > 1 {
        pop_above(op, &mut stack, &mut arena, filter, globals, &ctx)?;
    }
    let annotated = stack.pop().expect("root").pending;

    let mut out = ListWriter::new(pager);
    for ann in arena.iter(annotated) {
        let ann = ann?;
        if filter.accept(&ann.entry, &ann.wit, globals) {
            out.push(&ann.entry)?;
        }
    }
    out.finish()
}

fn root_frame(filter: &CompiledAggFilter) -> Frame {
    Frame {
        key: Vec::new(),
        depth: 0,
        labels: 0,
        entry: None,
        wit: WitnessState::empty(filter),
        pending: Chain::empty(),
    }
}

fn is_ancestor_key(anc: &[u8], key: &[u8]) -> bool {
    key.starts_with(anc) && anc.len() < key.len()
}

fn pop_to_ancestor_below(stack: &mut Vec<Frame>, key: &[u8]) {
    while !is_ancestor_key(&stack.last().expect("root").key, key) {
        stack.pop();
    }
}

/// Add `top`'s entry to witness state `w`, decoding it only if the
/// filter aggregates over witness attributes.
fn add_top_witness(
    w: &mut WitnessState,
    top: &mut Frame,
    filter: &CompiledAggFilter,
    ctx: &PageCtx,
) -> PagerResult<()> {
    if filter.needs_witness_entry() {
        let e = top.entry.as_mut().expect("non-root top");
        e.force(ctx)?;
        w.add_witness(filter, e.get());
    } else {
        w.add_anonymous_witness();
    }
    Ok(())
}

/// Witness state of a freshly pushed element for the below-direction
/// operators, from its nearest merge-ancestor `top` (Figures 2/4/5's
/// `below(rl)` assignments, generalized from counts to [`WitnessState`]).
fn witness_at_push(
    op: HsOp,
    top: &mut Frame,
    filter: &CompiledAggFilter,
    elem_depth: usize,
    ctx: &PageCtx,
) -> PagerResult<WitnessState> {
    let top_in_l2 = top.labels & L2 != 0;
    let top_in_l3 = top.labels & L3 != 0;
    let w = match op {
        HsOp::Parents => {
            let mut w = WitnessState::empty(filter);
            if top_in_l2 && top.depth + 1 == elem_depth {
                add_top_witness(&mut w, top, filter, ctx)?;
            }
            w
        }
        HsOp::Ancestors => {
            let mut w = top.wit.clone();
            if top_in_l2 {
                add_top_witness(&mut w, top, filter, ctx)?;
            }
            w
        }
        HsOp::AncestorsConstrained => {
            // Figure 5: an L3 ancestor blocks everything above it; an
            // entry that is in both L2 and L3 still counts itself.
            let mut w = WitnessState::empty(filter);
            if top_in_l2 {
                if !top_in_l3 {
                    w = top.wit.clone();
                }
                add_top_witness(&mut w, top, filter, ctx)?;
            } else if !top_in_l3 {
                w = top.wit.clone();
            }
            w
        }
        _ => unreachable!("witness_at_push is for below-direction ops"),
    };
    Ok(w)
}

fn pop_above(
    op: HsOp,
    stack: &mut Vec<Frame>,
    arena: &mut ChainArena<Annotated>,
    filter: &CompiledAggFilter,
    globals: &mut GlobalState,
    ctx: &PageCtx,
) -> PagerResult<()> {
    let mut rt = stack.pop().expect("caller ensures non-root");
    let mut out_chain = Chain::empty();
    if rt.labels & L1 != 0 {
        // Buffered candidates re-encode into Annotated records, so the
        // decode is unavoidable here (witness-less frames never reach it).
        let entry = rt.entry.take().expect("L1 frame has entry").into_entry(ctx)?;
        filter.accumulate_global(globals, &entry, &rt.wit);
        out_chain = arena.push(
            out_chain,
            &Annotated {
                entry,
                wit: rt.wit.clone(),
            },
        )?;
    }
    out_chain = arena.concat(out_chain, rt.pending)?;
    let rb = stack.last_mut().expect("root frame remains");
    match op {
        HsOp::Children => {}
        HsOp::Descendants => rb.wit.merge(&rt.wit),
        HsOp::DescendantsConstrained => {
            if rt.labels & L3 == 0 {
                rb.wit.merge(&rt.wit);
            }
        }
        _ => unreachable!("pop_above is for above-direction ops"),
    }
    rb.pending = arena.concat(rb.pending, out_chain)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_model::Dn;
    use netdir_pager::tiny_pager;

    fn entry(s: &str) -> Entry {
        Entry::builder(Dn::parse(s).unwrap())
            .class("t")
            .build()
            .unwrap()
    }

    fn list(pager: &Pager, dns: &[&str]) -> PagedList<Entry> {
        let mut v: Vec<Entry> = dns.iter().map(|s| entry(s)).collect();
        v.sort_by(|a, b| a.dn().cmp(b.dn()));
        PagedList::from_iter(pager, v).unwrap()
    }

    fn dns(l: &PagedList<Entry>) -> Vec<String> {
        l.to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect()
    }

    fn plain(
        pager: &Pager,
        op: HsOp,
        l1: &PagedList<Entry>,
        l2: &PagedList<Entry>,
        l3: Option<&PagedList<Entry>>,
    ) -> Vec<String> {
        let f = CompiledAggFilter::exists_witness();
        dns(&hs_select(pager, op, l1, l2, l3, &f).unwrap())
    }

    // A small forest used across tests:
    //   dc=com
    //     dc=att,dc=com
    //       ou=p,dc=att,dc=com
    //         uid=a,...   uid=b,...
    //       ou=q,dc=att,dc=com
    //   dc=org
    const ALL: &[&str] = &[
        "dc=com",
        "dc=att, dc=com",
        "ou=p, dc=att, dc=com",
        "uid=a, ou=p, dc=att, dc=com",
        "uid=b, ou=p, dc=att, dc=com",
        "ou=q, dc=att, dc=com",
        "dc=org",
    ];

    #[test]
    fn parents_selects_entries_with_parent_in_l2() {
        let pager = tiny_pager();
        let l1 = list(&pager, ALL);
        let l2 = list(&pager, &["ou=p, dc=att, dc=com", "dc=com"]);
        // Entries whose parent ∈ L2: children of ou=p (uid=a, uid=b) and
        // children of dc=com (dc=att).
        assert_eq!(
            plain(&pager, HsOp::Parents, &l1, &l2, None),
            vec![
                "dc=att, dc=com",
                "uid=a, ou=p, dc=att, dc=com",
                "uid=b, ou=p, dc=att, dc=com",
            ]
        );
    }

    #[test]
    fn children_selects_entries_with_child_in_l2() {
        let pager = tiny_pager();
        let l1 = list(&pager, ALL);
        let l2 = list(&pager, &["uid=a, ou=p, dc=att, dc=com", "dc=att, dc=com"]);
        // Entries having a child ∈ L2: ou=p (child uid=a), dc=com (child dc=att).
        assert_eq!(
            plain(&pager, HsOp::Children, &l1, &l2, None),
            vec!["dc=com", "ou=p, dc=att, dc=com"]
        );
    }

    #[test]
    fn ancestors_and_descendants() {
        let pager = tiny_pager();
        let l1 = list(&pager, ALL);
        let l2 = list(&pager, &["dc=att, dc=com"]);
        // a: entries with an ancestor in L2 = everything strictly below dc=att.
        assert_eq!(
            plain(&pager, HsOp::Ancestors, &l1, &l2, None),
            vec![
                "ou=p, dc=att, dc=com",
                "uid=a, ou=p, dc=att, dc=com",
                "uid=b, ou=p, dc=att, dc=com",
                "ou=q, dc=att, dc=com",
            ]
        );
        // d: entries with a descendant in L2 = dc=com only.
        assert_eq!(
            plain(&pager, HsOp::Descendants, &l1, &l2, None),
            vec!["dc=com"]
        );
    }

    #[test]
    fn self_is_not_its_own_witness() {
        let pager = tiny_pager();
        let l = list(&pager, &["dc=att, dc=com"]);
        assert!(plain(&pager, HsOp::Ancestors, &l, &l, None).is_empty());
        assert!(plain(&pager, HsOp::Descendants, &l, &l, None).is_empty());
        assert!(plain(&pager, HsOp::Parents, &l, &l, None).is_empty());
        assert!(plain(&pager, HsOp::Children, &l, &l, None).is_empty());
    }

    #[test]
    fn constrained_ancestors_blocking() {
        let pager = tiny_pager();
        // Chain: com > att > p > a.
        let l1 = list(&pager, &["uid=a, ou=p, dc=att, dc=com"]);
        let l2 = list(&pager, &["dc=com", "dc=att, dc=com"]);
        // Without blockers both ancestors witness.
        let empty = PagedList::empty(&pager);
        assert_eq!(
            plain(&pager, HsOp::AncestorsConstrained, &l1, &l2, Some(&empty)),
            vec!["uid=a, ou=p, dc=att, dc=com"]
        );
        // Blocker at ou=p blocks *all* L2 ancestors above it.
        let l3 = list(&pager, &["ou=p, dc=att, dc=com"]);
        assert!(plain(&pager, HsOp::AncestorsConstrained, &l1, &l2, Some(&l3)).is_empty());
        // Blocker at dc=att blocks dc=com, but dc=att itself is in L2 —
        // wait: dc=att ∈ L3 only blocks entries *above* it; is dc=att in
        // L2 still a witness? It is: r3 must differ from r2.
        let l3 = list(&pager, &["dc=att, dc=com"]);
        assert_eq!(
            plain(&pager, HsOp::AncestorsConstrained, &l1, &l2, Some(&l3)),
            vec!["uid=a, ou=p, dc=att, dc=com"]
        );
    }

    #[test]
    fn constrained_descendants_closest_dc_object_example() {
        let pager = tiny_pager();
        // Example 5.3 shape: which dcObjects have an SMTP profile below
        // them with no intervening dcObject?
        let dc_objects = list(&pager, &["dc=com", "dc=att, dc=com"]);
        let profiles = list(&pager, &["tp=smtp, ou=p, dc=att, dc=com"]);
        // dc=att sees the profile (no dcObject between); dc=com is blocked
        // by dc=att.
        assert_eq!(
            plain(
                &pager,
                HsOp::DescendantsConstrained,
                &dc_objects,
                &profiles,
                Some(&dc_objects)
            ),
            vec!["dc=att, dc=com"]
        );
    }

    #[test]
    fn structural_count_filter() {
        use crate::ast::{AggAttribute, AggSelFilter, EntryAgg};
        use netdir_filter::atomic::IntOp;
        let pager = tiny_pager();
        let l1 = list(&pager, &["ou=p, dc=att, dc=com", "ou=q, dc=att, dc=com"]);
        let l2 = list(
            &pager,
            &[
                "uid=a, ou=p, dc=att, dc=com",
                "uid=b, ou=p, dc=att, dc=com",
                "uid=c, ou=q, dc=att, dc=com",
            ],
        );
        // count($2) > 1 on children: only ou=p has 2 children in L2.
        let f = CompiledAggFilter::compile(
            &AggSelFilter {
                lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
                op: IntOp::Gt,
                rhs: AggAttribute::Const(1),
            },
            true,
        )
        .unwrap();
        let out = hs_select(&pager, HsOp::Children, &l1, &l2, None, &f).unwrap();
        assert_eq!(dns(&out), vec!["ou=p, dc=att, dc=com"]);
    }

    #[test]
    fn global_max_count_filter() {
        use crate::ast::{AggAttribute, AggSelFilter, Aggregate, EntryAgg};
        use netdir_filter::atomic::IntOp;
        let pager = tiny_pager();
        // Figure 6's instantiation: count($2) = max(count($2)).
        let l1 = list(&pager, &["ou=p, dc=att, dc=com", "ou=q, dc=att, dc=com", "dc=org"]);
        let l2 = list(
            &pager,
            &[
                "uid=a, ou=p, dc=att, dc=com",
                "uid=b, ou=p, dc=att, dc=com",
                "uid=c, ou=q, dc=att, dc=com",
            ],
        );
        let f = CompiledAggFilter::compile(
            &AggSelFilter {
                lhs: AggAttribute::Entry(EntryAgg::CountWitnesses),
                op: IntOp::Eq,
                rhs: AggAttribute::EntrySet(
                    Aggregate::Max,
                    Box::new(EntryAgg::CountWitnesses),
                ),
            },
            true,
        )
        .unwrap();
        let out = hs_select(&pager, HsOp::Descendants, &l1, &l2, None, &f).unwrap();
        assert_eq!(dns(&out), vec!["ou=p, dc=att, dc=com"]);
    }

    #[test]
    fn output_is_sorted_for_above_ops() {
        let pager = tiny_pager();
        // Nested L1 entries with children: both dc=com and dc=att have
        // children in L2; output must list dc=com first (it's nested
        // *outside*), exercising the pending-chain splice.
        let l1 = list(&pager, ALL);
        let l2 = list(
            &pager,
            &["dc=att, dc=com", "ou=p, dc=att, dc=com", "uid=a, ou=p, dc=att, dc=com"],
        );
        let got = plain(&pager, HsOp::Descendants, &l1, &l2, None);
        assert_eq!(
            got,
            vec!["dc=com", "dc=att, dc=com", "ou=p, dc=att, dc=com"]
        );
    }

    #[test]
    fn empty_inputs() {
        let pager = tiny_pager();
        let l = list(&pager, ALL);
        let empty = PagedList::empty(&pager);
        for op in [HsOp::Parents, HsOp::Children, HsOp::Ancestors, HsOp::Descendants] {
            assert!(plain(&pager, op, &empty, &l, None).is_empty());
            assert!(plain(&pager, op, &l, &empty, None).is_empty());
        }
        assert!(plain(&pager, HsOp::AncestorsConstrained, &empty, &l, Some(&empty)).is_empty());
    }

    #[test]
    fn forest_gaps_respected() {
        // Missing intermediate entries: uid under ou, but the ou entry is
        // absent from the instance. parent must fail, ancestor must work.
        let pager = tiny_pager();
        let l1 = list(&pager, &["uid=a, ou=ghost, dc=com"]);
        let l2 = list(&pager, &["dc=com"]);
        assert!(plain(&pager, HsOp::Parents, &l1, &l2, None).is_empty());
        assert_eq!(
            plain(&pager, HsOp::Ancestors, &l1, &l2, None),
            vec!["uid=a, ou=ghost, dc=com"]
        );
        assert!(plain(&pager, HsOp::Children, &l2, &l1, None).is_empty());
        assert_eq!(
            plain(&pager, HsOp::Descendants, &l2, &l1, None),
            vec!["dc=com"]
        );
    }
}
