//! A miniature exhaustive-interleaving model checker.
//!
//! The environment has no `loom`, but the protocol we need to check is
//! small enough for something stronger than loom's bounded search: each
//! thread is a short state machine whose steps are atomic (they model
//! critical sections — code executed under a lock — or single
//! lock-free transitions), so the whole behaviour space is "all
//! interleavings of all threads' steps", and with ≤4 threads × ≤5
//! steps that space is fully enumerable by DFS. The checker clones the
//! state at every branch point, explores *every* schedule, checks the
//! invariant in *every* intermediate state, and reports deadlock if it
//! ever reaches a state where no thread can run and the model is not
//! done.

/// A model: shared state plus per-thread program counters, cheap to
/// clone (cloning is how the DFS branches).
pub trait Model: Clone {
    /// Number of threads.
    fn threads(&self) -> usize;

    /// Can thread `tid` take a step now? (A blocked thread — waiting on
    /// a lock another thread holds — is disabled, not failed.)
    fn enabled(&self, tid: usize) -> bool;

    /// Execute thread `tid`'s next atomic step.
    fn step(&mut self, tid: usize);

    /// Have all threads run to completion?
    fn done(&self) -> bool;

    /// Invariant checked in every reachable state (not just final
    /// ones). Return a description of the violation, or `None`.
    fn invariant(&self) -> Option<String>;
}

/// What exhaustive exploration found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Distinct complete schedules executed.
    pub schedules: u64,
    /// States visited (including interior ones).
    pub states: u64,
}

/// A counterexample: the violation plus the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong (invariant text, or deadlock description).
    pub message: String,
    /// The thread schedule (sequence of tids) that reaches it.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sched: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
        write!(f, "{} [schedule: {}]", self.message, sched.join(","))
    }
}

/// Explore every interleaving of `init`. Returns stats, or the first
/// violation found (with its schedule).
pub fn explore<M: Model>(init: &M) -> Result<Stats, Violation> {
    let mut stats = Stats {
        schedules: 0,
        states: 0,
    };
    let mut schedule = Vec::new();
    dfs(init, &mut schedule, &mut stats)?;
    Ok(stats)
}

fn dfs<M: Model>(
    state: &M,
    schedule: &mut Vec<usize>,
    stats: &mut Stats,
) -> Result<(), Violation> {
    stats.states += 1;
    if let Some(msg) = state.invariant() {
        return Err(Violation {
            message: msg,
            schedule: schedule.clone(),
        });
    }
    if state.done() {
        stats.schedules += 1;
        return Ok(());
    }
    let runnable: Vec<usize> = (0..state.threads()).filter(|&t| state.enabled(t)).collect();
    if runnable.is_empty() {
        return Err(Violation {
            message: "deadlock: no thread enabled".to_string(),
            schedule: schedule.clone(),
        });
    }
    for tid in runnable {
        let mut next = state.clone();
        next.step(tid);
        schedule.push(tid);
        dfs(&next, schedule, stats)?;
        schedule.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads doing a non-atomic increment (read, then write).
    /// With `atomic: false`, exploration must find the lost update.
    #[derive(Clone)]
    struct Counter {
        value: u32,
        local: [u32; 2],
        pc: [u8; 2],
        atomic: bool,
    }

    impl Model for Counter {
        fn threads(&self) -> usize {
            2
        }
        fn enabled(&self, tid: usize) -> bool {
            self.pc[tid] < 2
        }
        fn step(&mut self, tid: usize) {
            if self.atomic {
                self.value += 1;
                self.pc[tid] = 2;
            } else if self.pc[tid] == 0 {
                self.local[tid] = self.value;
                self.pc[tid] = 1;
            } else {
                self.value = self.local[tid] + 1;
                self.pc[tid] = 2;
            }
        }
        fn done(&self) -> bool {
            self.pc.iter().all(|&p| p == 2)
        }
        fn invariant(&self) -> Option<String> {
            if self.done() && self.value != 2 {
                return Some(format!("lost update: value = {}", self.value));
            }
            None
        }
    }

    fn counter(atomic: bool) -> Counter {
        Counter {
            value: 0,
            local: [0; 2],
            pc: [0; 2],
            atomic,
        }
    }

    #[test]
    fn atomic_counter_passes_all_interleavings() {
        let stats = explore(&counter(true)).expect("no violation");
        assert_eq!(stats.schedules, 2, "two orders of two atomic steps");
    }

    #[test]
    fn racy_counter_is_caught_with_a_schedule() {
        let v = explore(&counter(false)).expect_err("lost update must be found");
        assert!(v.message.contains("lost update"), "{}", v.message);
        assert!(!v.schedule.is_empty());
        // Replay the counterexample: it must reproduce the violation.
        let mut m = counter(false);
        for &tid in &v.schedule {
            m.step(tid);
        }
        assert!(m.invariant().is_some(), "schedule replays the bug");
    }

    #[test]
    fn deadlock_is_reported() {
        #[derive(Clone)]
        struct Stuck;
        impl Model for Stuck {
            fn threads(&self) -> usize {
                1
            }
            fn enabled(&self, _: usize) -> bool {
                false
            }
            fn step(&mut self, _: usize) {}
            fn done(&self) -> bool {
                false
            }
            fn invariant(&self) -> Option<String> {
                None
            }
        }
        let v = explore(&Stuck).expect_err("deadlock");
        assert!(v.message.contains("deadlock"));
    }
}
