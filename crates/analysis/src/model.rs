//! An exhaustive-interleaving model of the buffer pool's loading-frame
//! protocol (`crates/pager/src/pool.rs::fetch`).
//!
//! The protocol under model: on a miss, the fetching thread publishes a
//! pinned frame into the page table with its data lock *write-held*,
//! releases the table lock, performs the disk read outside any table
//! lock, fills the frame, and releases the data lock. Racing fetchers
//! that find the published frame pin it under the table lock and then
//! block on the data lock until the loader finishes. The two properties
//! that make this correct:
//!
//! 1. **exactly-one-read** — no matter how the threads interleave, the
//!    disk sees one read per cold page;
//! 2. **no torn reads** — a waiter never observes the frame before the
//!    loader filled it (on read failure it observes a deliberately
//!    zeroed page, never uninitialized bytes).
//!
//! Each [`Model`] step is one critical section of the real code (the
//! table-lock section is a single atomic step, exactly as the real
//! mutex makes it), so the model's interleavings over-approximate the
//! real thread schedules. `buggy: true` models the classic
//! check-then-read bug (miss → drop table lock → read → re-insert) and
//! exists to prove the checker actually catches the race the protocol
//! prevents.

use crate::interleave::Model;

/// Per-thread program counter through `fetch()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// Before the table-lock critical section.
    Lookup,
    /// (buggy variant only) decided to read without publishing.
    BuggyRead,
    /// (buggy variant only) insert the frame read privately.
    BuggyInsert,
    /// Loader: doing the disk read (table lock released).
    Read,
    /// Loader: filling the frame and releasing its data lock.
    Fill,
    /// Waiter: blocked until the frame's data lock is released.
    AwaitData,
    /// Finished; payload = did this thread observe a filled frame.
    Done(bool),
}

/// The published loading frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    /// Data lock still write-held by the loader.
    write_locked: bool,
    /// Bytes have arrived (false after a failed read: zeroed page).
    filled: bool,
    /// Pin count (waiters + loader).
    pins: u32,
}

/// N threads concurrently `fetch()`ing the same cold page.
#[derive(Debug, Clone)]
pub struct LoadingFrame {
    frame: Option<Frame>,
    reads: u32,
    pcs: Vec<Pc>,
    /// Model the loader's disk read failing (waiters must still wake
    /// and must see a zeroed — not torn — page).
    read_fails: bool,
    /// Model the unprotected check-then-read bug instead of the real
    /// protocol.
    buggy: bool,
}

impl LoadingFrame {
    /// The real protocol with `threads` racing cold fetchers.
    pub fn correct(threads: usize) -> LoadingFrame {
        LoadingFrame {
            frame: None,
            reads: 0,
            pcs: vec![Pc::Lookup; threads],
            read_fails: false,
            buggy: false,
        }
    }

    /// The real protocol, but the single disk read fails.
    pub fn correct_with_failed_read(threads: usize) -> LoadingFrame {
        LoadingFrame {
            read_fails: true,
            ..LoadingFrame::correct(threads)
        }
    }

    /// The check-then-read bug: the miss path releases the table lock
    /// without publishing a loading frame first.
    pub fn buggy(threads: usize) -> LoadingFrame {
        LoadingFrame {
            buggy: true,
            ..LoadingFrame::correct(threads)
        }
    }
}

impl Model for LoadingFrame {
    fn threads(&self) -> usize {
        self.pcs.len()
    }

    fn enabled(&self, tid: usize) -> bool {
        match self.pcs[tid] {
            Pc::Done(_) => false,
            // Blocked on the loader's write-held data lock.
            Pc::AwaitData => self.frame.is_some_and(|f| !f.write_locked),
            _ => true,
        }
    }

    fn step(&mut self, tid: usize) {
        match self.pcs[tid] {
            Pc::Lookup => {
                // The table-lock critical section: one atomic step.
                match &mut self.frame {
                    Some(f) => {
                        f.pins += 1;
                        self.pcs[tid] = Pc::AwaitData;
                    }
                    None if self.buggy => {
                        // Bug: observe the miss, release the table
                        // lock, read privately.
                        self.pcs[tid] = Pc::BuggyRead;
                    }
                    None => {
                        // Publish the frame write-locked, pinned.
                        self.frame = Some(Frame {
                            write_locked: true,
                            filled: false,
                            pins: 1,
                        });
                        self.pcs[tid] = Pc::Read;
                    }
                }
            }
            Pc::BuggyRead => {
                self.reads += 1;
                self.pcs[tid] = Pc::BuggyInsert;
            }
            Pc::BuggyInsert => {
                if self.frame.is_none() {
                    self.frame = Some(Frame {
                        write_locked: false,
                        filled: true,
                        pins: 1,
                    });
                }
                self.pcs[tid] = Pc::Done(true);
            }
            Pc::Read => {
                // Outside every lock — this is the step other threads
                // interleave with.
                self.reads += 1;
                self.pcs[tid] = Pc::Fill;
            }
            Pc::Fill => {
                let f = self.frame.as_mut().expect("loader published the frame");
                // On failure the real code zeroes the page (a defined
                // value) before releasing; `filled` models "real bytes".
                f.filled = !self.read_fails;
                f.write_locked = false;
                self.pcs[tid] = Pc::Done(!self.read_fails);
            }
            Pc::AwaitData => {
                let f = self.frame.expect("pinned frame cannot vanish");
                // Read under the (now-shared) data lock.
                self.pcs[tid] = Pc::Done(f.filled);
            }
            Pc::Done(_) => unreachable!("done threads are never enabled"),
        }
    }

    fn done(&self) -> bool {
        self.pcs.iter().all(|p| matches!(p, Pc::Done(_)))
    }

    fn invariant(&self) -> Option<String> {
        if self.reads > 1 {
            return Some(format!("{} disk reads for one cold page", self.reads));
        }
        if self.done() {
            if self.reads != 1 {
                return Some(format!("{} disk reads at completion", self.reads));
            }
            let expected = !self.read_fails;
            for (tid, pc) in self.pcs.iter().enumerate() {
                if *pc != Pc::Done(expected) {
                    return Some(format!(
                        "thread {tid} observed filled={} (expected {expected})",
                        matches!(pc, Pc::Done(true)),
                    ));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::explore;

    #[test]
    fn three_racing_fetchers_do_exactly_one_read() {
        let stats = explore(&LoadingFrame::correct(3)).unwrap_or_else(|v| {
            panic!("loading-frame protocol violated: {v}");
        });
        assert!(stats.schedules > 1, "exploration must branch");
    }

    #[test]
    fn four_fetchers_still_hold() {
        explore(&LoadingFrame::correct(4)).unwrap_or_else(|v| {
            panic!("loading-frame protocol violated at 4 threads: {v}");
        });
    }

    #[test]
    fn failed_read_wakes_every_waiter_with_a_zeroed_page() {
        // No deadlock, still exactly one read attempt, and every
        // thread completes observing the zeroed page.
        explore(&LoadingFrame::correct_with_failed_read(3)).unwrap_or_else(|v| {
            panic!("failed-read semantics violated: {v}");
        });
    }

    #[test]
    fn the_checker_catches_the_check_then_read_bug() {
        let v = explore(&LoadingFrame::buggy(2)).expect_err("double read must be found");
        assert!(v.message.contains("disk reads"), "{}", v.message);
        // And the counterexample replays.
        let mut m = LoadingFrame::buggy(2);
        for &tid in &v.schedule {
            m.step(tid);
        }
        assert!(m.invariant().is_some());
    }
}
