//! An exhaustive-interleaving model of the buffer pool's loading-frame
//! protocol (`crates/pager/src/pool.rs::fetch`).
//!
//! The protocol under model: on a miss, the fetching thread publishes a
//! pinned frame into the page table with its data lock *write-held*,
//! releases the table lock, performs the disk read outside any table
//! lock, fills the frame, and releases the data lock. Racing fetchers
//! that find the published frame pin it under the table lock and then
//! block on the data lock until the loader finishes. The two properties
//! that make this correct:
//!
//! 1. **exactly-one-read** — no matter how the threads interleave, the
//!    disk sees one read per cold page;
//! 2. **no torn reads** — a waiter never observes the frame before the
//!    loader filled it (on read failure it observes a deliberately
//!    zeroed page, never uninitialized bytes).
//!
//! Each [`Model`] step is one critical section of the real code (the
//! table-lock section is a single atomic step, exactly as the real
//! mutex makes it), so the model's interleavings over-approximate the
//! real thread schedules. `buggy: true` models the classic
//! check-then-read bug (miss → drop table lock → read → re-insert) and
//! exists to prove the checker actually catches the race the protocol
//! prevents.

use crate::interleave::Model;

/// Per-thread program counter through `fetch()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// Before the table-lock critical section.
    Lookup,
    /// (buggy variant only) decided to read without publishing.
    BuggyRead,
    /// (buggy variant only) insert the frame read privately.
    BuggyInsert,
    /// Loader: doing the disk read (table lock released).
    Read,
    /// Loader: filling the frame and releasing its data lock.
    Fill,
    /// Waiter: blocked until the frame's data lock is released.
    AwaitData,
    /// Finished; payload = did this thread observe a filled frame.
    Done(bool),
}

/// The published loading frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    /// Data lock still write-held by the loader.
    write_locked: bool,
    /// Bytes have arrived (false after a failed read: zeroed page).
    filled: bool,
    /// Pin count (waiters + loader).
    pins: u32,
}

/// N threads concurrently `fetch()`ing the same cold page.
#[derive(Debug, Clone)]
pub struct LoadingFrame {
    frame: Option<Frame>,
    reads: u32,
    pcs: Vec<Pc>,
    /// Model the loader's disk read failing (waiters must still wake
    /// and must see a zeroed — not torn — page).
    read_fails: bool,
    /// Model the unprotected check-then-read bug instead of the real
    /// protocol.
    buggy: bool,
}

impl LoadingFrame {
    /// The real protocol with `threads` racing cold fetchers.
    pub fn correct(threads: usize) -> LoadingFrame {
        LoadingFrame {
            frame: None,
            reads: 0,
            pcs: vec![Pc::Lookup; threads],
            read_fails: false,
            buggy: false,
        }
    }

    /// The real protocol, but the single disk read fails.
    pub fn correct_with_failed_read(threads: usize) -> LoadingFrame {
        LoadingFrame {
            read_fails: true,
            ..LoadingFrame::correct(threads)
        }
    }

    /// The check-then-read bug: the miss path releases the table lock
    /// without publishing a loading frame first.
    pub fn buggy(threads: usize) -> LoadingFrame {
        LoadingFrame {
            buggy: true,
            ..LoadingFrame::correct(threads)
        }
    }
}

impl Model for LoadingFrame {
    fn threads(&self) -> usize {
        self.pcs.len()
    }

    fn enabled(&self, tid: usize) -> bool {
        match self.pcs[tid] {
            Pc::Done(_) => false,
            // Blocked on the loader's write-held data lock.
            Pc::AwaitData => self.frame.is_some_and(|f| !f.write_locked),
            _ => true,
        }
    }

    fn step(&mut self, tid: usize) {
        match self.pcs[tid] {
            Pc::Lookup => {
                // The table-lock critical section: one atomic step.
                match &mut self.frame {
                    Some(f) => {
                        f.pins += 1;
                        self.pcs[tid] = Pc::AwaitData;
                    }
                    None if self.buggy => {
                        // Bug: observe the miss, release the table
                        // lock, read privately.
                        self.pcs[tid] = Pc::BuggyRead;
                    }
                    None => {
                        // Publish the frame write-locked, pinned.
                        self.frame = Some(Frame {
                            write_locked: true,
                            filled: false,
                            pins: 1,
                        });
                        self.pcs[tid] = Pc::Read;
                    }
                }
            }
            Pc::BuggyRead => {
                self.reads += 1;
                self.pcs[tid] = Pc::BuggyInsert;
            }
            Pc::BuggyInsert => {
                if self.frame.is_none() {
                    self.frame = Some(Frame {
                        write_locked: false,
                        filled: true,
                        pins: 1,
                    });
                }
                self.pcs[tid] = Pc::Done(true);
            }
            Pc::Read => {
                // Outside every lock — this is the step other threads
                // interleave with.
                self.reads += 1;
                self.pcs[tid] = Pc::Fill;
            }
            Pc::Fill => {
                let f = self.frame.as_mut().expect("loader published the frame");
                // On failure the real code zeroes the page (a defined
                // value) before releasing; `filled` models "real bytes".
                f.filled = !self.read_fails;
                f.write_locked = false;
                self.pcs[tid] = Pc::Done(!self.read_fails);
            }
            Pc::AwaitData => {
                let f = self.frame.expect("pinned frame cannot vanish");
                // Read under the (now-shared) data lock.
                self.pcs[tid] = Pc::Done(f.filled);
            }
            Pc::Done(_) => unreachable!("done threads are never enabled"),
        }
    }

    fn done(&self) -> bool {
        self.pcs.iter().all(|p| matches!(p, Pc::Done(_)))
    }

    fn invariant(&self) -> Option<String> {
        if self.reads > 1 {
            return Some(format!("{} disk reads for one cold page", self.reads));
        }
        if self.done() {
            if self.reads != 1 {
                return Some(format!("{} disk reads at completion", self.reads));
            }
            let expected = !self.read_fails;
            for (tid, pc) in self.pcs.iter().enumerate() {
                if *pc != Pc::Done(expected) {
                    return Some(format!(
                        "thread {tid} observed filled={} (expected {expected})",
                        matches!(pc, Pc::Done(true)),
                    ));
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Two-queue ghost admission (`pool.rs::admit` + `take_ghost`).

/// Per-thread program counter through `fetch()` of a *ghosted* page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GhostPc {
    /// Before the table-lock critical section.
    Lookup,
    /// (buggy variant only) published the frame, ghost entry left behind;
    /// will remove it in a second, later lock acquisition.
    StaleGhostFixup,
    /// Loader: doing the disk read (table lock released).
    Read,
    /// Loader: filling the frame and releasing its data lock.
    Fill,
    /// Waiter: blocked until the frame's data lock is released.
    AwaitData,
    /// Finished; payload = did this thread observe a filled frame.
    Done(bool),
}

/// N threads concurrently `fetch()`ing the same cold page that sits on
/// the **ghost list** — the two-queue extension of [`LoadingFrame`].
///
/// The protocol under model: the miss path's table-lock critical section
/// removes the page's ghost entry and admits the frame (to protected,
/// counting one re-admission) in the *same atomic step* as publishing the
/// loading frame. The checked invariants:
///
/// 1. **exactly-one-read** — ghosted pages are still cold pages: racing
///    fetchers cost one read, no matter the schedule;
/// 2. **never ghosted-and-resident** — no reachable state has the page
///    simultaneously on the ghost list and in the resident table;
/// 3. **one re-admission** — the ghost refault is counted once, by the
///    publishing loader, not once per racing fetcher.
///
/// `stale_ghost_bug` models deferring the ghost removal to a second lock
/// acquisition after publication (a natural refactoring mistake); the
/// checker must find the window where invariant 2 is violated.
#[derive(Debug, Clone)]
pub struct GhostAdmission {
    frame: Option<Frame>,
    /// The page's ghost-list entry is still present.
    ghosted: bool,
    reads: u32,
    readmissions: u32,
    pcs: Vec<GhostPc>,
    /// Model the deferred (non-atomic) ghost removal instead of the
    /// real protocol.
    buggy: bool,
}

impl GhostAdmission {
    /// The real protocol with `threads` racing fetchers of one ghosted page.
    pub fn correct(threads: usize) -> GhostAdmission {
        GhostAdmission {
            frame: None,
            ghosted: true,
            reads: 0,
            readmissions: 0,
            pcs: vec![GhostPc::Lookup; threads],
            buggy: false,
        }
    }

    /// The stale-ghost bug: admission publishes the frame but leaves the
    /// ghost entry for a later, separate critical section.
    pub fn stale_ghost_bug(threads: usize) -> GhostAdmission {
        GhostAdmission {
            buggy: true,
            ..GhostAdmission::correct(threads)
        }
    }
}

impl Model for GhostAdmission {
    fn threads(&self) -> usize {
        self.pcs.len()
    }

    fn enabled(&self, tid: usize) -> bool {
        match self.pcs[tid] {
            GhostPc::Done(_) => false,
            GhostPc::AwaitData => self.frame.is_some_and(|f| !f.write_locked),
            _ => true,
        }
    }

    fn step(&mut self, tid: usize) {
        match self.pcs[tid] {
            GhostPc::Lookup => match &mut self.frame {
                Some(f) => {
                    f.pins += 1;
                    self.pcs[tid] = GhostPc::AwaitData;
                }
                None => {
                    // The table-lock critical section of the miss path.
                    self.frame = Some(Frame {
                        write_locked: true,
                        filled: false,
                        pins: 1,
                    });
                    if self.buggy {
                        // Bug: admission published the frame but did not
                        // take the ghost entry; a separate step will.
                        self.pcs[tid] = GhostPc::StaleGhostFixup;
                    } else {
                        // Real protocol: `admit` calls `take_ghost` in
                        // the same state-locked step.
                        self.ghosted = false;
                        self.readmissions += 1;
                        self.pcs[tid] = GhostPc::Read;
                    }
                }
            },
            GhostPc::StaleGhostFixup => {
                // The deferred second critical section.
                if self.ghosted {
                    self.ghosted = false;
                    self.readmissions += 1;
                }
                self.pcs[tid] = GhostPc::Read;
            }
            GhostPc::Read => {
                self.reads += 1;
                self.pcs[tid] = GhostPc::Fill;
            }
            GhostPc::Fill => {
                let f = self.frame.as_mut().expect("loader published the frame");
                f.filled = true;
                f.write_locked = false;
                self.pcs[tid] = GhostPc::Done(true);
            }
            GhostPc::AwaitData => {
                let f = self.frame.expect("pinned frame cannot vanish");
                self.pcs[tid] = GhostPc::Done(f.filled);
            }
            GhostPc::Done(_) => unreachable!("done threads are never enabled"),
        }
    }

    fn done(&self) -> bool {
        self.pcs.iter().all(|p| matches!(p, GhostPc::Done(_)))
    }

    fn invariant(&self) -> Option<String> {
        if self.frame.is_some() && self.ghosted {
            return Some("page simultaneously ghosted and resident".to_string());
        }
        if self.reads > 1 {
            return Some(format!("{} disk reads for one ghosted page", self.reads));
        }
        if self.readmissions > 1 {
            return Some(format!(
                "{} ghost re-admissions counted for one refault",
                self.readmissions
            ));
        }
        if self.done() {
            if self.reads != 1 {
                return Some(format!("{} disk reads at completion", self.reads));
            }
            if self.readmissions != 1 {
                return Some(format!("{} re-admissions at completion", self.readmissions));
            }
            for (tid, pc) in self.pcs.iter().enumerate() {
                if *pc != GhostPc::Done(true) {
                    return Some(format!("thread {tid} observed an unfilled frame"));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::explore;

    #[test]
    fn three_racing_fetchers_do_exactly_one_read() {
        let stats = explore(&LoadingFrame::correct(3)).unwrap_or_else(|v| {
            panic!("loading-frame protocol violated: {v}");
        });
        assert!(stats.schedules > 1, "exploration must branch");
    }

    #[test]
    fn four_fetchers_still_hold() {
        explore(&LoadingFrame::correct(4)).unwrap_or_else(|v| {
            panic!("loading-frame protocol violated at 4 threads: {v}");
        });
    }

    #[test]
    fn failed_read_wakes_every_waiter_with_a_zeroed_page() {
        // No deadlock, still exactly one read attempt, and every
        // thread completes observing the zeroed page.
        explore(&LoadingFrame::correct_with_failed_read(3)).unwrap_or_else(|v| {
            panic!("failed-read semantics violated: {v}");
        });
    }

    #[test]
    fn the_checker_catches_the_check_then_read_bug() {
        let v = explore(&LoadingFrame::buggy(2)).expect_err("double read must be found");
        assert!(v.message.contains("disk reads"), "{}", v.message);
        // And the counterexample replays.
        let mut m = LoadingFrame::buggy(2);
        for &tid in &v.schedule {
            m.step(tid);
        }
        assert!(m.invariant().is_some());
    }

    #[test]
    fn racing_fetchers_of_a_ghosted_page_cost_one_read() {
        let stats = explore(&GhostAdmission::correct(3)).unwrap_or_else(|v| {
            panic!("ghost-admission protocol violated: {v}");
        });
        assert!(stats.schedules > 1, "exploration must branch");
    }

    #[test]
    fn ghost_admission_holds_at_four_threads() {
        explore(&GhostAdmission::correct(4)).unwrap_or_else(|v| {
            panic!("ghost-admission protocol violated at 4 threads: {v}");
        });
    }

    #[test]
    fn the_checker_catches_the_stale_ghost_bug() {
        let v = explore(&GhostAdmission::stale_ghost_bug(2))
            .expect_err("ghosted-and-resident window must be found");
        assert!(
            v.message.contains("ghosted and resident"),
            "{}",
            v.message
        );
        // And the counterexample replays.
        let mut m = GhostAdmission::stale_ghost_bug(2);
        for &tid in &v.schedule {
            m.step(tid);
        }
        assert!(m.invariant().is_some());
    }
}
