//! netdir-analysis: `ndlint`, a workspace invariant linter, plus an
//! exhaustive-interleaving model of the buffer pool's loading-frame
//! protocol.
//!
//! PRs 1–7 accumulated invariants that previously existed only as
//! reviewer folklore. This crate makes them machine-checked:
//!
//! | lint                   | invariant                                              |
//! |------------------------|--------------------------------------------------------|
//! | `clock-discipline`     | all time flows through the injectable `obs::Clock`      |
//! | `wire-tag-freeze`      | wire tag constants match `compat/wire_tags.lock`        |
//! | `metric-name-registry` | every metric-name literal is registered in `obs::names` |
//! | `no-lock-across-io`    | no lock guard held across pager disk I/O                |
//! | `panic-path`           | no `unwrap`/`expect`/`panic!` reachable from `serve_conn` |
//!
//! Exceptions live in `compat/ndlint.allow`, one rationale per entry
//! (see [`allow`]). The dynamic side — things a lexical lint cannot see
//! — is covered by [`model`], which drives the loading-frame protocol
//! through *every* interleaving of racing cold fetchers.

pub mod allow;
pub mod interleave;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod parse;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::Allowlist;
use parse::SourceFile;

/// A lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint name (e.g. `clock-discipline`).
    pub lint: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Enclosing function, when known (used for allowlist matching).
    pub func: Option<String>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.lint, self.message
        )?;
        if let Some(func) = &self.func {
            write!(f, " (in fn {func})")?;
        }
        Ok(())
    }
}

/// Paths and roots the lints key on. The defaults describe this
/// repository; fixture tests override nothing — fixtures mirror the
/// same layout so the production configuration is what gets tested.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files where raw `Instant::now`/`thread::sleep` are the point.
    pub clock_sanctum: Vec<&'static str>,
    /// File holding the frozen wire tag constants.
    pub codec_file: &'static str,
    /// The committed tag lockfile, relative to the workspace root.
    pub tag_lock: &'static str,
    /// File registering all metric names.
    pub names_file: &'static str,
    /// Files whose lock-across-I/O behaviour is audited by hand (the
    /// loading-frame protocol; see `model`).
    pub lock_audited: Vec<&'static str>,
    /// Root functions for the panic-path reachability walk.
    pub panic_roots: Vec<&'static str>,
    /// Directory prefixes the panic-path walk is confined to.
    pub panic_scope: Vec<&'static str>,
    /// The allowlist file, relative to the workspace root.
    pub allow_file: &'static str,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            clock_sanctum: vec!["crates/obs/src/clock.rs"],
            codec_file: "crates/wire/src/codec.rs",
            tag_lock: "compat/wire_tags.lock",
            names_file: "crates/obs/src/names.rs",
            lock_audited: vec!["crates/pager/src/pool.rs"],
            panic_roots: vec!["serve_conn"],
            panic_scope: vec!["crates/wire/src/", "crates/server/src/"],
            allow_file: "compat/ndlint.allow",
        }
    }
}

/// The scanned workspace: every first-party `.rs` file, lexed and
/// structurally indexed.
pub struct Workspace {
    /// Absolute root.
    pub root: PathBuf,
    /// Files in sorted path order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Load all first-party sources under `root`: `crates/*/src/**/*.rs`
    /// and the top-level `src/` if present. `compat/` (vendored shims),
    /// `target/`, and per-crate `tests/`/`examples/`/`benches/` trees
    /// are out of scope: the invariants govern the product, and
    /// integration-test style is policed by review.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut krates: Vec<PathBuf> = fs::read_dir(&crates)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            krates.sort();
            for k in krates {
                collect_rs(&k.join("src"), root, &mut files)?;
            }
        }
        collect_rs(&root.join("src"), root, &mut files)?;
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Read a file relative to the workspace root.
    pub fn read_rel(&self, rel: &str) -> io::Result<String> {
        fs::read_to_string(self.root.join(rel))
    }

    /// The scanned file at `rel`, if in scope.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel)
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = fs::read_to_string(&p)?;
            out.push(SourceFile::parse(rel, &text));
        }
    }
    Ok(())
}

/// Everything one `ndlint` run produced.
pub struct Report {
    /// Violations that survived the allowlist, in path order.
    pub violations: Vec<Diagnostic>,
    /// Findings silenced by `compat/ndlint.allow`.
    pub allowed: usize,
    /// Allow-file entries that matched nothing (stale exceptions).
    pub unused_allows: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Did the run find anything actionable?
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run every lint over the workspace at `root`.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    let ws = Workspace::load(root)?;
    let allow_text = ws.read_rel(config.allow_file).unwrap_or_default();
    let (allowlist, allow_errors) = Allowlist::parse(&allow_text);

    let mut raw: Vec<Diagnostic> = Vec::new();
    for (line, msg) in allow_errors {
        raw.push(Diagnostic {
            lint: "allow-file",
            file: config.allow_file.to_string(),
            line,
            col: 1,
            func: None,
            message: msg,
        });
    }
    raw.extend(lints::clock::check(&ws, config));
    raw.extend(lints::wire_tags::check(&ws, config));
    raw.extend(lints::metrics::check(&ws, config));
    raw.extend(lints::locks::check(&ws, config));
    raw.extend(lints::panics::check(&ws, config));

    let mut violations = Vec::new();
    let mut allowed = 0usize;
    for d in raw {
        if allowlist.allows(d.lint, &d.file, d.func.as_deref()) {
            allowed += 1;
        } else {
            violations.push(d);
        }
    }
    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
    });
    let unused_allows = allowlist
        .unused()
        .iter()
        .map(|e| {
            format!(
                "{}:{}: unused allow entry ({} {} {})",
                config.allow_file, e.line, e.lint, e.path, e.func
            )
        })
        .collect();
    Ok(Report {
        violations,
        allowed,
        unused_allows,
        files_scanned: ws.files.len(),
    })
}
