//! The `compat/ndlint.allow` allowlist: parser and matcher.
//!
//! Format — one entry per line:
//!
//! ```text
//! # comment
//! <lint-name> <path> <fn|*> <rationale…>
//! ```
//!
//! * `lint-name` — one of the registered lint names (`clock-discipline`,
//!   `no-lock-across-io`, `panic-path`, `metric-name-registry`,
//!   `wire-tag-freeze`).
//! * `path` — matched against the diagnostic's workspace-relative path:
//!   a trailing `/` makes it a directory prefix, otherwise it must match
//!   the full path or a path suffix (so `disk.rs` and
//!   `crates/pager/src/disk.rs` both work).
//! * `fn` — the enclosing function name, or `*` for the whole file.
//! * `rationale` — required free text; entries without one are rejected
//!   so the file stays an *argued* exception list, not a mute button.
//!
//! Unused entries are reported at the end of a run (warning, not error)
//! so the list cannot silently outlive the code it excuses.

use std::cell::Cell;

/// One parsed allowlist entry.
#[derive(Debug)]
pub struct AllowEntry {
    /// Lint this entry silences.
    pub lint: String,
    /// Path pattern (suffix match, or prefix match with trailing `/`).
    pub path: String,
    /// Function name, or `*`.
    pub func: String,
    /// Why this exception is sound.
    pub rationale: String,
    /// Source line in the allow file (for diagnostics about the file).
    pub line: u32,
    used: Cell<bool>,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the allow-file text. Returns the list plus any format
    /// errors (`(line, message)`).
    pub fn parse(text: &str) -> (Allowlist, Vec<(u32, String)>) {
        let mut entries = Vec::new();
        let mut errors = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, char::is_whitespace);
            let lint = parts.next().unwrap_or("").to_string();
            let path = parts.next().unwrap_or("").to_string();
            let func = parts.next().unwrap_or("").to_string();
            let rationale = parts.next().unwrap_or("").trim().to_string();
            if path.is_empty() || func.is_empty() {
                errors.push((line_no, "expected `<lint> <path> <fn|*> <rationale>`".into()));
                continue;
            }
            if rationale.is_empty() {
                errors.push((line_no, format!("allow entry for `{lint}` has no rationale")));
                continue;
            }
            entries.push(AllowEntry {
                lint,
                path,
                func,
                rationale,
                line: line_no,
                used: Cell::new(false),
            });
        }
        (Allowlist { entries }, errors)
    }

    /// Does some entry silence `lint` at `file` inside `func`? Marks the
    /// matching entry used.
    pub fn allows(&self, lint: &str, file: &str, func: Option<&str>) -> bool {
        for e in &self.entries {
            if e.lint != lint {
                continue;
            }
            let path_hit = if let Some(dir) = e.path.strip_suffix('/') {
                file.starts_with(dir)
            } else {
                file == e.path
                    || file
                        .strip_suffix(e.path.as_str())
                        .is_some_and(|rest| rest.is_empty() || rest.ends_with('/'))
            };
            if !path_hit {
                continue;
            }
            if e.func != "*" && Some(e.func.as_str()) != func {
                continue;
            }
            e.used.set(true);
            return true;
        }
        false
    }

    /// Entries that never matched a diagnostic this run.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.used.get()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "\
# latency simulation is the point of this type
clock-discipline crates/pager/src/disk.rs * LatencyDisk models real device latency
panic-path cluster.rs router startup-only accessor, unreachable from serve_conn
clock-discipline crates/bench/ * measurement harness reads wall time by design
";

    #[test]
    fn parses_and_matches() {
        let (al, errs) = Allowlist::parse(FILE);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(al.entries.len(), 3);
        assert!(al.allows("clock-discipline", "crates/pager/src/disk.rs", Some("read_page")));
        assert!(!al.allows("clock-discipline", "crates/pager/src/pool.rs", None));
        // Suffix path match requires a path-component boundary.
        assert!(al.allows("panic-path", "crates/wire/src/cluster.rs", Some("router")));
        assert!(!al.allows("panic-path", "crates/wire/src/supercluster.rs", Some("router")));
        // fn must match when not `*`.
        assert!(!al.allows("panic-path", "crates/wire/src/cluster.rs", Some("other")));
        // Directory prefix.
        assert!(al.allows("clock-discipline", "crates/bench/src/report.rs", Some("x")));
    }

    #[test]
    fn rationale_is_mandatory() {
        let (al, errs) = Allowlist::parse("panic-path foo.rs *\n");
        assert_eq!(al.entries.len(), 0);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].1.contains("rationale"));
    }

    #[test]
    fn unused_entries_are_reported() {
        let (al, _) = Allowlist::parse(FILE);
        al.allows("panic-path", "crates/wire/src/cluster.rs", Some("router"));
        let unused: Vec<u32> = al.unused().iter().map(|e| e.line).collect();
        assert_eq!(unused, vec![2, 4]);
    }
}
