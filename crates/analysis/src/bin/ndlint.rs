//! `ndlint` — run the workspace invariant lints.
//!
//! ```text
//! ndlint [--root PATH] [--quiet]
//! ```
//!
//! Exits 0 when the tree is clean, 1 on violations, 2 on usage or I/O
//! errors. Diagnostics print as `file:line:col: lint: message`, one per
//! line, so editors and CI annotate them like compiler output. Unused
//! allowlist entries are reported as warnings (stale exceptions must
//! not outlive the code they excuse) but do not fail the run.

use std::path::PathBuf;
use std::process::ExitCode;

use netdir_analysis::{run, Config};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("ndlint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: ndlint [--root PATH] [--quiet]");
                println!();
                println!("Lints: clock-discipline, wire-tag-freeze, metric-name-registry,");
                println!("       no-lock-across-io, panic-path.");
                println!("Exceptions: compat/ndlint.allow (one rationale per entry).");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ndlint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if !root.join("crates").is_dir() {
        eprintln!(
            "ndlint: {} does not look like the workspace root (no crates/ directory)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = match run(&root, &Config::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ndlint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.violations {
        println!("{d}");
    }
    for w in &report.unused_allows {
        eprintln!("warning: {w}");
    }
    if !quiet {
        eprintln!(
            "ndlint: {} file(s) scanned, {} violation(s), {} allowlisted",
            report.files_scanned,
            report.violations.len(),
            report.allowed
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
