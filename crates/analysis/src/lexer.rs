//! A small self-contained Rust lexer.
//!
//! The build environment has no crates.io access, so `ndlint` cannot use
//! `syn`; the lints in this crate only need a faithful *token* view of
//! the source — identifiers, punctuation, and literals with comments and
//! strings correctly skipped — plus line/column spans for diagnostics.
//! That is exactly what this lexer produces. It understands everything
//! that trips up naive `grep`-style scanning: nested block comments,
//! escaped and raw (`r#"…"#`) strings, byte strings, char literals vs
//! lifetimes, and doc comments.
//!
//! It does **not** attempt full parsing; the structural pass in
//! [`crate::parse`] layers item/block recognition on top of these
//! tokens.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Instant`, `read_page`, …).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`). The
    /// token text is the *decoded-enough* content for plain strings
    /// (escapes left as written) and the raw content for raw strings,
    /// without the surrounding quotes/hashes.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `0x8`, `1_000u64`, `2.5e3`).
    Num,
    /// A single punctuation character (`:`, `{`, `!`, …). Multi-char
    /// operators appear as consecutive single-char tokens, which is all
    /// the pattern matching here needs (`::` is `:` `:`).
    Punct,
}

/// One lexed token with its source position (1-based line/column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for literal conventions).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in bytes).
    pub col: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Does the identifier just lexed introduce a string/char literal
/// (`r"…"`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"`)? Returns the number of
/// leading `#` for raw strings, or `None` if it is a plain identifier.
fn string_prefix(ident: &str, cur: &Cursor<'_>) -> Option<(bool, bool)> {
    // (is_raw, is_char): raw strings consume `#…"`, char-likes consume `'`.
    let raw = matches!(ident, "r" | "br" | "cr");
    let plain = matches!(ident, "b" | "c");
    if raw {
        match cur.peek(0) {
            Some(b'"') | Some(b'#') => Some((true, false)),
            _ => None,
        }
    } else if plain {
        match cur.peek(0) {
            Some(b'"') => Some((false, false)),
            Some(b'\'') if ident == "b" => Some((false, true)),
            _ => None,
        }
    } else {
        None
    }
}

/// Lex `src` into tokens, skipping whitespace and comments.
///
/// The lexer is deliberately forgiving: malformed input (an unterminated
/// string at EOF, say) yields the tokens seen so far rather than an
/// error — a linter should degrade to fewer findings, not crash, and the
/// compiler is the authority on well-formedness.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                let text = lex_plain_string(&mut cur);
                out.push(Token { kind: TokKind::Str, text, line, col });
            }
            b'\'' => {
                if let Some(tok) = lex_char_or_lifetime(&mut cur, line, col) {
                    out.push(tok);
                }
            }
            b if is_ident_start(b) => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b'_') as char);
                }
                match string_prefix(&text, &cur) {
                    Some((true, _)) => {
                        let body = lex_raw_string(&mut cur);
                        out.push(Token { kind: TokKind::Str, text: body, line, col });
                    }
                    Some((false, false)) => {
                        let body = lex_plain_string(&mut cur);
                        out.push(Token { kind: TokKind::Str, text: body, line, col });
                    }
                    Some((false, true)) => {
                        // b'x' — consume the quote then the char body.
                        if let Some(tok) = lex_char_or_lifetime(&mut cur, line, col) {
                            out.push(Token { kind: TokKind::Char, ..tok });
                        }
                    }
                    None => out.push(Token { kind: TokKind::Ident, text, line, col }),
                }
            }
            b if b.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    // Good enough for tag values and spans: digits, hex
                    // letters, `_`, `.`, exponent signs after e/E.
                    let take = c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'.' && cur.peek(1).is_some_and(|n| n.is_ascii_digit()))
                        || ((c == b'+' || c == b'-')
                            && text.as_bytes().last().is_some_and(|l| *l == b'e' || *l == b'E'));
                    if !take {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b'0') as char);
                }
                out.push(Token { kind: TokKind::Num, text, line, col });
            }
            other => {
                cur.bump();
                out.push(Token {
                    kind: TokKind::Punct,
                    text: (other as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Consume a `"…"` string (opening quote under the cursor). Returns the
/// body with escapes left as written.
fn lex_plain_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening quote
    let mut body = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => {
                cur.bump();
                if let Some(esc) = cur.bump() {
                    body.push('\\');
                    body.push(esc as char);
                }
            }
            b'"' => {
                cur.bump();
                break;
            }
            _ => {
                if let Some(c) = cur.bump() {
                    body.push(c as char);
                }
            }
        }
    }
    body
}

/// Consume a raw string: cursor sits on `#…"` or `"`. Returns the body.
fn lex_raw_string(cur: &mut Cursor<'_>) -> String {
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        cur.bump();
        hashes += 1;
    }
    cur.bump(); // opening quote
    let mut body = String::new();
    'outer: while let Some(c) = cur.peek(0) {
        if c == b'"' {
            // A quote ends the literal iff followed by `hashes` hashes.
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek(1 + i) != Some(b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.bump();
                for _ in 0..hashes {
                    cur.bump();
                }
                break 'outer;
            }
        }
        if let Some(c) = cur.bump() {
            body.push(c as char);
        }
    }
    body
}

/// Cursor sits on `'`. Distinguish a char literal (`'x'`, `'\n'`) from a
/// lifetime (`'a`, `'static`). Returns `None` for a stray quote at EOF.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>, line: u32, col: u32) -> Option<Token> {
    cur.bump(); // the quote
    match cur.peek(0)? {
        b'\\' => {
            // Escaped char literal: consume `\x`…`'`.
            let mut text = String::new();
            cur.bump();
            while let Some(c) = cur.peek(0) {
                if c == b'\'' {
                    cur.bump();
                    break;
                }
                text.push(cur.bump()? as char);
            }
            Some(Token { kind: TokKind::Char, text, line, col })
        }
        c if is_ident_start(c) => {
            // Could be 'a' (char) or 'a / 'static (lifetime): a closing
            // quote right after one ident char means char literal.
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(cur.bump()? as char);
            }
            if cur.peek(0) == Some(b'\'') && text.chars().count() == 1 {
                cur.bump();
                Some(Token { kind: TokKind::Char, text, line, col })
            } else {
                Some(Token { kind: TokKind::Lifetime, text, line, col })
            }
        }
        _ => {
            // 'x' where x is punctuation/digit: consume to closing quote.
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if c == b'\'' {
                    cur.bump();
                    break;
                }
                text.push(cur.bump()? as char);
            }
            Some(Token { kind: TokKind::Char, text, line, col })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens_for_their_content() {
        let toks = kinds(
            r#"
            // Instant::now in a comment
            /* thread::sleep /* nested */ still comment */
            let s = "Instant::now()"; // and in a string
            "#,
        );
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("Instant")));
    }

    #[test]
    fn raw_and_byte_strings_lex_as_one_literal() {
        let toks = kinds(r##"let a = r#"quote " inside"#; let b = b"bytes"; let c = br#"x"#;"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec!["quote \" inside", "bytes", "x"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_and_puncts_survive() {
        let toks = kinds("const T: u8 = 0x2A; let f = 1_000.5e-3;");
        assert!(toks.contains(&(TokKind::Num, "0x2A".into())));
        assert!(toks.contains(&(TokKind::Num, "1_000.5e-3".into())));
        assert!(toks.contains(&(TokKind::Punct, ";".into())));
    }
}
