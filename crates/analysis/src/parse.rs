//! Structural pass over lexed tokens: brace depths, `#[cfg(test)]` /
//! `#[test]` ranges, and function items with body spans.
//!
//! This is deliberately *approximate* parsing — enough structure for the
//! lints (which code is test-only, which function encloses a finding,
//! where a `let` binding's block scope ends) without a grammar. The
//! compiler remains the authority on syntax; this pass only has to be
//! right about brace matching and attribute placement, which the token
//! stream makes unambiguous.

use crate::lexer::{lex, TokKind, Token};

/// A function item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name (last path segment only).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's `{` (body tokens are `(body_open,
    /// body_close)` exclusive).
    pub body_open: usize,
    /// Token index of the matching `}`.
    pub body_close: usize,
    /// Inside `#[cfg(test)]` / `#[test]` code?
    pub is_test: bool,
}

/// One lexed + structurally-indexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Brace depth *before* each token (`{` itself sits at the outer
    /// depth; its contents are one deeper).
    pub depth: Vec<u32>,
    /// Token-index ranges (inclusive start, inclusive end) of test-only
    /// items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Function items in source order.
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// Lex and index `text` as `rel_path`.
    pub fn parse(rel_path: impl Into<String>, text: &str) -> SourceFile {
        let tokens = lex(text);
        let depth = depths(&tokens);
        let test_ranges = find_test_ranges(&tokens, &depth);
        let fns = find_fns(&tokens, &depth, &test_ranges);
        SourceFile {
            rel_path: rel_path.into(),
            tokens,
            depth,
            test_ranges,
            fns,
        }
    }

    /// Is token `i` inside test-only code?
    pub fn is_test_tok(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// The innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| i >= f.body_open && i <= f.body_close)
            .min_by_key(|f| f.body_close - f.body_open)
    }
}

fn depths(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut d: u32 = 0;
    for t in tokens {
        if t.is_punct('}') {
            d = d.saturating_sub(1);
        }
        out.push(d);
        if t.is_punct('{') {
            d += 1;
        }
    }
    out
}

/// Token index of the `}` matching the `{` at `open` (which must index a
/// `{` token). Falls back to the last token on malformed input.
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Find `#[…test…]`-attributed items and return their token ranges.
///
/// An attribute whose bracket group contains the identifier `test`
/// (covers `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, unix))]`) marks
/// the next item; the item's range runs from the attribute to the `}`
/// closing its block, or to the terminating `;` for block-less items.
fn find_test_ranges(tokens: &[Token], _depth: &[u32]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Scan the attribute's bracket group.
        let mut j = i + 1;
        let mut brackets = 0i64;
        let mut has_test = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('[') {
                brackets += 1;
            } else if t.is_punct(']') {
                brackets -= 1;
                if brackets == 0 {
                    break;
                }
            } else if t.is_ident("test") {
                has_test = true;
            }
            j += 1;
        }
        if !has_test {
            i = j + 1;
            continue;
        }
        // The item this attribute decorates: skip further attributes,
        // then run to its block's `}` (or `;` if block-less).
        let mut k = j + 1;
        while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
            let mut b = 0i64;
            while k < tokens.len() {
                if tokens[k].is_punct('[') {
                    b += 1;
                } else if tokens[k].is_punct(']') {
                    b -= 1;
                    if b == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut end = k;
        while end < tokens.len() {
            let t = &tokens[end];
            if t.is_punct('{') {
                end = matching_brace(tokens, end);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            end += 1;
        }
        ranges.push((i, end.min(tokens.len().saturating_sub(1))));
        i = end + 1;
    }
    ranges
}

fn find_fns(tokens: &[Token], _depth: &[u32], test_ranges: &[(usize, usize)]) -> Vec<FnItem> {
    let in_test =
        |i: usize| test_ranges.iter().any(|&(s, e)| i >= s && i <= e);
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // An `fn` keyword followed by a name is a function item (fn
        // pointers/`Fn` bounds never put an identifier right after `fn`).
        let is_item = tokens[i].is_ident("fn")
            && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident);
        if !is_item {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        let line = tokens[i].line;
        // Find the body `{`: the first brace outside parens/brackets.
        // A `;` there instead means a body-less trait declaration.
        let mut j = i + 2;
        let mut nest = 0i64;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                nest += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                nest -= 1;
            } else if nest == 0 && t.is_punct('{') {
                open = Some(j);
                break;
            } else if nest == 0 && t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let close = matching_brace(tokens, open);
        out.push(FnItem {
            name,
            line,
            body_open: open,
            body_close: close,
            is_test: in_test(i),
        });
        // Continue *inside* the body too: nested fns are items as well.
        i = open + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        pub fn outer(x: u8) -> u8 {
            let y = x + 1;
            fn nested() {}
            y
        }

        trait T {
            fn decl_only(&self);
            fn with_default(&self) {}
        }

        #[cfg(test)]
        mod tests {
            #[test]
            fn a_test() { assert!(true); }
        }
    "#;

    #[test]
    fn fns_are_found_with_bodies() {
        let f = SourceFile::parse("x.rs", SRC);
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "nested", "with_default", "a_test"]);
        let outer = &f.fns[0];
        assert!(outer.body_close > outer.body_open);
        assert!(!outer.is_test);
    }

    #[test]
    fn test_mod_contents_are_marked() {
        let f = SourceFile::parse("x.rs", SRC);
        let a_test = f.fns.iter().find(|x| x.name == "a_test").unwrap();
        assert!(a_test.is_test, "#[cfg(test)] mod contents are test code");
        assert!(f.is_test_tok(a_test.body_open));
        let outer = f.fns.iter().find(|x| x.name == "outer").unwrap();
        assert!(!f.is_test_tok(outer.body_open));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let f = SourceFile::parse("x.rs", SRC);
        let nested = f.fns.iter().find(|x| x.name == "nested").unwrap();
        let inner_idx = nested.body_open;
        assert_eq!(f.enclosing_fn(inner_idx).unwrap().name, "nested");
    }

    #[test]
    fn cfg_test_without_block_does_not_swallow_the_file() {
        let f = SourceFile::parse(
            "x.rs",
            "#[cfg(test)]\nuse foo::bar;\nfn real() { body(); }",
        );
        let real = f.fns.iter().find(|x| x.name == "real").unwrap();
        assert!(!real.is_test);
    }
}
