//! The five project lints. Each submodule exposes
//! `check(&Workspace, &Config) -> Vec<Diagnostic>`; orchestration and
//! allowlist filtering live in [`crate::run`].

pub mod clock;
pub mod locks;
pub mod metrics;
pub mod panics;
pub mod wire_tags;

use crate::lexer::Token;

/// Does the token sequence starting at `i` spell `path` (identifiers
/// joined by `::`)? E.g. `seq_at(toks, i, &["Instant", "now"])` matches
/// `Instant::now`.
pub(crate) fn path_at(tokens: &[Token], i: usize, segs: &[&str]) -> bool {
    let mut j = i;
    for (n, seg) in segs.iter().enumerate() {
        if n > 0 {
            if !(tokens.get(j).is_some_and(|t| t.is_punct(':'))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            j += 2;
        }
        if !tokens.get(j).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        j += 1;
    }
    true
}

/// Is token `i` an identifier called as a function/method — i.e.
/// immediately followed by `(`?
pub(crate) fn is_call(tokens: &[Token], i: usize) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Is the call at `i` argument-free — `ident()` with nothing between
/// the parens? Distinguishes `guard.write()` (lock acquisition) from
/// `io::Write::write(buf)`.
pub(crate) fn is_nullary_call(tokens: &[Token], i: usize) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(')'))
}

/// Parse an integer literal token (`42`, `0x1f`, `1_000`), ignoring a
/// type suffix.
pub(crate) fn parse_int(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(hex) = t.strip_prefix("0x") {
        (hex, 16)
    } else if let Some(oct) = t.strip_prefix("0o") {
        (oct, 8)
    } else if let Some(bin) = t.strip_prefix("0b") {
        (bin, 2)
    } else {
        (t.as_str(), 10)
    };
    let digits = digits
        .find(|c: char| !c.is_digit(radix))
        .map_or(digits, |end| &digits[..end]);
    u64::from_str_radix(digits, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn path_matching() {
        let toks = lex("std::time::Instant::now()");
        assert!(path_at(&toks, 0, &["std", "time", "Instant", "now"]));
        assert!(path_at(&toks, 6, &["Instant", "now"]));
        assert!(!path_at(&toks, 6, &["Instant", "elapsed"]));
    }

    #[test]
    fn nullary_detection() {
        let toks = lex("a.write() b.write(buf)");
        let w1 = toks.iter().position(|t| t.is_ident("write")).unwrap();
        assert!(is_nullary_call(&toks, w1));
        let w2 = toks.iter().rposition(|t| t.is_ident("write")).unwrap();
        assert!(is_call(&toks, w2));
        assert!(!is_nullary_call(&toks, w2));
    }

    #[test]
    fn int_parsing() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("0x1f"), Some(31));
        assert_eq!(parse_int("1_000u64"), Some(1000));
    }
}
