//! `panic-path`: no `unwrap`/`expect`/`panic!` in code reachable from
//! the request-serving entry points (`serve_conn`) in `crates/wire` /
//! `crates/server`. The PR-6 `catch_unwind` containment is a backstop
//! against *bugs*, not a license to panic on malformed input — a panic
//! on the serve path still tears down the connection and poisons any
//! held locks.
//!
//! Reachability is a name-based over-approximation: an identifier
//! called as `name(…)` inside a scanned function body is an edge to
//! every in-scope function of that name (method receivers are not
//! type-resolved). Over-approximation is the right failure mode for a
//! gate — a false edge adds an allowlist entry with a written
//! rationale; a missed edge would hide a real panic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::TokKind;
use crate::lints::is_call;
use crate::{Config, Diagnostic, Workspace};

/// Lint name.
pub const NAME: &str = "panic-path";

struct FnRef<'a> {
    file: usize,
    fn_idx: usize,
    name: &'a str,
}

/// Run the lint.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Diagnostic> {
    // Collect non-test functions in the serve-path crates.
    let mut fns: Vec<FnRef<'_>> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !config.panic_scope.iter().any(|p| file.rel_path.starts_with(p)) {
            continue;
        }
        for (gi, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push(fns.len());
            fns.push(FnRef {
                file: fi,
                fn_idx: gi,
                name: &f.name,
            });
        }
    }

    // BFS from the roots, remembering one call path per function for
    // the diagnostic.
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut via: BTreeMap<usize, String> = BTreeMap::new();
    for root in &config.panic_roots {
        for &idx in by_name.get(*root).into_iter().flatten() {
            via.entry(idx).or_insert_with(|| (*root).to_string());
            queue.push_back(idx);
        }
    }
    let mut seen: BTreeSet<usize> = queue.iter().copied().collect();
    while let Some(idx) = queue.pop_front() {
        let fr = &fns[idx];
        let file = &ws.files[fr.file];
        let body = &file.fns[fr.fn_idx];
        let path_here = via[&idx].clone();
        for i in body.body_open + 1..body.body_close {
            let t = &file.tokens[i];
            if t.kind != TokKind::Ident || !is_call(&file.tokens, i) {
                continue;
            }
            for &callee in by_name.get(t.text.as_str()).into_iter().flatten() {
                if seen.insert(callee) {
                    via.insert(callee, format!("{path_here} -> {}", fns[callee].name));
                    queue.push_back(callee);
                }
            }
        }
    }

    // Scan every reachable body for panic sites.
    let mut out = Vec::new();
    for (&idx, path) in &via {
        let fr = &fns[idx];
        let file = &ws.files[fr.file];
        let body = &file.fns[fr.fn_idx];
        for i in body.body_open + 1..body.body_close {
            let toks = &file.tokens;
            let t = &toks[i];
            if t.kind != TokKind::Ident || file.is_test_tok(i) {
                continue;
            }
            let site = if (t.text == "unwrap" || t.text == "expect") && is_call(toks, i) {
                Some(format!(".{}()", t.text))
            } else if t.text == "panic" && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                Some("panic!".to_string())
            } else {
                None
            };
            if let Some(site) = site {
                out.push(Diagnostic {
                    lint: NAME,
                    file: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    func: Some(fr.name.to_string()),
                    message: format!(
                        "{site} reachable from request handling (via {path}); return a wire error instead"
                    ),
                });
            }
        }
    }
    out
}
