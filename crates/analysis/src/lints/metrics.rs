//! `metric-name-registry`: every metric-name string literal in the
//! workspace must correspond to a constant registered in
//! `crates/obs/src/names.rs`. Catches three failure modes: a typo'd
//! name in an assertion or dashboard probe (never matches, silently
//! green), two constants registering the same name (double counting),
//! and an orphaned registration nothing references (dead weight in the
//! exporter). Histogram series legitimately expose `_count`/`_sum`
//! variants of a registered base name.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::{Config, Diagnostic, Workspace};

/// Lint name.
pub const NAME: &str = "metric-name-registry";

// Written as `concat!` so the assembled prefix never appears as a
// literal in this (scanned) file.
const PREFIX: &str = concat!("netdir", "_");

struct Registry {
    /// const ident -> (metric name, line).
    consts: BTreeMap<String, (String, u32)>,
    /// idents listed in `TRACKED`.
    tracked: BTreeSet<String>,
}

fn parse_registry(ws: &Workspace, config: &Config) -> Option<Registry> {
    let file = ws.file(config.names_file)?;
    let toks = &file.tokens;
    let mut consts = BTreeMap::new();
    let mut tracked = BTreeSet::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("const") || file.is_test_tok(i) {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        if name_tok.text == "TRACKED" {
            // const TRACKED: &[&str] = &[A, B, …];
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('=') {
                j += 1;
            }
            while j < toks.len() && !toks[j].is_punct(';') {
                if toks[j].kind == TokKind::Ident {
                    tracked.insert(toks[j].text.clone());
                }
                j += 1;
            }
            continue;
        }
        // const NAME: &str = "netdir_…";
        let val = toks
            .iter()
            .skip(i + 2)
            .take(8)
            .skip_while(|t| !t.is_punct('='))
            .nth(1)
            .filter(|t| t.kind == TokKind::Str && t.text.starts_with(PREFIX));
        if let Some(v) = val {
            consts.insert(name_tok.text.clone(), (v.text.clone(), name_tok.line));
        }
    }
    Some(Registry { consts, tracked })
}

/// Words (maximal `[A-Za-z0-9_]+` runs) inside a string literal — a
/// literal may embed a name in expected-output text like
/// `"netdir_queries_total 10"`.
fn words(s: &str) -> impl Iterator<Item = &str> {
    s.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
}

/// Run the lint.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Diagnostic> {
    let Some(reg) = parse_registry(ws, config) else {
        return Vec::new();
    };
    let mut out = Vec::new();

    // Duplicate registrations.
    let mut by_value: BTreeMap<&str, Vec<(&str, u32)>> = BTreeMap::new();
    for (ident, (value, line)) in &reg.consts {
        by_value.entry(value).or_default().push((ident, *line));
    }
    for (value, idents) in &by_value {
        if idents.len() > 1 {
            let names: Vec<&str> = idents.iter().map(|(i, _)| *i).collect();
            out.push(Diagnostic {
                lint: NAME,
                file: config.names_file.to_string(),
                line: idents[1].1,
                col: 1,
                func: None,
                message: format!("{value:?} registered more than once: {}", names.join(", ")),
            });
        }
    }

    // Orphaned registrations: not in TRACKED and the const is never
    // referenced outside the registry file.
    let referenced: BTreeSet<&str> = ws
        .files
        .iter()
        .filter(|f| f.rel_path != config.names_file)
        .flat_map(|f| f.tokens.iter())
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .filter(|t| reg.consts.contains_key(*t))
        .collect();
    for (ident, (value, line)) in &reg.consts {
        if !reg.tracked.contains(ident) && !referenced.contains(ident.as_str()) {
            out.push(Diagnostic {
                lint: NAME,
                file: config.names_file.to_string(),
                line: *line,
                col: 1,
                func: None,
                message: format!(
                    "orphaned registration: {ident} ({value:?}) is neither in TRACKED nor referenced anywhere"
                ),
            });
        }
    }

    // Every metric-name word in every other file's string literals must
    // resolve to a registered name (or a histogram _count/_sum series).
    // Test code is deliberately *included*: a typo'd name in an
    // assertion matches nothing and passes vacuously — exactly the bug
    // this lint exists to catch.
    let known: BTreeSet<&str> = reg.consts.values().map(|(v, _)| v.as_str()).collect();
    let resolves = |w: &str| {
        known.contains(w)
            || w.strip_suffix("_count").is_some_and(|b| known.contains(b))
            || w.strip_suffix("_sum").is_some_and(|b| known.contains(b))
    };
    for file in &ws.files {
        if file.rel_path == config.names_file {
            continue;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind != TokKind::Str || !t.text.contains(PREFIX) {
                continue;
            }
            for w in words(&t.text) {
                if w.starts_with(PREFIX) && !resolves(w) {
                    out.push(Diagnostic {
                        lint: NAME,
                        file: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        func: file.enclosing_fn(i).map(|f| f.name.clone()),
                        message: format!(
                            "{w:?} is not a registered metric name (see {})",
                            config.names_file
                        ),
                    });
                }
            }
        }
    }
    out
}
