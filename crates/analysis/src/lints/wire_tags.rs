//! `wire-tag-freeze`: the on-wire frame/response/filter tag constants
//! in `crates/wire/src/codec.rs` are append-only. Their values are
//! frozen in `compat/wire_tags.lock`; renumbering or deleting a tag is
//! an error (old clients would misparse every frame), and a new tag
//! must land with a lockfile update in the same diff so the freeze is
//! an explicit, reviewed act.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::lints::parse_int;
use crate::{Config, Diagnostic, Workspace};

/// Lint name.
pub const NAME: &str = "wire-tag-freeze";

/// Tag-constant name prefixes that make up the frozen namespace.
pub const FAMILIES: &[&str] = &["REQ_", "RESP_", "AF_", "CF_"];

/// Extract `const NAME: u8 = N;` tag constants from the codec file's
/// non-test code. Public so the `netdir-wire` round-trip test and the
/// lint share one extraction.
pub fn extract_tags(ws: &Workspace, config: &Config) -> Option<BTreeMap<String, u64>> {
    let file = ws.file(config.codec_file)?;
    let toks = &file.tokens;
    let mut tags = BTreeMap::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("const") || file.is_test_tok(i) {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident
            || !FAMILIES.iter().any(|f| name_tok.text.starts_with(f))
        {
            continue;
        }
        // const NAME : u8 = <num> ;
        let val = toks
            .iter()
            .skip(i + 2)
            .take(8)
            .skip_while(|t| !t.is_punct('='))
            .nth(1)
            .filter(|t| t.kind == TokKind::Num)
            .and_then(|t| parse_int(&t.text));
        if let Some(v) = val {
            tags.insert(name_tok.text.clone(), v);
        }
    }
    Some(tags)
}

/// Parse `NAME = N` lines from lockfile text (`#` comments allowed).
pub fn parse_lock(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, val)) = line.split_once('=') else {
            return Err(format!("line {}: expected `NAME = value`", idx + 1));
        };
        let name = name.trim().to_string();
        let Some(v) = parse_int(val.trim()) else {
            return Err(format!("line {}: bad value {:?}", idx + 1, val.trim()));
        };
        if out.insert(name.clone(), v).is_some() {
            return Err(format!("line {}: duplicate entry {name}", idx + 1));
        }
    }
    Ok(out)
}

/// Run the lint.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Diagnostic> {
    // No codec file in this tree (e.g. a fixture for a different lint):
    // nothing to freeze.
    let Some(tags) = extract_tags(ws, config) else {
        return Vec::new();
    };
    let here = |line: u32, message: String| Diagnostic {
        lint: NAME,
        file: config.codec_file.to_string(),
        line,
        col: 1,
        func: None,
        message,
    };
    let line_of = |name: &str| {
        ws.file(config.codec_file)
            .and_then(|f| {
                f.tokens
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && t.text == name)
                    .map(|t| t.line)
            })
            .unwrap_or(1)
    };

    let mut out = Vec::new();
    let lock_text = match ws.read_rel(config.tag_lock) {
        Ok(t) => t,
        Err(_) => {
            out.push(Diagnostic {
                lint: NAME,
                file: config.tag_lock.to_string(),
                line: 1,
                col: 1,
                func: None,
                message: format!(
                    "lockfile {} is missing; regenerate it from the codec tags",
                    config.tag_lock
                ),
            });
            return out;
        }
    };
    let lock = match parse_lock(&lock_text) {
        Ok(l) => l,
        Err(e) => {
            out.push(Diagnostic {
                lint: NAME,
                file: config.tag_lock.to_string(),
                line: 1,
                col: 1,
                func: None,
                message: format!("unparseable lockfile: {e}"),
            });
            return out;
        }
    };

    for (name, locked) in &lock {
        match tags.get(name) {
            None => out.push(here(
                1,
                format!("tag {name} (= {locked}) was deleted; wire tags are append-only"),
            )),
            Some(actual) if actual != locked => out.push(here(
                line_of(name),
                format!("tag {name} renumbered: lockfile says {locked}, code says {actual}"),
            )),
            Some(_) => {}
        }
    }
    for (name, actual) in &tags {
        if !lock.contains_key(name) {
            out.push(here(
                line_of(name),
                format!(
                    "new tag {name} (= {actual}) is not in {}; append it with the same value",
                    config.tag_lock
                ),
            ));
        }
    }
    // Two live tags in one family sharing a value would make decode
    // ambiguous regardless of what the lockfile says.
    for fam in FAMILIES {
        let mut by_val: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for (name, v) in &tags {
            if name.starts_with(fam) {
                by_val.entry(*v).or_default().push(name);
            }
        }
        for (v, names) in by_val {
            if names.len() > 1 {
                out.push(here(
                    line_of(names[1]),
                    format!("duplicate tag value {v} in family {fam}: {}", names.join(", ")),
                ));
            }
        }
    }
    out
}
