//! `no-lock-across-io`: a lock guard bound with `let` must not stay
//! live across a pager disk call (`read_page`/`write_page`). Holding a
//! pool or table lock through device latency serializes every other
//! thread behind one I/O — the exact pathology the buffer pool's
//! loading-frame protocol exists to avoid (PR 5). The pool itself
//! (`crates/pager/src/pool.rs`) is the audited implementation of that
//! protocol and is excluded here; its concurrency story is checked
//! dynamically by the interleaving model instead.

use crate::lexer::TokKind;
use crate::lints::{is_call, is_nullary_call};
use crate::parse::SourceFile;
use crate::{Config, Diagnostic, Workspace};

/// Lint name.
pub const NAME: &str = "no-lock-across-io";

/// Guard-producing methods: `m.lock()`, `rw.read()`, `rw.write()` —
/// nullary calls only, so `io::Write::write(buf)` stays out.
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Disk-touching calls a guard must not span.
const IO_CALLS: &[&str] = &["read_page", "write_page"];

/// Run the lint.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if config.lock_audited.iter().any(|s| file.rel_path == *s) {
            continue;
        }
        check_file(file, &mut out);
    }
    out
}

fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        // `.lock()` / `.read()` / `.write()` with zero arguments.
        let is_guard_call = toks[i].kind == TokKind::Ident
            && GUARD_METHODS.iter().any(|m| toks[i].text == *m)
            && i > 0
            && toks[i - 1].is_punct('.')
            && is_nullary_call(toks, i);
        if !is_guard_call || file.is_test_tok(i) {
            continue;
        }
        // The guard must be bound with `let` to outlive its statement;
        // a temporary (`m.lock().foo()`) dies at the `;` and cannot
        // span anything.
        let Some((guard_name, let_idx)) = binding_of(file, i) else {
            continue;
        };
        // Guard scope: to the end of the binding's enclosing block, or
        // an explicit `drop(guard)`, whichever comes first.
        let depth = file.depth[let_idx];
        let mut j = i + 1;
        while j < toks.len() && file.depth[j] >= depth {
            if toks[j].is_ident("drop")
                && is_call(toks, j)
                && toks.get(j + 2).is_some_and(|t| t.is_ident(&guard_name))
            {
                break;
            }
            if toks[j].kind == TokKind::Ident
                && IO_CALLS.iter().any(|c| toks[j].text == *c)
                && is_call(toks, j)
            {
                let t = &toks[j];
                out.push(Diagnostic {
                    lint: NAME,
                    file: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    func: file.enclosing_fn(j).map(|f| f.name.clone()),
                    message: format!(
                        "disk call {}() while lock guard `{}` (bound at line {}) is still held",
                        t.text, guard_name, toks[let_idx].line
                    ),
                });
            }
            j += 1;
        }
    }
}

/// If the guard call at `i` is the initializer of a `let` statement,
/// return the bound name and the `let` token's index.
fn binding_of(file: &SourceFile, i: usize) -> Option<(String, usize)> {
    let toks = &file.tokens;
    // Walk back to the start of the statement.
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    let name_tok = toks.get(k)?;
    if name_tok.kind != TokKind::Ident || name_tok.text == "_" {
        return None;
    }
    Some((name_tok.text.clone(), j))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    #[test]
    fn guard_spanning_io_fires() {
        let d = diags(
            "fn f(m: M, d: D) { let g = m.lock(); d.read_page(0); g.touch(); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("read_page"));
        assert!(d[0].message.contains('g'));
    }

    #[test]
    fn dropped_guard_is_fine() {
        let d = diags(
            "fn f(m: M, d: D) { let g = m.lock(); drop(g); d.read_page(0); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scoped_guard_is_fine() {
        let d = diags(
            "fn f(m: M, d: D) { { let g = m.lock(); g.touch(); } d.write_page(0, b); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn temporaries_and_io_write_do_not_count() {
        let d = diags(
            "fn f(m: M, w: W, d: D) { m.lock().bump(); let n = w.write(buf); d.read_page(n); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
