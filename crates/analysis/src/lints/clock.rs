//! `clock-discipline`: all time must flow through the injectable
//! `obs::Clock` (PR 4). Raw `Instant::now()`, `SystemTime::now()`, and
//! `thread::sleep` are forbidden outside `crates/obs/src/clock.rs`
//! (where the trait's real implementations live) and test code. Code
//! that is genuinely wall-clock-bound — latency simulation, benchmark
//! harnesses — earns an allowlist entry with a rationale instead.

use crate::lints::path_at;
use crate::{Config, Diagnostic, Workspace};

/// Lint name.
pub const NAME: &str = "clock-discipline";

/// Run the lint.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if config.clock_sanctum.iter().any(|s| file.rel_path == *s) {
            continue;
        }
        for i in 0..file.tokens.len() {
            let hit = if path_at(&file.tokens, i, &["Instant", "now"]) {
                Some("Instant::now()")
            } else if path_at(&file.tokens, i, &["SystemTime", "now"]) {
                Some("SystemTime::now()")
            } else if path_at(&file.tokens, i, &["thread", "sleep"]) {
                Some("thread::sleep")
            } else {
                None
            };
            let Some(what) = hit else { continue };
            if file.is_test_tok(i) {
                continue;
            }
            let t = &file.tokens[i];
            out.push(Diagnostic {
                lint: NAME,
                file: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                func: file.enclosing_fn(i).map(|f| f.name.clone()),
                message: format!(
                    "raw {what}; inject obs::Clock (or add a rationale to the allowlist)"
                ),
            });
        }
    }
    out
}
