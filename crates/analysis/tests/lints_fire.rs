//! Each lint must fire on its committed bad fixture (through both the
//! library and the `ndlint` binary's exit code) and the full run must
//! be silent on the real workspace.
//!
//! Fixtures live under `tests/fixtures/<name>/` and mirror the real
//! workspace layout (`crates/*/src`, `compat/`), so the *production*
//! configuration — not a test-only one — is what gets exercised.

use std::path::PathBuf;
use std::process::Command;

use netdir_analysis::{run, Config, Report};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn report_for(name: &str) -> Report {
    run(&fixture(name), &Config::default()).expect("fixture scan")
}

/// Diagnostics of one lint, as display strings.
fn of(report: &Report, lint: &str) -> Vec<String> {
    report
        .violations
        .iter()
        .filter(|d| d.lint == lint)
        .map(|d| d.to_string())
        .collect()
}

fn ndlint_exit(root: &PathBuf) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_ndlint"))
        .arg("--root")
        .arg(root)
        .arg("--quiet")
        .output()
        .expect("run ndlint")
        .status
        .code()
        .expect("exit code")
}

#[test]
fn clock_fixture_fires_outside_tests_only() {
    let report = report_for("clock_bad");
    let hits = of(&report, "clock-discipline");
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("Instant::now")), "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("thread::sleep")), "{hits:?}");
    // The #[cfg(test)] use in the same file stays exempt.
    assert!(hits.iter().all(|h| h.contains("hot_path")), "{hits:?}");
    assert_eq!(ndlint_exit(&fixture("clock_bad")), 1);
}

#[test]
fn wire_tags_fixture_catches_renumber_delete_and_unlocked_add() {
    let report = report_for("wire_tags_bad");
    let hits = of(&report, "wire-tag-freeze");
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("renumbered") && h.contains("REQ_PING")));
    assert!(hits.iter().any(|h| h.contains("deleted") && h.contains("REQ_ATOMIC")));
    assert!(hits.iter().any(|h| h.contains("REQ_NEW_THING") && h.contains("not in")));
    assert_eq!(ndlint_exit(&fixture("wire_tags_bad")), 1);
}

#[test]
fn metrics_fixture_catches_typo_duplicate_and_orphan() {
    let report = report_for("metrics_bad");
    let hits = of(&report, "metric-name-registry");
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("netdir_queries_totl")), "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("more than once")), "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("orphaned") && h.contains("ORPHAN")));
    assert_eq!(ndlint_exit(&fixture("metrics_bad")), 1);
}

#[test]
fn locks_fixture_flags_io_under_guard_but_not_scoped_release() {
    let report = report_for("locks_bad");
    let hits = of(&report, "no-lock-across-io");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].contains("write_page"));
    assert!(hits[0].contains("in fn evict"), "{hits:?}");
    assert_eq!(ndlint_exit(&fixture("locks_bad")), 1);
}

#[test]
fn panics_fixture_flags_reachable_sites_with_call_path() {
    let report = report_for("panics_bad");
    let hits = of(&report, "panic-path");
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("unwrap")), "{hits:?}");
    assert!(hits.iter().any(|h| h.contains("panic!")), "{hits:?}");
    // The diagnostic names the call path from the serving root…
    assert!(hits.iter().all(|h| h.contains("serve_conn -> decode")), "{hits:?}");
    // …and the unreachable `offline_tool` expect stays unflagged.
    assert!(!hits.iter().any(|h| h.contains("offline_tool")));
    assert_eq!(ndlint_exit(&fixture("panics_bad")), 1);
}

#[test]
fn the_real_workspace_is_clean() {
    let root = repo_root();
    let report = run(&root, &Config::default()).expect("workspace scan");
    assert!(
        report.violations.is_empty(),
        "real tree must be ndlint-clean:\n{}",
        report
            .violations
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "scan actually covered the tree");
    assert!(report.allowed > 0, "allowlist is exercised");
    assert!(
        report.unused_allows.is_empty(),
        "stale allow entries:\n{}",
        report.unused_allows.join("\n")
    );
    assert_eq!(ndlint_exit(&root), 0);
}
