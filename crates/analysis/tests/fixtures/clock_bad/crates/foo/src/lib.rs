//! clock-discipline fixture: raw time reads outside the clock sanctum.

pub fn hot_path() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(5));
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_real_time() {
        // Exempt: test code.
        let _ = std::time::Instant::now();
    }
}
