//! no-lock-across-io fixture: a table lock held across a disk write —
//! the pathology the pool's loading-frame protocol exists to avoid.

pub fn evict(state: &Mutex<Table>, disk: &dyn Disk) {
    let guard = state.lock();
    disk.write_page(guard.victim()); // I/O under the lock: flagged
}

pub fn evict_properly(state: &Mutex<Table>, disk: &dyn Disk) {
    let victim = {
        let guard = state.lock();
        guard.victim()
    };
    disk.write_page(victim); // lock released first: fine
}
