//! metric-name-registry fixture consumer: a typo'd metric-name literal
//! (`totl`) that matches nothing in the registry.

pub const PROBE: &str = "netdir_queries_totl";
