//! metric-name-registry fixture registry: one duplicate registration,
//! one orphan nothing tracks or references.

pub const QUERIES: &str = "netdir_queries_total";
pub const QUERIES_AGAIN: &str = "netdir_queries_total"; // duplicate value
pub const ORPHAN: &str = "netdir_orphan_total"; // not tracked, never referenced

pub const TRACKED: &[&str] = &[QUERIES, QUERIES_AGAIN];
