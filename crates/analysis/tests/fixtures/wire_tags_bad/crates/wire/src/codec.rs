//! wire-tag-freeze fixture: one renumbered tag, one deleted tag (the
//! lockfile still lists REQ_ATOMIC), one new tag missing from the
//! lockfile.

const REQ_PING: u8 = 9; // lockfile says 0: renumbered
const REQ_NEW_THING: u8 = 42; // not in the lockfile

pub fn tags() -> (u8, u8) {
    (REQ_PING, REQ_NEW_THING)
}
