//! panic-path fixture: panic sites two calls deep from `serve_conn`.

pub fn serve_conn(req: &[u8]) -> Vec<u8> {
    decode(req)
}

fn decode(req: &[u8]) -> Vec<u8> {
    let first = req.first().unwrap(); // flagged: reachable from serve_conn
    if *first == 0 {
        panic!("bad frame"); // flagged
    }
    vec![*first]
}

pub fn offline_tool(req: &[u8]) -> u8 {
    // Not reachable from serve_conn: not flagged.
    *req.last().expect("tool input")
}
