//! Atomic-query evaluation over an indexed directory.
//!
//! [`IndexedDirectory`] packages the paged [`DnTable`] with per-attribute
//! indices (B+-trees for ints, tries for equality, suffix arrays for
//! substrings, a presence map) and evaluates atomic queries
//! `(base ? scope ? filter)` into reverse-DN-sorted entry lists — the
//! inputs of every L0–L3 operator.
//!
//! Two strategies, matching how real servers plan:
//!
//! * **Index probe** — look up candidate entry ids in the matching index,
//!   keep those whose sort key falls in scope, fetch their entries from
//!   the DN table (random page reads, amortized by the buffer pool), and
//!   emit in key order. Good for selective filters.
//! * **Scope scan** — sequentially read exactly the pages covering the
//!   base's subtree and filter. Good for broad filters and small scopes,
//!   and the predictable-cost path used by the I/O experiments.
//!
//! [`IndexedDirectory::evaluate_atomic`] picks a strategy; both are also
//! exposed directly.

use crate::btree::StaticBTree;
use crate::dn_table::DnTable;
use crate::suffix::SuffixIndex;
use crate::trie::Trie;
use netdir_filter::{AtomicFilter, CompositeFilter, LdapQuery, Scope};
use netdir_filter::atomic::IntOp;
use netdir_model::{AttrName, Directory, Dn, Entry, EntryId, SortKey, Value};
use netdir_pager::{ListWriter, PagedList, Pager, PagerResult};
use std::collections::BTreeMap;

/// A directory bulk-loaded into the paged DN table plus attribute indices.
pub struct IndexedDirectory {
    table: DnTable,
    int_trees: BTreeMap<AttrName, StaticBTree>,
    tries: BTreeMap<AttrName, Trie>,
    suffixes: BTreeMap<AttrName, SuffixIndex>,
    presence: BTreeMap<AttrName, Vec<EntryId>>,
    /// id → sort key for scope filtering of index hits.
    keys: BTreeMap<EntryId, SortKey>,
}

impl IndexedDirectory {
    /// Build table and indices from a directory instance.
    pub fn build(pager: &Pager, dir: &Directory) -> PagerResult<IndexedDirectory> {
        let table = DnTable::build(pager, dir.iter_sorted())?;

        let mut int_pairs: BTreeMap<AttrName, Vec<(i64, EntryId)>> = BTreeMap::new();
        let mut tries: BTreeMap<AttrName, Trie> = BTreeMap::new();
        let mut string_occurrences: BTreeMap<AttrName, Vec<(String, EntryId)>> =
            BTreeMap::new();
        let mut presence: BTreeMap<AttrName, Vec<EntryId>> = BTreeMap::new();
        let mut keys = BTreeMap::new();

        for e in dir.iter_sorted() {
            keys.insert(e.id(), e.dn().sort_key().clone());
            let mut seen_attrs: Vec<&AttrName> = Vec::new();
            for (a, v) in e.pairs() {
                if seen_attrs.last() != Some(&a) {
                    presence.entry(a.clone()).or_default().push(e.id());
                    seen_attrs.push(a);
                }
                let canonical = v.canonical();
                tries
                    .entry(a.clone())
                    .or_default()
                    .insert(&canonical, e.id());
                string_occurrences
                    .entry(a.clone())
                    .or_default()
                    .push((canonical, e.id()));
                if let Value::Int(i) = v {
                    int_pairs.entry(a.clone()).or_default().push((*i, e.id()));
                }
            }
        }

        let mut int_trees = BTreeMap::new();
        for (a, mut pairs) in int_pairs {
            pairs.sort_unstable();
            int_trees.insert(a, StaticBTree::build(pager, &pairs)?);
        }
        let suffixes = string_occurrences
            .into_iter()
            .map(|(a, occ)| {
                let idx =
                    SuffixIndex::build(occ.iter().map(|(s, id)| (s.as_str(), *id)));
                (a, idx)
            })
            .collect();

        Ok(IndexedDirectory {
            table,
            int_trees,
            tries,
            suffixes,
            presence,
            keys,
        })
    }

    /// The underlying DN table.
    pub fn table(&self) -> &DnTable {
        &self.table
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.table.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Candidate entry ids for `filter` from the indices, or `None` when
    /// no index applies (e.g. [`AtomicFilter::True`]).
    pub fn probe(&self, filter: &AtomicFilter) -> Option<Vec<EntryId>> {
        match filter {
            AtomicFilter::True => None,
            // Constant false: the empty candidate list, no scan needed.
            AtomicFilter::False => Some(Vec::new()),
            AtomicFilter::Present(a) => {
                Some(self.presence.get(a.canonical()).cloned().unwrap_or_default())
            }
            AtomicFilter::Eq(a, v) => Some(
                self.tries
                    .get(a.canonical())
                    .map(|t| t.lookup_exact(v))
                    .unwrap_or_default(),
            ),
            AtomicFilter::DnEq(a, dn) => Some(
                self.tries
                    .get(a.canonical())
                    .map(|t| t.lookup_exact(&dn.canonical()))
                    .unwrap_or_default(),
            ),
            AtomicFilter::Substring(a, pat) => {
                // Pull candidates on the most selective fragment, verify
                // the full pattern during fetch.
                let frag = pat
                    .initial
                    .as_deref()
                    .into_iter()
                    .chain(pat.any.iter().map(String::as_str))
                    .chain(pat.final_.as_deref())
                    .max_by_key(|s| s.len())?;
                Some(
                    self.suffixes
                        .get(a.canonical())
                        .map(|s| s.contains(frag))
                        .unwrap_or_default(),
                )
            }
            AtomicFilter::IntCmp(a, op, v) => {
                let tree = self.int_trees.get(a.canonical())?;
                let ids = match op {
                    IntOp::Lt => tree.below(*v, false),
                    IntOp::Le => tree.below(*v, true),
                    IntOp::Gt => tree.above(*v, false),
                    IntOp::Ge => tree.above(*v, true),
                    IntOp::Eq => tree.lookup(*v),
                };
                match ids {
                    Ok(mut ids) => {
                        ids.sort_unstable();
                        ids.dedup();
                        Some(ids)
                    }
                    Err(_) => None,
                }
            }
        }
    }

    /// Evaluate an atomic query via index probe, falling back to a scope
    /// scan when no index applies.
    pub fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>> {
        match self.probe(filter) {
            Some(mut ids) => {
                // Scope-filter by key, order by key.
                let base_key = base.sort_key().clone();
                ids.sort_unstable();
                ids.dedup();
                let mut hits: Vec<(&SortKey, EntryId)> = ids
                    .into_iter()
                    .filter_map(|id| self.keys.get(&id).map(|k| (k, id)))
                    .filter(|(k, _)| match scope {
                        Scope::Base => **k == base_key,
                        Scope::Sub => base_key.subsumes(k),
                        Scope::One => {
                            base_key.subsumes(k)
                                && k.depth() <= base_key.depth() + 1
                        }
                    })
                    .collect();
                hits.sort_by(|a, b| a.0.cmp(b.0));
                let mut w = ListWriter::new(self.table.pager());
                for (_, id) in hits {
                    if let Some(e) = self.table.fetch(id)? {
                        // Verify (substring candidates are approximate).
                        if filter.matches(&e) {
                            w.push(&e)?;
                        }
                    }
                }
                w.finish()
            }
            None => self.evaluate_scan(base, scope, filter),
        }
    }

    /// Evaluate an atomic query by scanning the scope's pages.
    pub fn evaluate_scan(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>> {
        self.table.select_scope(base, scope, |e| filter.matches(e))
    }

    /// Evaluate a composite-filter LDAP query (the baseline language) by
    /// scope scan.
    pub fn evaluate_ldap(&self, q: &LdapQuery) -> PagerResult<PagedList<Entry>> {
        self.table
            .select_scope(&q.base, q.scope, |e| q.filter.matches(e))
    }

    /// Evaluate a composite filter at (base, scope) — like
    /// [`Self::evaluate_ldap`] but from parts.
    pub fn evaluate_composite(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &CompositeFilter,
    ) -> PagerResult<PagedList<Entry>> {
        self.table.select_scope(base, scope, |e| filter.matches(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_pager::tiny_pager;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn dir() -> Directory {
        let mut d = Directory::new();
        let mut add = |s: &str, f: &dyn Fn(netdir_model::EntryBuilder) -> netdir_model::EntryBuilder| {
            d.insert(f(Entry::builder(dn(s))).build().unwrap()).unwrap();
        };
        add("dc=com", &|b| b.class("dcObject"));
        add("dc=att, dc=com", &|b| b.class("dcObject"));
        add("ou=people, dc=att, dc=com", &|b| b.class("organizationalUnit"));
        add("uid=jag, ou=people, dc=att, dc=com", &|b| {
            b.class("person")
                .attr("surName", "jagadish")
                .attr("commonName", "h jagadish")
                .attr("priority", 2i64)
        });
        add("uid=divesh, ou=people, dc=att, dc=com", &|b| {
            b.class("person")
                .attr("surName", "srivastava")
                .attr("priority", 5i64)
        });
        add("uid=tova, ou=people, dc=att, dc=com", &|b| {
            b.class("person").attr("surName", "milo")
        });
        d
    }

    fn indexed() -> (IndexedDirectory, Pager) {
        let pager = tiny_pager();
        let d = dir();
        let idx = IndexedDirectory::build(&pager, &d).unwrap();
        (idx, pager)
    }

    fn dns(list: &PagedList<Entry>) -> Vec<String> {
        list.to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect()
    }

    #[test]
    fn eq_probe_and_scan_agree() {
        let (idx, _) = indexed();
        let f = AtomicFilter::eq("surName", "jagadish");
        let probe = idx
            .evaluate_atomic(&dn("dc=com"), Scope::Sub, &f)
            .unwrap();
        let scan = idx.evaluate_scan(&dn("dc=com"), Scope::Sub, &f).unwrap();
        assert_eq!(dns(&probe), dns(&scan));
        assert_eq!(probe.len(), 1);
    }

    #[test]
    fn int_cmp_probe() {
        let (idx, _) = indexed();
        let f = AtomicFilter::int_cmp("priority", IntOp::Lt, 3);
        let out = idx
            .evaluate_atomic(&dn("dc=com"), Scope::Sub, &f)
            .unwrap();
        assert_eq!(
            dns(&out),
            vec!["uid=jag, ou=people, dc=att, dc=com".to_string()]
        );
    }

    #[test]
    fn presence_probe() {
        let (idx, _) = indexed();
        let f = AtomicFilter::present("priority");
        let out = idx
            .evaluate_atomic(&dn("dc=com"), Scope::Sub, &f)
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn substring_probe_verifies_full_pattern() {
        let (idx, _) = indexed();
        // *jag* matches both "jagadish" (surName) and "h jagadish".
        let f = netdir_filter::parse_atomic("surName=*jag*").unwrap();
        let out = idx
            .evaluate_atomic(&dn("dc=com"), Scope::Sub, &f)
            .unwrap();
        assert_eq!(out.len(), 1);
        // Anchored pattern: jag* — "jagadish" yes.
        let f = netdir_filter::parse_atomic("surName=jag*").unwrap();
        assert_eq!(
            idx.evaluate_atomic(&dn("dc=com"), Scope::Sub, &f)
                .unwrap()
                .len(),
            1
        );
        // mil* on surName matches milo only.
        let f = netdir_filter::parse_atomic("surName=*ilo").unwrap();
        assert_eq!(
            idx.evaluate_atomic(&dn("dc=com"), Scope::Sub, &f)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn scope_restricts_probe_hits() {
        let (idx, _) = indexed();
        let f = AtomicFilter::eq("objectClass", "person");
        // Scope one from ou=people includes the three persons.
        let out = idx
            .evaluate_atomic(&dn("ou=people, dc=att, dc=com"), Scope::One, &f)
            .unwrap();
        assert_eq!(out.len(), 3);
        // Scope one from dc=att excludes them (two levels down).
        let out = idx
            .evaluate_atomic(&dn("dc=att, dc=com"), Scope::One, &f)
            .unwrap();
        assert_eq!(out.len(), 0);
        // Base scope.
        let out = idx
            .evaluate_atomic(&dn("uid=jag, ou=people, dc=att, dc=com"), Scope::Base, &f)
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn true_filter_falls_back_to_scan() {
        let (idx, _) = indexed();
        let out = idx
            .evaluate_atomic(&Dn::root(), Scope::Sub, &AtomicFilter::True)
            .unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn results_sorted_by_reverse_dn() {
        let (idx, _) = indexed();
        let out = idx
            .evaluate_atomic(&dn("dc=com"), Scope::Sub, &AtomicFilter::present("uid"))
            .unwrap();
        let v = out.to_vec().unwrap();
        for w in v.windows(2) {
            assert!(w[0].dn() < w[1].dn());
        }
    }

    #[test]
    fn ldap_query_evaluation() {
        let (idx, _) = indexed();
        let q = LdapQuery::new(
            dn("dc=att, dc=com"),
            Scope::Sub,
            netdir_filter::parse_composite("(&(objectClass=person)(!(priority=*)))")
                .unwrap(),
        );
        let out = idx.evaluate_ldap(&q).unwrap();
        assert_eq!(
            dns(&out),
            vec!["uid=tova, ou=people, dc=att, dc=com".to_string()]
        );
    }
}
