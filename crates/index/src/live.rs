//! Incrementally maintained attribute indexes.
//!
//! The bulk-loaded structures of this crate ([`StaticBTree`],
//! [`SuffixIndex`]) are built once from sorted input and never change —
//! the right shape for the paper's load-then-query experiments, the
//! wrong one for a live write path. This module wraps each in a small
//! *delta overlay*: mutations land in an in-memory side structure,
//! queries merge the paged base with the overlay, and once the overlay
//! outgrows a threshold the base is rebuilt from scratch (amortizing the
//! rebuild over many mutations, the classical LSM compromise).
//!
//! Probe results feed the same verify-at-fetch pipeline as the static
//! indexes ([`crate::IndexedDirectory::evaluate_atomic`] re-checks the
//! filter against each fetched entry), so the overlay only has to be
//! *exact enough*: no live association may be missed; stale candidates
//! are filtered downstream. Both overlays here are in fact exact — the
//! tests assert set equality with a from-scratch rebuild after every
//! mutation pattern.

use crate::btree::StaticBTree;
use crate::suffix::SuffixIndex;
use netdir_model::EntryId;
use netdir_pager::{Pager, PagerResult};
use std::collections::BTreeMap;

/// Overlay size at which the paged base is rebuilt.
const COMPACT_THRESHOLD: usize = 64;

/// An updatable integer index: a paged [`StaticBTree`] base plus sorted
/// in-memory add/remove deltas.
pub struct LiveIntIndex {
    pager: Pager,
    base: Option<StaticBTree>,
    /// All live pairs, sorted — authoritative, and the compaction input.
    all: Vec<(i64, EntryId)>,
    /// Pairs added since the base was built (sorted).
    added: Vec<(i64, EntryId)>,
    /// Pairs removed since the base was built but still present in it
    /// (sorted).
    removed: Vec<(i64, EntryId)>,
    threshold: usize,
}

impl LiveIntIndex {
    /// An empty index whose compactions write to `pager`.
    pub fn new(pager: &Pager) -> LiveIntIndex {
        LiveIntIndex {
            pager: pager.clone(),
            base: None,
            all: Vec::new(),
            added: Vec::new(),
            removed: Vec::new(),
            threshold: COMPACT_THRESHOLD,
        }
    }

    /// Number of live pairs.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// True iff no pairs are live.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Size of the uncompacted overlay (testing/observability).
    pub fn overlay_len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Add one `(key, id)` pair.
    pub fn insert(&mut self, key: i64, id: EntryId) -> PagerResult<()> {
        let pair = (key, id);
        let pos = self.all.partition_point(|p| *p < pair);
        self.all.insert(pos, pair);
        // An add that cancels a pending remove returns the base pair to
        // visibility without growing the overlay.
        if let Ok(pos) = self.removed.binary_search(&pair) {
            self.removed.remove(pos);
        } else {
            let pos = self.added.partition_point(|p| *p < pair);
            self.added.insert(pos, pair);
        }
        self.maybe_compact()
    }

    /// Remove one `(key, id)` pair. Returns `false` (and changes nothing)
    /// if the pair is not live.
    pub fn remove(&mut self, key: i64, id: EntryId) -> PagerResult<bool> {
        let pair = (key, id);
        let Ok(pos) = self.all.binary_search(&pair) else {
            return Ok(false);
        };
        self.all.remove(pos);
        if let Ok(pos) = self.added.binary_search(&pair) {
            self.added.remove(pos);
        } else {
            let pos = self.removed.partition_point(|p| *p < pair);
            self.removed.insert(pos, pair);
        }
        self.maybe_compact()?;
        Ok(true)
    }

    fn maybe_compact(&mut self) -> PagerResult<()> {
        if self.added.len() + self.removed.len() > self.threshold {
            self.compact()?;
        }
        Ok(())
    }

    /// Rebuild the paged base from the live pairs and clear the overlay.
    pub fn compact(&mut self) -> PagerResult<()> {
        self.base = Some(StaticBTree::build(&self.pager, &self.all)?);
        self.added.clear();
        self.removed.clear();
        Ok(())
    }

    /// Ids with key in `[lo, hi]` (both inclusive), merged from base and
    /// overlay. Sorted and deduplicated.
    pub fn range(&self, lo: i64, hi: i64) -> PagerResult<Vec<EntryId>> {
        if lo > hi {
            return Ok(Vec::new());
        }
        let mut pairs: Vec<(i64, EntryId)> = Vec::new();
        if let Some(base) = &self.base {
            // The base cannot report keys, only ids, so subtract removed
            // pairs by re-deriving (key, id) from the overlay: a removed
            // pair suppresses exactly one base occurrence of its id
            // within the range.
            let mut ids = base.range(lo, hi)?;
            for &(k, id) in &self.removed {
                if (lo..=hi).contains(&k) {
                    if let Some(pos) = ids.iter().position(|&i| i == id) {
                        ids.remove(pos);
                    }
                }
            }
            pairs.extend(ids.into_iter().map(|id| (lo, id)));
        }
        let from = self.added.partition_point(|&(k, _)| k < lo);
        pairs.extend(
            self.added[from..]
                .iter()
                .take_while(|&&(k, _)| k <= hi)
                .copied(),
        );
        let mut out: Vec<EntryId> = pairs.into_iter().map(|(_, id)| id).collect();
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Ids with key strictly (or, with `inclusive`, weakly) below `v`.
    pub fn below(&self, v: i64, inclusive: bool) -> PagerResult<Vec<EntryId>> {
        let hi = if inclusive { v } else { v.saturating_sub(1) };
        if !inclusive && v == i64::MIN {
            return Ok(Vec::new());
        }
        self.range(i64::MIN, hi)
    }

    /// Ids with key strictly (or, with `inclusive`, weakly) above `v`.
    pub fn above(&self, v: i64, inclusive: bool) -> PagerResult<Vec<EntryId>> {
        let lo = if inclusive { v } else { v.saturating_add(1) };
        if !inclusive && v == i64::MAX {
            return Ok(Vec::new());
        }
        self.range(lo, i64::MAX)
    }

    /// Ids with key exactly `v`.
    pub fn lookup(&self, v: i64) -> PagerResult<Vec<EntryId>> {
        self.range(v, v)
    }
}

/// An updatable substring index: a [`SuffixIndex`] base, linearly scanned
/// pending occurrences, and per-id live value sets for exact verification.
pub struct LiveSuffixIndex {
    base: SuffixIndex,
    /// Occurrences added since the base was built (scanned linearly on
    /// probe — the overlay is bounded by the compaction threshold).
    pending: Vec<(String, EntryId)>,
    /// Live canonical values per id (a multiset; authoritative).
    live: BTreeMap<EntryId, Vec<String>>,
    /// Occurrences removed since the base was built.
    removed_count: usize,
    threshold: usize,
}

impl Default for LiveSuffixIndex {
    fn default() -> Self {
        LiveSuffixIndex::new()
    }
}

impl LiveSuffixIndex {
    /// An empty index.
    pub fn new() -> LiveSuffixIndex {
        LiveSuffixIndex {
            base: SuffixIndex::build(std::iter::empty::<(&str, EntryId)>()),
            pending: Vec::new(),
            live: BTreeMap::new(),
            removed_count: 0,
            threshold: COMPACT_THRESHOLD,
        }
    }

    /// Number of live occurrences.
    pub fn num_docs(&self) -> usize {
        self.live.values().map(Vec::len).sum()
    }

    /// Size of the uncompacted overlay (testing/observability).
    pub fn overlay_len(&self) -> usize {
        self.pending.len() + self.removed_count
    }

    /// Add one `(canonical value, id)` occurrence.
    pub fn insert(&mut self, value: &str, id: EntryId) {
        self.live.entry(id).or_default().push(value.to_string());
        self.pending.push((value.to_string(), id));
        self.maybe_compact();
    }

    /// Remove one occurrence. Returns `false` if it is not live.
    pub fn remove(&mut self, value: &str, id: EntryId) -> bool {
        let Some(values) = self.live.get_mut(&id) else {
            return false;
        };
        let Some(pos) = values.iter().position(|v| v == value) else {
            return false;
        };
        values.remove(pos);
        if values.is_empty() {
            self.live.remove(&id);
        }
        if let Some(pos) = self.pending.iter().position(|(v, i)| v == value && *i == id) {
            // Removing a never-compacted occurrence shrinks the overlay.
            self.pending.remove(pos);
        } else {
            self.removed_count += 1;
        }
        self.maybe_compact();
        true
    }

    fn maybe_compact(&mut self) {
        if self.pending.len() + self.removed_count > self.threshold {
            self.compact();
        }
    }

    /// Rebuild the suffix-array base from the live occurrences.
    pub fn compact(&mut self) {
        self.base = SuffixIndex::build(
            self.live
                .iter()
                .flat_map(|(&id, vs)| vs.iter().map(move |v| (v.as_str(), id))),
        );
        self.pending.clear();
        self.removed_count = 0;
    }

    /// Ids having at least one *live* value containing `pattern`
    /// (sorted, deduplicated). Exact: base candidates are re-verified
    /// against the live multiset, so removed occurrences never resurface.
    pub fn contains(&self, pattern: &str) -> Vec<EntryId> {
        let mut candidates = self.base.contains(pattern);
        candidates.extend(
            self.pending
                .iter()
                .filter(|(v, _)| v.contains(pattern))
                .map(|&(_, id)| id),
        );
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|id| {
            self.live
                .get(id)
                .is_some_and(|vs| vs.iter().any(|v| v.contains(pattern)))
        });
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_pager::tiny_pager;

    /// Reference answer: ids from a plain sorted-pairs scan.
    fn int_ref(pairs: &[(i64, EntryId)], lo: i64, hi: i64) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = pairs
            .iter()
            .filter(|&&(k, _)| (lo..=hi).contains(&k))
            .map(|&(_, id)| id)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn int_overlay_matches_reference_through_mutations() {
        let pager = tiny_pager();
        let mut idx = LiveIntIndex::new(&pager);
        let mut model: Vec<(i64, EntryId)> = Vec::new();
        // Interleave inserts and removes, checking after each step.
        for step in 0..200u64 {
            let key = (step as i64 * 37) % 23 - 11;
            if step % 3 == 2 && !model.is_empty() {
                let victim = model[(step as usize * 7) % model.len()];
                assert!(idx.remove(victim.0, victim.1).unwrap());
                let pos = model.iter().position(|&p| p == victim).unwrap();
                model.remove(pos);
            } else {
                idx.insert(key, step).unwrap();
                model.push((key, step));
            }
            assert_eq!(idx.range(-5, 5).unwrap(), int_ref(&model, -5, 5));
            assert_eq!(
                idx.range(i64::MIN, i64::MAX).unwrap(),
                int_ref(&model, i64::MIN, i64::MAX)
            );
        }
        assert_eq!(idx.len(), model.len());
    }

    #[test]
    fn int_compaction_preserves_answers() {
        let pager = tiny_pager();
        let mut idx = LiveIntIndex::new(&pager);
        for i in 0..100i64 {
            idx.insert(i, i as EntryId).unwrap();
        }
        // The threshold has forced at least one compaction by now.
        assert!(idx.overlay_len() < 100);
        assert_eq!(idx.lookup(42).unwrap(), vec![42]);
        assert_eq!(idx.below(3, false).unwrap(), vec![0, 1, 2]);
        assert_eq!(idx.below(3, true).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(idx.above(96, false).unwrap(), vec![97, 98, 99]);
        assert_eq!(idx.above(96, true).unwrap(), vec![96, 97, 98, 99]);
        // Remove across the compacted base.
        assert!(idx.remove(42, 42).unwrap());
        assert_eq!(idx.lookup(42).unwrap(), Vec::<EntryId>::new());
        assert!(!idx.remove(42, 42).unwrap(), "double remove refused");
    }

    #[test]
    fn int_remove_of_missing_pair_is_refused() {
        let pager = tiny_pager();
        let mut idx = LiveIntIndex::new(&pager);
        idx.insert(1, 10).unwrap();
        assert!(!idx.remove(1, 11).unwrap());
        assert!(!idx.remove(2, 10).unwrap());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn int_extreme_bounds() {
        let pager = tiny_pager();
        let mut idx = LiveIntIndex::new(&pager);
        idx.insert(i64::MIN, 1).unwrap();
        idx.insert(i64::MAX, 2).unwrap();
        assert_eq!(idx.below(i64::MIN, false).unwrap(), Vec::<EntryId>::new());
        assert_eq!(idx.below(i64::MIN, true).unwrap(), vec![1]);
        assert_eq!(idx.above(i64::MAX, false).unwrap(), Vec::<EntryId>::new());
        assert_eq!(idx.above(i64::MAX, true).unwrap(), vec![2]);
    }

    #[test]
    fn suffix_overlay_is_exact_through_mutations() {
        let mut idx = LiveSuffixIndex::new();
        idx.insert("jagadish", 1);
        idx.insert("srivastava", 2);
        idx.insert("milo", 3);
        assert_eq!(idx.contains("a"), vec![1, 2]);
        assert_eq!(idx.contains("ilo"), vec![3]);
        // Removal takes effect immediately even though the base (if any)
        // still holds the occurrence.
        assert!(idx.remove("jagadish", 1));
        assert_eq!(idx.contains("jag"), Vec::<EntryId>::new());
        assert!(!idx.remove("jagadish", 1), "double remove refused");
        // An id with several values stays findable through the others.
        idx.insert("h jagadish", 1);
        idx.insert("professor", 1);
        assert!(idx.remove("professor", 1));
        assert_eq!(idx.contains("jag"), vec![1]);
        assert_eq!(idx.num_docs(), 3);
    }

    #[test]
    fn suffix_compaction_preserves_answers() {
        let mut idx = LiveSuffixIndex::new();
        for i in 0..100u64 {
            idx.insert(&format!("value-{i:03}"), i);
        }
        assert!(idx.overlay_len() < 100, "compaction must have run");
        assert_eq!(idx.contains("value-042"), vec![42]);
        assert_eq!(idx.contains("value").len(), 100);
        assert!(idx.remove("value-042", 42));
        assert_eq!(idx.contains("value-042"), Vec::<EntryId>::new());
        assert_eq!(idx.contains("value").len(), 99);
    }

    #[test]
    fn suffix_empty_pattern_matches_live_ids_only() {
        let mut idx = LiveSuffixIndex::new();
        idx.insert("a", 1);
        idx.insert("b", 2);
        idx.remove("a", 1);
        assert_eq!(idx.contains(""), vec![2]);
    }
}
