//! # netdir-index — indices for atomic-query evaluation
//!
//! The paper *assumes* atomic queries are cheap: "the atomic queries
//! considered above are all supported by LDAP, and can be evaluated with
//! the help of B-trees indices for integer and distinguishedName filters,
//! and trie and suffix tree indices for string filters" (Section 4.1).
//! This crate builds those structures so the assumption holds in this
//! implementation too:
//!
//! * [`dn_table`] — the paged **DN table**: every entry, sorted by
//!   reverse-DN key, with in-memory fence keys per page. Scope resolution
//!   (`base`/`one`/`sub`) is a binary search plus a sequential page range
//!   scan, because subtrees are contiguous in this order.
//! * [`btree`] — a bulk-loaded, paged, static **B+-tree** over
//!   `(i64, EntryId)` pairs, one per integer attribute; integer comparison
//!   filters become leaf-range scans with `O(log_B N + t/B)` page reads.
//! * [`trie`] — an in-memory **trie** for exact and prefix string lookup.
//! * [`suffix`] — an in-memory **suffix array** standing in for McCreight
//!   suffix trees \[23\]; substring filters (`cn=*jag*`) become binary
//!   searches over suffixes (see DESIGN.md §5 for the substitution note).
//! * [`directory_index`] — [`directory_index::IndexedDirectory`] ties it
//!   together: atomic queries `(base ? scope ? filter)` evaluated either
//!   by scope scan or through the attribute indices, always producing
//!   reverse-DN-sorted [`netdir_pager::PagedList`]s of entries — the form
//!   the L0–L3 operators consume.

pub mod btree;
pub mod directory_index;
pub mod dn_table;
pub mod live;
pub mod suffix;
pub mod trie;

pub use btree::StaticBTree;
pub use directory_index::IndexedDirectory;
pub use dn_table::DnTable;
pub use live::{LiveIntIndex, LiveSuffixIndex};
pub use suffix::SuffixIndex;
pub use trie::Trie;
