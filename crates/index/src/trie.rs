//! An in-memory trie for exact and prefix string lookup.
//!
//! Backs equality filters (`surName=jagadish`) and prefix wildcards
//! (`cn=jag*`) over canonical (case-folded) attribute values — the "trie
//! … indices for string filters" of Section 4.1. Kept in memory: the
//! paper treats atomic-query efficiency as an assumption, and the I/O
//! experiments measure the *operators*, not index probes (DESIGN.md §5).

use netdir_model::EntryId;
use std::collections::BTreeMap;

/// A byte-wise trie mapping strings to sets of entry ids.
#[derive(Debug, Default)]
pub struct Trie {
    root: Node,
    len: usize,
}

#[derive(Debug, Default)]
struct Node {
    children: BTreeMap<u8, Node>,
    /// Ids whose value terminates at this node.
    ids: Vec<EntryId>,
}

impl Trie {
    /// An empty trie.
    pub fn new() -> Trie {
        Trie::default()
    }

    /// Number of inserted (string, id) associations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Associate `id` with `key` (callers pass canonical strings).
    pub fn insert(&mut self, key: &str, id: EntryId) {
        let mut node = &mut self.root;
        for b in key.bytes() {
            node = node.children.entry(b).or_default();
        }
        node.ids.push(id);
        self.len += 1;
    }

    /// Remove one `(key, id)` association, pruning any branch it leaves
    /// empty. Returns `true` iff the association existed. Duplicate
    /// associations are removed one at a time (mirroring `insert`, which
    /// counts them individually).
    pub fn remove(&mut self, key: &str, id: EntryId) -> bool {
        fn rec(node: &mut Node, key: &[u8], id: EntryId) -> Option<bool> {
            match key.split_first() {
                None => {
                    let pos = node.ids.iter().position(|&i| i == id)?;
                    node.ids.remove(pos);
                    Some(node.ids.is_empty() && node.children.is_empty())
                }
                Some((&b, rest)) => {
                    let child = node.children.get_mut(&b)?;
                    let prune = rec(child, rest, id)?;
                    if prune {
                        node.children.remove(&b);
                    }
                    Some(node.ids.is_empty() && node.children.is_empty())
                }
            }
        }
        match rec(&mut self.root, key.as_bytes(), id) {
            Some(_) => {
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    fn descend(&self, key: &str) -> Option<&Node> {
        let mut node = &self.root;
        for b in key.bytes() {
            node = node.children.get(&b)?;
        }
        Some(node)
    }

    /// Ids whose value equals `key` exactly.
    pub fn lookup_exact(&self, key: &str) -> Vec<EntryId> {
        self.descend(key)
            .map(|n| n.ids.clone())
            .unwrap_or_default()
    }

    /// Ids whose value starts with `prefix` (includes exact matches).
    pub fn lookup_prefix(&self, prefix: &str) -> Vec<EntryId> {
        let mut out = Vec::new();
        if let Some(node) = self.descend(prefix) {
            collect(node, &mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn collect(node: &Node, out: &mut Vec<EntryId>) {
    out.extend_from_slice(&node.ids);
    for child in node.children.values() {
        collect(child, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trie {
        let mut t = Trie::new();
        t.insert("jagadish", 1);
        t.insert("jag", 2);
        t.insert("jones", 3);
        t.insert("jagadish", 4); // duplicate key, different id
        t
    }

    #[test]
    fn exact_lookup() {
        let t = sample();
        assert_eq!(t.lookup_exact("jagadish"), vec![1, 4]);
        assert_eq!(t.lookup_exact("jag"), vec![2]);
        assert_eq!(t.lookup_exact("jaga"), Vec::<u64>::new());
        assert_eq!(t.lookup_exact(""), Vec::<u64>::new());
    }

    #[test]
    fn prefix_lookup() {
        let t = sample();
        assert_eq!(t.lookup_prefix("jag"), vec![1, 2, 4]);
        assert_eq!(t.lookup_prefix("j"), vec![1, 2, 3, 4]);
        assert_eq!(t.lookup_prefix(""), vec![1, 2, 3, 4]);
        assert_eq!(t.lookup_prefix("x"), Vec::<u64>::new());
    }

    #[test]
    fn len_counts_associations() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert!(Trie::new().is_empty());
    }

    #[test]
    fn remove_deletes_one_association() {
        let mut t = sample();
        assert!(t.remove("jagadish", 1));
        assert_eq!(t.lookup_exact("jagadish"), vec![4]);
        assert_eq!(t.len(), 3);
        // Second removal of the same association fails.
        assert!(!t.remove("jagadish", 1));
        // Missing key fails without touching the count.
        assert!(!t.remove("ghost", 1));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_prunes_empty_branches() {
        let mut t = Trie::new();
        t.insert("abc", 1);
        t.insert("abd", 2);
        assert!(t.remove("abc", 1));
        // The "abc" branch is gone; prefix search still finds "abd".
        assert_eq!(t.lookup_prefix("ab"), vec![2]);
        assert_eq!(t.lookup_exact("abc"), Vec::<u64>::new());
        assert!(t.remove("abd", 2));
        assert!(t.is_empty());
        assert!(t.root.children.is_empty(), "all branches pruned");
    }

    #[test]
    fn remove_keeps_interior_keys() {
        // "jag" terminates inside the "jagadish" branch; removing the
        // longer key must not disturb it.
        let mut t = sample();
        assert!(t.remove("jagadish", 1));
        assert!(t.remove("jagadish", 4));
        assert_eq!(t.lookup_exact("jag"), vec![2]);
        assert_eq!(t.lookup_prefix("jag"), vec![2]);
    }

    #[test]
    fn non_ascii_keys() {
        let mut t = Trie::new();
        t.insert("héllo", 7);
        assert_eq!(t.lookup_exact("héllo"), vec![7]);
        assert_eq!(t.lookup_prefix("hé"), vec![7]);
    }
}
