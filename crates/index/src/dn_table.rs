//! The paged DN table.
//!
//! All entries, serialized in reverse-DN order onto pages, plus an
//! in-memory *fence key* (the first entry's sort key) per page. Because a
//! subtree is a contiguous key range (see `netdir_model::dn`), resolving a
//! scope is: binary-search the fences for the first relevant page, then
//! scan pages sequentially until the keys leave the subtree. The I/O cost
//! is `O(pages(scope) + log)` — this is the "distinguishedName B-tree" of
//! Section 4.1 in bulk-loaded form.

use netdir_model::{Dn, Entry, EntryId};
use netdir_filter::Scope;
use netdir_pager::{ListWriter, PagedList, Pager, PagerResult};

/// A static, sorted, paged table of entries with per-page fence keys.
pub struct DnTable {
    pager: Pager,
    list: PagedList<Entry>,
    /// First sort key on each page (in-memory metadata).
    fences: Vec<Vec<u8>>,
    /// entry id → position in sorted order (for id-based fetch).
    id_to_pos: Vec<u32>,
    len: u64,
}

impl DnTable {
    /// Bulk-load from entries **already sorted** by reverse-DN key.
    ///
    /// Usually obtained from [`netdir_model::Directory::iter_sorted`].
    pub fn build<'a, I>(pager: &Pager, entries: I) -> PagerResult<DnTable>
    where
        I: IntoIterator<Item = &'a Entry>,
    {
        // Write pages one at a time, recording each page's first key.
        // We reuse ListWriter and recompute fences from a scan: simpler and
        // build-time only. First pass: write the list.
        let mut w: ListWriter<Entry> = ListWriter::new(pager);
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut max_id: EntryId = 0;
        let mut ids: Vec<EntryId> = Vec::new();
        for e in entries {
            debug_assert!(
                keys.last()
                    .is_none_or(|k| k[..] <= *e.dn().sort_key().as_bytes()),
                "DnTable::build requires sorted input"
            );
            keys.push(e.dn().sort_key().as_bytes().to_vec());
            ids.push(e.id());
            max_id = max_id.max(e.id());
            w.push(e)?;
        }
        let list = w.finish()?;

        let fences = page_fences(&list, &keys);

        let mut id_to_pos = vec![u32::MAX; (max_id as usize) + 1];
        for (pos, id) in ids.iter().enumerate() {
            id_to_pos[*id as usize] = pos as u32;
        }
        Ok(DnTable {
            pager: pager.clone(),
            len: list.len(),
            list,
            fences,
            id_to_pos,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u64 {
        self.list.num_pages()
    }

    /// The pager.
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Scan the whole table in sorted order.
    pub fn scan(&self) -> impl Iterator<Item = PagerResult<Entry>> + '_ {
        self.list.iter()
    }

    /// Entries within `scope` of `base`, in sorted order.
    ///
    /// Reads only pages that can intersect the subtree's key range (plus
    /// at most one boundary page), then filters exactly.
    pub fn scan_scope<'a>(
        &'a self,
        base: &Dn,
        scope: Scope,
    ) -> impl Iterator<Item = PagerResult<Entry>> + 'a {
        let base = base.clone();
        let prefix = base.sort_key().as_bytes().to_vec();
        // First page whose *successor* fence exceeds the prefix start —
        // i.e. the last page with fence <= prefix (the subtree may start
        // mid-page).
        let start_page = match self.fences.binary_search_by(|f| f[..].cmp(&prefix)) {
            Ok(p) => p,
            Err(0) => 0,
            Err(p) => p - 1,
        };
        let prefix2 = prefix.clone();
        self.list
            .iter_from_page(start_page)
            .skip_while(move |r| {
                // Records before the subtree range on the boundary page.
                match r {
                    Ok(e) => e.dn().sort_key().as_bytes() < &prefix[..],
                    Err(_) => false,
                }
            })
            .take_while(move |r| match r {
                Ok(e) => e.dn().sort_key().as_bytes().starts_with(&prefix2),
                Err(_) => true,
            })
            .filter(move |r| match r {
                Ok(e) => scope.contains(&base, e.dn()),
                Err(_) => true,
            })
    }

    /// Fetch one entry by id (one page read if cold).
    pub fn fetch(&self, id: EntryId) -> PagerResult<Option<Entry>> {
        let Some(&pos) = self.id_to_pos.get(id as usize) else {
            return Ok(None);
        };
        if pos == u32::MAX {
            return Ok(None);
        }
        self.list.get(pos as u64)
    }

    /// Fetch several ids, in the order given.
    pub fn fetch_many(&self, ids: &[EntryId]) -> PagerResult<Vec<Entry>> {
        let mut out = Vec::with_capacity(ids.len());
        for &id in ids {
            if let Some(e) = self.fetch(id)? {
                out.push(e);
            }
        }
        Ok(out)
    }

    /// Export a scope's entries satisfying `pred` as a fresh sorted
    /// [`PagedList`] — the atomic-query result format.
    pub fn select_scope(
        &self,
        base: &Dn,
        scope: Scope,
        mut pred: impl FnMut(&Entry) -> bool,
    ) -> PagerResult<PagedList<Entry>> {
        let mut w = ListWriter::new(&self.pager);
        for r in self.scan_scope(base, scope) {
            let e = r?;
            if pred(&e) {
                w.push(&e)?;
            }
        }
        w.finish()
    }
}

/// Fence keys: the first record's sort key on each page, derived from the
/// writer's per-page record counts (metadata; no I/O).
fn page_fences(list: &PagedList<Entry>, keys: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let counts = list.page_record_counts();
    debug_assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), keys.len());
    let mut fences = Vec::with_capacity(counts.len());
    let mut pos = 0usize;
    for c in counts {
        fences.push(keys[pos].clone());
        pos += c as usize;
    }
    fences
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_model::Directory;
    use netdir_pager::tiny_pager;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn dir() -> Directory {
        let mut d = Directory::new();
        for s in [
            "dc=com",
            "dc=att, dc=com",
            "ou=people, dc=att, dc=com",
            "uid=a, ou=people, dc=att, dc=com",
            "uid=b, ou=people, dc=att, dc=com",
            "ou=policies, dc=att, dc=com",
            "dc=org",
            "dc=ieee, dc=org",
        ] {
            d.insert(
                Entry::builder(dn(s)).class("thing").build().unwrap(),
            )
            .unwrap();
        }
        d
    }

    fn table() -> (DnTable, Directory) {
        let d = dir();
        let pager = tiny_pager();
        let t = DnTable::build(&pager, d.iter_sorted()).unwrap();
        (t, d)
    }

    #[test]
    fn build_and_full_scan() {
        let (t, d) = table();
        assert_eq!(t.len(), 8);
        let got: Vec<String> = t
            .scan()
            .map(|r| r.unwrap().dn().to_string())
            .collect();
        let expect: Vec<String> = d.iter_sorted().map(|e| e.dn().to_string()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn scope_scans() {
        let (t, _) = table();
        let sub: Vec<String> = t
            .scan_scope(&dn("ou=people, dc=att, dc=com"), Scope::Sub)
            .map(|r| r.unwrap().dn().to_string())
            .collect();
        assert_eq!(
            sub,
            vec![
                "ou=people, dc=att, dc=com",
                "uid=a, ou=people, dc=att, dc=com",
                "uid=b, ou=people, dc=att, dc=com",
            ]
        );
        let one: Vec<String> = t
            .scan_scope(&dn("dc=att, dc=com"), Scope::One)
            .map(|r| r.unwrap().dn().to_string())
            .collect();
        assert_eq!(
            one,
            vec![
                "dc=att, dc=com",
                "ou=people, dc=att, dc=com",
                "ou=policies, dc=att, dc=com",
            ]
        );
        let base: Vec<String> = t
            .scan_scope(&dn("dc=org"), Scope::Base)
            .map(|r| r.unwrap().dn().to_string())
            .collect();
        assert_eq!(base, vec!["dc=org"]);
    }

    #[test]
    fn scope_scan_of_missing_base() {
        let (t, _) = table();
        assert_eq!(t.scan_scope(&dn("dc=net"), Scope::Sub).count(), 0);
    }

    #[test]
    fn root_scope_is_everything() {
        let (t, _) = table();
        assert_eq!(t.scan_scope(&Dn::root(), Scope::Sub).count(), 8);
    }

    #[test]
    fn fetch_by_id() {
        let (t, d) = table();
        for e in d.iter_sorted() {
            let got = t.fetch(e.id()).unwrap().unwrap();
            assert_eq!(got.dn(), e.dn());
        }
        assert!(t.fetch(999).unwrap().is_none());
    }

    #[test]
    fn select_scope_writes_sorted_list() {
        let (t, _) = table();
        let list = t
            .select_scope(&dn("dc=att, dc=com"), Scope::Sub, |e| {
                e.dn().to_string().contains("uid=")
            })
            .unwrap();
        assert_eq!(list.len(), 2);
        let v = list.to_vec().unwrap();
        assert!(v[0].dn() < v[1].dn());
    }

    #[test]
    fn scoped_scan_reads_fewer_pages_than_full_scan() {
        // Build a bigger directory so it spans many pages.
        let mut d = Directory::new();
        for i in 0..50 {
            d.insert(
                Entry::builder(dn(&format!("dc=d{i:03}")))
                    .class("dcObject")
                    .build()
                    .unwrap(),
            )
            .unwrap();
            for j in 0..20 {
                d.insert(
                    Entry::builder(dn(&format!("cn=c{j:02}, dc=d{i:03}")))
                        .class("person")
                        .build()
                        .unwrap(),
                )
                .unwrap();
            }
        }
        let pager = tiny_pager();
        let t = DnTable::build(&pager, d.iter_sorted()).unwrap();
        pager.flush().unwrap();
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        let n = t
            .scan_scope(&dn("dc=d025"), Scope::Sub)
            .count();
        assert_eq!(n, 21);
        let scoped_reads = pager.io().reads;
        assert!(
            scoped_reads * 4 < t.num_pages(),
            "scoped scan read {scoped_reads} of {} pages",
            t.num_pages()
        );
    }
}
