//! A bulk-loaded, paged, static B+-tree over `(i64, EntryId)` pairs.
//!
//! One tree per integer attribute turns the paper's integer comparison
//! filters (`SLARulePriority < 3`) into a descent plus a leaf-range scan:
//! `O(height + t/B)` page reads for `t` matches — the "B-trees indices for
//! integer … filters" of Section 4.1.
//!
//! The tree is built once from sorted pairs (directories here are loaded,
//! then queried; updates go through a rebuild). Layout:
//!
//! * **Leaf pages** — sorted `(key: i64, id: u64)` pairs, 16 bytes each.
//! * **Internal pages** — `(first_key_of_child, child_page)` pairs, built
//!   level by level until one root remains.
//!
//! Page format: 4-byte count header (provided by the pager layer's
//! convention), then fixed-width pairs; internal and leaf pages share the
//! shape, distinguished by level.

use netdir_model::EntryId;
use netdir_pager::{PagerError, PagerResult, Pager, PAGE_HEADER_BYTES};

const PAIR_BYTES: usize = 16;

/// A static B+-tree. Keys are `i64`, payloads are entry ids; duplicate
/// keys are fine (the id disambiguates).
pub struct StaticBTree {
    pager: Pager,
    /// Levels bottom-up: `levels[0]` = leaf pages, last = root level
    /// (single page). Page ids per level, in key order.
    levels: Vec<Vec<netdir_pager::PageId>>,
    len: u64,
}

impl StaticBTree {
    /// Bulk-load from pairs sorted by `(key, id)`.
    pub fn build(pager: &Pager, pairs: &[(i64, EntryId)]) -> PagerResult<StaticBTree> {
        debug_assert!(pairs.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
        let per_page = (pager.payload_size() / PAIR_BYTES).max(2);

        // Leaf level.
        let mut levels: Vec<Vec<netdir_pager::PageId>> = Vec::new();
        let mut current: Vec<(i64, u64)> = Vec::new(); // (separator key, page id)
        {
            let mut leaf_pages = Vec::new();
            for chunk in pairs.chunks(per_page) {
                let page = write_pairs_page(
                    pager,
                    chunk.iter().map(|&(k, id)| (k, id)),
                    chunk.len(),
                )?;
                current.push((chunk[0].0, page));
                leaf_pages.push(page);
            }
            levels.push(leaf_pages);
        }

        // Internal levels until one page remains.
        while current.len() > 1 {
            let mut next: Vec<(i64, u64)> = Vec::new();
            let mut level_pages = Vec::new();
            for chunk in current.chunks(per_page) {
                let page = write_pairs_page(
                    pager,
                    chunk.iter().map(|&(k, child)| (k, child)),
                    chunk.len(),
                )?;
                next.push((chunk[0].0, page));
                level_pages.push(page);
            }
            levels.push(level_pages);
            current = next;
        }

        Ok(StaticBTree {
            pager: pager.clone(),
            levels,
            len: pairs.len() as u64,
        })
    }

    /// Number of indexed pairs.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff no pairs are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (0 for an empty tree).
    pub fn height(&self) -> usize {
        if self.len == 0 {
            0
        } else {
            self.levels.len()
        }
    }

    /// All ids whose key lies in `[lo, hi]` (inclusive), in key order.
    pub fn range(&self, lo: i64, hi: i64) -> PagerResult<Vec<EntryId>> {
        let mut out = Vec::new();
        if self.len == 0 || lo > hi {
            return Ok(out);
        }
        // Descend to the first leaf that can contain `lo`.
        let mut leaf_idx = 0usize;
        if self.levels.len() > 1 {
            // Start from the root level and narrow down the child index.
            let mut page = *self.levels.last().expect("non-empty levels").first().unwrap();
            for _level in (1..self.levels.len()).rev() {
                let entries = read_pairs_page(&self.pager, page)?;
                // First child that can contain `lo`: duplicates of a key
                // may span several children, and a child's separator is
                // its *first* key — so descend into the last child whose
                // separator is strictly below `lo` (children at or after
                // it may all start with `lo` itself).
                let pos = entries.partition_point(|&(k, _)| k < lo);
                let child_slot = pos.saturating_sub(1);
                let child = entries[child_slot].1;
                // Find the child's index within the level below to allow
                // subsequent sequential leaf walks.
                page = child;
                if _level == 1 {
                    leaf_idx = self.levels[0]
                        .iter()
                        .position(|&p| p == child)
                        .expect("child is a leaf of this tree");
                }
            }
        }
        // Sequential leaf scan from leaf_idx.
        for &leaf in &self.levels[0][leaf_idx..] {
            let entries = read_pairs_page(&self.pager, leaf)?;
            let mut past_end = false;
            for (k, id) in entries {
                if k < lo {
                    continue;
                }
                if k > hi {
                    past_end = true;
                    break;
                }
                out.push(id);
            }
            if past_end {
                break;
            }
        }
        Ok(out)
    }

    /// Ids with key exactly `key`.
    pub fn lookup(&self, key: i64) -> PagerResult<Vec<EntryId>> {
        self.range(key, key)
    }

    /// Ids with key `< key` / `<= key` / `> key` / `>= key`.
    pub fn below(&self, key: i64, inclusive: bool) -> PagerResult<Vec<EntryId>> {
        let hi = if inclusive { key } else { key.saturating_sub(1) };
        if !inclusive && key == i64::MIN {
            return Ok(Vec::new());
        }
        self.range(i64::MIN, hi)
    }

    /// Ids with key `> key` (or `>= key` when `inclusive`).
    pub fn above(&self, key: i64, inclusive: bool) -> PagerResult<Vec<EntryId>> {
        let lo = if inclusive { key } else { key.saturating_add(1) };
        if !inclusive && key == i64::MAX {
            return Ok(Vec::new());
        }
        self.range(lo, i64::MAX)
    }
}

fn write_pairs_page(
    pager: &Pager,
    pairs: impl Iterator<Item = (i64, u64)>,
    count: usize,
) -> PagerResult<netdir_pager::PageId> {
    let page = pager.pool().allocate();
    let guard = pager.pool().fetch_zeroed(page)?;
    guard.with_mut(|data| {
        data[..4].copy_from_slice(&(count as u32).to_le_bytes());
        let mut pos = PAGE_HEADER_BYTES;
        for (k, v) in pairs {
            data[pos..pos + 8].copy_from_slice(&k.to_le_bytes());
            data[pos + 8..pos + 16].copy_from_slice(&v.to_le_bytes());
            pos += PAIR_BYTES;
        }
    });
    Ok(page)
}

fn read_pairs_page(pager: &Pager, page: netdir_pager::PageId) -> PagerResult<Vec<(i64, u64)>> {
    let guard = pager.pool().fetch(page)?;
    guard.with(|data| {
        let count = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(count);
        let mut pos = PAGE_HEADER_BYTES;
        for _ in 0..count {
            if pos + PAIR_BYTES > data.len() {
                return Err(PagerError::CorruptPage {
                    page,
                    detail: "pair past page end".into(),
                });
            }
            let k = i64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
            let v = u64::from_le_bytes(data[pos + 8..pos + 16].try_into().unwrap());
            out.push((k, v));
            pos += PAIR_BYTES;
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_pager::tiny_pager;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(pairs: &[(i64, EntryId)]) -> (StaticBTree, Pager) {
        let pager = tiny_pager();
        let t = StaticBTree::build(&pager, pairs).unwrap();
        (t, pager)
    }

    #[test]
    fn empty_tree() {
        let (t, _) = build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.range(i64::MIN, i64::MAX).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn small_lookups() {
        let pairs: Vec<(i64, u64)> = vec![(1, 10), (2, 20), (2, 21), (5, 50)];
        let (t, _) = build(&pairs);
        assert_eq!(t.lookup(2).unwrap(), vec![20, 21]);
        assert_eq!(t.lookup(3).unwrap(), Vec::<u64>::new());
        assert_eq!(t.range(2, 5).unwrap(), vec![20, 21, 50]);
        assert_eq!(t.below(2, false).unwrap(), vec![10]);
        assert_eq!(t.below(2, true).unwrap(), vec![10, 20, 21]);
        assert_eq!(t.above(2, false).unwrap(), vec![50]);
        assert_eq!(t.above(2, true).unwrap(), vec![20, 21, 50]);
    }

    #[test]
    fn multilevel_tree_against_oracle() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut pairs: Vec<(i64, u64)> = (0..5000u64)
            .map(|id| (rng.gen_range(-1000..1000), id))
            .collect();
        pairs.sort();
        let (t, _) = build(&pairs);
        assert!(t.height() >= 2, "tree should have internal levels");
        for (lo, hi) in [(-1000, 1000), (0, 0), (-50, 70), (999, 1200), (-2000, -1001)] {
            let expect: Vec<u64> = pairs
                .iter()
                .filter(|&&(k, _)| k >= lo && k <= hi)
                .map(|&(_, id)| id)
                .collect();
            assert_eq!(t.range(lo, hi).unwrap(), expect, "range [{lo},{hi}]");
        }
    }

    #[test]
    fn range_io_is_logarithmic_plus_output() {
        let pairs: Vec<(i64, u64)> = (0..100_000u64).map(|i| (i as i64, i)).collect();
        let pager = tiny_pager();
        let t = StaticBTree::build(&pager, &pairs).unwrap();
        pager.flush().unwrap();
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        let hits = t.range(50_000, 50_010).unwrap();
        assert_eq!(hits.len(), 11);
        let io = pager.io();
        // Descent (height) + a couple of leaves; far less than a full scan.
        assert!(
            io.reads <= (t.height() as u64) + 3,
            "point-ish range read {} pages (height {})",
            io.reads,
            t.height()
        );
    }

    #[test]
    fn heavy_duplicates_spanning_many_leaves() {
        // Regression: duplicates of one key filling multiple leaves used
        // to make the descent land past the first leaf of the run.
        let mut pairs: Vec<(i64, u64)> = Vec::new();
        for id in 0..3000u64 {
            pairs.push(((id % 7) as i64 + 1, id));
        }
        pairs.sort();
        let (t, _) = build(&pairs);
        assert!(t.height() >= 2);
        for key in 1..=7i64 {
            let expect: Vec<u64> = pairs
                .iter()
                .filter(|&&(k, _)| k == key)
                .map(|&(_, id)| id)
                .collect();
            assert_eq!(t.lookup(key).unwrap(), expect, "key {key}");
        }
        let expect_3_5 = pairs.iter().filter(|&&(k, _)| (3..=5).contains(&k)).count();
        assert_eq!(t.range(3, 5).unwrap().len(), expect_3_5);
        assert_eq!(t.range(1, 7).unwrap().len(), 3000);
    }

    #[test]
    fn boundary_keys() {
        let pairs = vec![(i64::MIN, 1u64), (0, 2), (i64::MAX, 3)];
        let (t, _) = build(&pairs);
        assert_eq!(t.range(i64::MIN, i64::MAX).unwrap(), vec![1, 2, 3]);
        assert_eq!(t.below(i64::MIN, false).unwrap(), Vec::<u64>::new());
        assert_eq!(t.above(i64::MAX, false).unwrap(), Vec::<u64>::new());
        assert_eq!(t.below(i64::MIN, true).unwrap(), vec![1]);
        assert_eq!(t.above(i64::MAX, true).unwrap(), vec![3]);
    }
}
