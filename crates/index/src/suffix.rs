//! A suffix-array substring index.
//!
//! Substring wildcard filters (`commonName=*jag*`) need "suffix tree
//! indices \[23\]" per Section 4.1; a suffix array over the concatenation of
//! all indexed values gives the same query capability — all values
//! containing a pattern — in `O(p · log n)` probe time, with far simpler
//! construction (the McCreight → suffix-array substitution is recorded in
//! DESIGN.md §5).
//!
//! Layout: all canonical values are concatenated with `\x01` sentinels
//! (which cannot appear in canonical strings); each suffix remembers the
//! document (value occurrence) it starts in; suffixes are sorted once.

use netdir_model::EntryId;

/// Substring index over a set of (value, entry-id) occurrences.
#[derive(Debug)]
pub struct SuffixIndex {
    /// Concatenated text with sentinels.
    text: Vec<u8>,
    /// Sorted suffix start positions.
    suffixes: Vec<u32>,
    /// `doc_of[i]` = document index for text position `i`.
    doc_of: Vec<u32>,
    /// Document → entry id.
    doc_ids: Vec<EntryId>,
}

const SENTINEL: u8 = 0x01;

impl SuffixIndex {
    /// Build from `(canonical value, entry id)` occurrences.
    pub fn build<'a, I>(occurrences: I) -> SuffixIndex
    where
        I: IntoIterator<Item = (&'a str, EntryId)>,
    {
        let mut text = Vec::new();
        let mut doc_of = Vec::new();
        let mut doc_ids = Vec::new();
        for (value, id) in occurrences {
            let doc = doc_ids.len() as u32;
            doc_ids.push(id);
            for &b in value.as_bytes() {
                text.push(b);
                doc_of.push(doc);
            }
            text.push(SENTINEL);
            doc_of.push(doc);
        }
        let mut suffixes: Vec<u32> = (0..text.len() as u32).collect();
        suffixes.sort_unstable_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        SuffixIndex {
            text,
            suffixes,
            doc_of,
            doc_ids,
        }
    }

    /// Number of indexed occurrences.
    pub fn num_docs(&self) -> usize {
        self.doc_ids.len()
    }

    /// Entry ids having at least one indexed value that *contains*
    /// `pattern` (sorted, deduplicated). The empty pattern matches every
    /// document.
    pub fn contains(&self, pattern: &str) -> Vec<EntryId> {
        if pattern.is_empty() {
            let mut out = self.doc_ids.clone();
            out.sort_unstable();
            out.dedup();
            return out;
        }
        let pat = pattern.as_bytes();
        if pat.contains(&SENTINEL) {
            return Vec::new();
        }
        // Binary search for the range of suffixes having `pat` as prefix.
        use std::cmp::Ordering;
        let cmp_prefix = |s: u32| -> Ordering {
            let suf = &self.text[s as usize..];
            let n = pat.len().min(suf.len());
            match suf[..n].cmp(&pat[..n]) {
                Ordering::Equal if suf.len() >= pat.len() => Ordering::Equal,
                Ordering::Equal => Ordering::Less, // suffix is a proper prefix of pat
                o => o,
            }
        };
        let lo = self
            .suffixes
            .partition_point(|&s| cmp_prefix(s) == Ordering::Less);
        let hi = lo
            + self.suffixes[lo..].partition_point(|&s| cmp_prefix(s) == Ordering::Equal);
        let mut out: Vec<EntryId> = self.suffixes[lo..hi]
            .iter()
            .map(|&s| self.doc_ids[self.doc_of[s as usize] as usize])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SuffixIndex {
        SuffixIndex::build([
            ("h jagadish", 1),
            ("laks lakshmanan", 2),
            ("divesh srivastava", 3),
            ("tova milo", 4),
            ("jag", 5),
        ])
    }

    #[test]
    fn substring_hits() {
        let s = sample();
        assert_eq!(s.contains("jag"), vec![1, 5]);
        assert_eq!(s.contains("iva"), vec![3]);
        assert_eq!(s.contains("laks"), vec![2]);
        assert_eq!(s.contains("a"), vec![1, 2, 3, 4, 5]);
        assert_eq!(s.contains("zz"), Vec::<u64>::new());
    }

    #[test]
    fn no_cross_document_matches() {
        // "sh" ends doc 1 and "la" starts doc 2; "shla" must not match.
        let s = SuffixIndex::build([("jagadish", 1), ("laks", 2)]);
        assert_eq!(s.contains("shla"), Vec::<u64>::new());
        assert_eq!(s.contains("sh"), vec![1]);
    }

    #[test]
    fn whole_value_and_empty_pattern() {
        let s = sample();
        assert_eq!(s.contains("h jagadish"), vec![1]);
        assert_eq!(s.contains(""), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn duplicate_ids_dedup() {
        let s = SuffixIndex::build([("aaa", 9), ("aab", 9)]);
        assert_eq!(s.contains("aa"), vec![9]);
    }

    #[test]
    fn empty_index() {
        let s = SuffixIndex::build(std::iter::empty::<(&str, EntryId)>());
        assert_eq!(s.num_docs(), 0);
        assert_eq!(s.contains("x"), Vec::<u64>::new());
        assert_eq!(s.contains(""), Vec::<u64>::new());
    }

    #[test]
    fn pattern_longer_than_any_value() {
        let s = SuffixIndex::build([("ab", 1)]);
        assert_eq!(s.contains("abc"), Vec::<u64>::new());
    }
}
