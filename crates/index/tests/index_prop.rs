//! Property tests: index-accelerated atomic evaluation agrees with the
//! scope scan and with a direct in-memory oracle over the directory, for
//! every scope and filter shape.

use netdir_filter::atomic::IntOp;
use netdir_filter::{AtomicFilter, Scope};
use netdir_index::IndexedDirectory;
use netdir_model::{Directory, Dn, Entry, Rdn};
use netdir_pager::Pager;
use proptest::prelude::*;

/// Random forest with string, int, and heterogeneous attributes.
fn arb_directory() -> impl Strategy<Value = Directory> {
    proptest::collection::vec(
        (0u8..5, 0i64..6, proptest::bool::ANY, "[a-c]{1,2}"),
        1..30,
    )
    .prop_map(|specs| {
        let mut d = Directory::new();
        let root = Dn::parse("dc=t").unwrap();
        d.insert(Entry::builder(root.clone()).class("node").build().unwrap())
            .unwrap();
        let mut dns = vec![root];
        for (i, (parent_sel, weight, tag, name)) in specs.into_iter().enumerate() {
            let parent = dns[(parent_sel as usize) % dns.len()].clone();
            let child = parent.child(Rdn::single("n", format!("{name}{i}")).unwrap());
            let mut b = Entry::builder(child.clone())
                .class("node")
                .attr("weight", weight)
                .attr("name", name);
            if tag {
                b = b.attr("tag", "x");
            }
            d.insert(b.build().unwrap()).unwrap();
            dns.push(child);
        }
        d
    })
}

fn arb_filter() -> impl Strategy<Value = AtomicFilter> {
    prop_oneof![
        Just(AtomicFilter::True),
        Just(AtomicFilter::present("tag")),
        Just(AtomicFilter::present("ghost")),
        "[a-c]{1,2}".prop_map(|v| AtomicFilter::eq("name", v)),
        (
            prop_oneof![
                Just(IntOp::Lt),
                Just(IntOp::Le),
                Just(IntOp::Gt),
                Just(IntOp::Ge),
                Just(IntOp::Eq)
            ],
            0i64..6
        )
            .prop_map(|(op, v)| AtomicFilter::int_cmp("weight", op, v)),
        Just(netdir_filter::parse_atomic("name=*b*").unwrap()),
        Just(netdir_filter::parse_atomic("name=a*").unwrap()),
    ]
}

fn arb_scope() -> impl Strategy<Value = Scope> {
    prop_oneof![Just(Scope::Base), Just(Scope::One), Just(Scope::Sub)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn probe_scan_and_oracle_agree(
        dir in arb_directory(),
        filter in arb_filter(),
        scope in arb_scope(),
        base_sel in 0usize..8,
    ) {
        let pager = Pager::new(1024, 16);
        let idx = IndexedDirectory::build(&pager, &dir).unwrap();
        // Pick a base that exists (or the forest root).
        let bases: Vec<Dn> = std::iter::once(Dn::root())
            .chain(dir.iter_sorted().map(|e| e.dn().clone()))
            .collect();
        let base = bases[base_sel % bases.len()].clone();

        let oracle: Vec<String> = dir
            .iter_sorted()
            .filter(|e| scope.contains(&base, e.dn()) && filter.matches(e))
            .map(|e| e.dn().to_string())
            .collect();
        let probe: Vec<String> = idx
            .evaluate_atomic(&base, scope, &filter)
            .unwrap()
            .to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect();
        let scan: Vec<String> = idx
            .evaluate_scan(&base, scope, &filter)
            .unwrap()
            .to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect();
        prop_assert_eq!(&probe, &oracle, "probe vs oracle ({} ? {} ? {})", base, scope, filter);
        prop_assert_eq!(&scan, &oracle, "scan vs oracle ({} ? {} ? {})", base, scope, filter);
    }
}
