//! # netdir-workloads — directory data generators
//!
//! Everything the experiments and examples feed on:
//!
//! * [`dns`] — the upper levels of the directory information forest
//!   (Figure 1) and scalable dc-hierarchy generators.
//! * [`qos`] — the QoS policy directory of Example 2.1 / Figure 12
//!   (Chaudhury et al.'s SLA schema: `SLAPolicyRules`, `trafficProfile`,
//!   `policyValidityPeriod`, `SLADSAction`, priorities and exceptions),
//!   both the exact figure fragment and seeded generators, plus the
//!   packet-profile query workload.
//! * [`tops`] — the TOPS telephony directory of Example 2.2 / Figure 11
//!   (subscribers, query handling profiles, call appearances), fragment,
//!   generators, and the caller workload.
//! * [`synthetic`] — parameterized forests (depth, fanout, selectivity)
//!   and reference graphs (values-per-attribute `m`) for the complexity
//!   experiments E4–E9.
//!
//! All generators are deterministic given a seed.

pub mod dns;
pub mod qos;
pub mod schemas;
pub mod synthetic;
pub mod tops;

pub use dns::{dns_fig1, dns_tree};
pub use qos::{qos_fig12, qos_generate, Packet, QosParams};
pub use schemas::{qos_schema, tops_schema, validate_directory};
pub use synthetic::{ref_graph, synth_forest, RefGraphParams, SynthParams};
pub use tops::{tops_fig11, tops_generate, CallRequest, TopsParams};
