//! The DNS-shaped upper levels of the DIF (Section 3.3, Figure 1).

use netdir_model::{Directory, Dn, Entry};

/// The exact Figure 1 fragment: `dc=com` → `dc=att` → `dc=research` →
/// `dc=corona`, with the classes shown in the figure (`dcObject` on all,
/// `domain` additionally on `dc=att`).
pub fn dns_fig1() -> Directory {
    let mut d = Directory::new();
    let mut add = |dn: &str, dc: &str, also_domain: bool| {
        let mut b = Entry::builder(Dn::parse(dn).unwrap())
            .class("dcObject")
            .attr("dc", dc);
        if also_domain {
            b = b.class("domain");
        }
        d.insert(b.build().unwrap()).unwrap();
    };
    add("dc=com", "com", false);
    add("dc=att, dc=com", "att", true);
    add("dc=research, dc=att, dc=com", "research", false);
    add("dc=corona, dc=research, dc=att, dc=com", "corona", false);
    d
}

/// A scalable dc-hierarchy: a complete tree of the given `depth` and
/// `fanout` rooted at `dc=com`. Node `dc=dXXX-YY` where `XXX` is the
/// level and `YY` the child ordinal; deterministic (no randomness needed
/// for a complete tree).
///
/// Total entries: `(fanout^(depth+1) - 1) / (fanout - 1)` for fanout > 1.
pub fn dns_tree(depth: usize, fanout: usize) -> Directory {
    let mut d = Directory::new();
    let root = Dn::parse("dc=com").unwrap();
    d.insert(
        Entry::builder(root.clone())
            .class("dcObject")
            .attr("dc", "com")
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut frontier = vec![root];
    for level in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for parent in &frontier {
            for child in 0..fanout {
                let label = format!("d{level}-{child}");
                let dn = parent
                    .child(netdir_model::Rdn::single("dc", label.as_str()).unwrap());
                d.insert(
                    Entry::builder(dn.clone())
                        .class("dcObject")
                        .attr("dc", label.as_str())
                        .attr("level", (level + 1) as i64)
                        .build()
                        .unwrap(),
                )
                .unwrap();
                next.push(dn);
            }
        }
        frontier = next;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_the_figure() {
        let d = dns_fig1();
        assert_eq!(d.len(), 4);
        let att = d
            .lookup(&Dn::parse("dc=att, dc=com").unwrap())
            .unwrap();
        assert!(att.has_class(&"domain".into()));
        assert!(att.has_class(&"dcObject".into()));
        assert_eq!(att.first_str(&"dc".into()), Some("att"));
        let corona = Dn::parse("dc=corona, dc=research, dc=att, dc=com").unwrap();
        assert!(d.contains(&corona));
        // Chain is intact.
        assert!(d.parent_of(&corona).is_some());
    }

    #[test]
    fn tree_has_expected_size_and_shape() {
        let d = dns_tree(3, 3);
        assert_eq!(d.len(), 1 + 3 + 9 + 27);
        let root = Dn::parse("dc=com").unwrap();
        assert_eq!(d.children_of(&root).count(), 3);
        // Every non-root entry's parent exists.
        for e in d.iter_sorted() {
            if e.dn() != &root {
                assert!(d.parent_of(e.dn()).is_some(), "orphan {}", e.dn());
            }
        }
    }

    #[test]
    fn degenerate_trees() {
        assert_eq!(dns_tree(0, 5).len(), 1);
        assert_eq!(dns_tree(4, 1).len(), 5); // a chain
    }
}
