//! Parameterized synthetic forests and reference graphs for the
//! complexity experiments (E4–E9).
//!
//! The stack-algorithm experiments need forests whose size, shape, and
//! filter selectivity can be swept; the embedded-reference experiments
//! additionally sweep `m`, the number of DN values per attribute, which
//! Theorem 7.1's log term depends on.

use netdir_model::{Directory, Dn, Entry, Rdn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic forest.
#[derive(Debug, Clone, Copy)]
pub struct SynthParams {
    /// Total number of entries (approximate; the root counts).
    pub entries: usize,
    /// Maximum depth below the root.
    pub max_depth: usize,
    /// Fraction of entries tagged `kind=red` (the L1-side selectivity).
    pub red_fraction: f64,
    /// Fraction tagged `kind=blue` (the L2-side selectivity). Tags are
    /// independent; an entry can be both.
    pub blue_fraction: f64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            entries: 1000,
            max_depth: 8,
            red_fraction: 0.5,
            blue_fraction: 0.5,
        }
    }
}

/// Generate a random forest under `dc=synth`: each new entry picks a
/// uniformly random existing entry as its parent (subject to `max_depth`),
/// giving realistic bushy shapes. Entries carry `kind` tags (`red`,
/// `blue`) with the configured densities and a `weight` integer for
/// aggregate experiments.
pub fn synth_forest(params: SynthParams, seed: u64) -> Directory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Directory::new();
    let root = Dn::parse("dc=synth").unwrap();
    d.insert(
        Entry::builder(root.clone())
            .class("node")
            .attr("weight", 0i64)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut dns: Vec<Dn> = vec![root];
    for i in 1..params.entries {
        // Pick a parent not already at max depth.
        let parent = loop {
            let cand = &dns[rng.gen_range(0..dns.len())];
            if cand.depth() <= params.max_depth {
                break cand.clone();
            }
        };
        let child = parent.child(Rdn::single("n", format!("e{i}")).unwrap());
        let mut b = Entry::builder(child.clone())
            .class("node")
            .attr("weight", rng.gen_range(0..100i64));
        if rng.gen_bool(params.red_fraction) {
            b = b.attr("kind", "red");
        }
        if rng.gen_bool(params.blue_fraction) {
            b = b.attr("kind", "blue");
        }
        d.insert(b.build().unwrap()).unwrap();
        dns.push(child);
    }
    d
}

/// Parameters of a reference graph for the `vd`/`dv` experiments.
#[derive(Debug, Clone, Copy)]
pub struct RefGraphParams {
    /// Number of source entries (each holds references).
    pub sources: usize,
    /// Number of target entries.
    pub targets: usize,
    /// DN values of attribute `ref` per source — the `m` of Theorem 7.1.
    pub refs_per_source: usize,
}

impl Default for RefGraphParams {
    fn default() -> Self {
        RefGraphParams {
            sources: 500,
            targets: 500,
            refs_per_source: 2,
        }
    }
}

/// A flat two-zone directory: sources under `ou=src, dc=synth`, targets
/// under `ou=tgt, dc=synth`, each source holding `refs_per_source`
/// uniformly random `ref` values pointing at targets.
pub fn ref_graph(params: RefGraphParams, seed: u64) -> Directory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Directory::new();
    for s in ["dc=synth", "ou=src, dc=synth", "ou=tgt, dc=synth"] {
        d.insert(
            Entry::builder(Dn::parse(s).unwrap())
                .class("scaffold")
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    let target_dn =
        |i: usize| Dn::parse(&format!("cn=t{i:06}, ou=tgt, dc=synth")).unwrap();
    for t in 0..params.targets {
        d.insert(
            Entry::builder(target_dn(t))
                .class("target")
                .attr("weight", (t % 100) as i64)
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    for s in 0..params.sources {
        let refs: Vec<Dn> = (0..params.refs_per_source)
            .map(|_| target_dn(rng.gen_range(0..params.targets.max(1))))
            .collect();
        d.insert(
            Entry::builder(Dn::parse(&format!("cn=s{s:06}, ou=src, dc=synth")).unwrap())
                .class("source")
                .attr("weight", (s % 100) as i64)
                .attr_values("ref", refs)
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_respects_params() {
        let params = SynthParams {
            entries: 500,
            max_depth: 4,
            red_fraction: 0.5,
            blue_fraction: 0.2,
        };
        let d = synth_forest(params, 1);
        assert_eq!(d.len(), 500);
        let mut reds = 0;
        for e in d.iter_sorted() {
            assert!(e.dn().depth() <= params.max_depth + 1);
            if e.values(&"kind".into()).any(|v| v.as_str() == Some("red")) {
                reds += 1;
            }
            // Parent chain intact (parent-attachment construction).
            if e.dn().depth() > 1 {
                assert!(d.parent_of(e.dn()).is_some());
            }
        }
        // ~50% ± generous slack.
        assert!((150..350).contains(&reds), "reds = {reds}");
        // Determinism.
        assert_eq!(synth_forest(params, 1).len(), d.len());
    }

    #[test]
    fn ref_graph_shape() {
        let params = RefGraphParams {
            sources: 40,
            targets: 20,
            refs_per_source: 3,
        };
        let d = ref_graph(params, 9);
        assert_eq!(d.len(), 3 + 40 + 20);
        for e in d.iter_sorted() {
            if e.has_class(&"source".into()) {
                let n = e.values(&"ref".into()).count();
                assert!((1..=3).contains(&n), "{} refs on {}", n, e.dn());
                for v in e.values(&"ref".into()) {
                    assert!(d.contains(v.as_dn().unwrap()));
                }
            }
        }
    }
}
