//! The TOPS telephony directory (Example 2.2, Figure 11).
//!
//! Each subscriber owns a personal subtree under `ou=userProfiles`: the
//! subscriber profile entry, its prioritized **query handling profiles**
//! (QHPs — who may reach them, when), and per-QHP **call appearances**
//! (terminals, prioritized). Lower `priority` value = higher priority,
//! as in the figure (the weekend QHP with priority 1 beats working hours
//! with priority 2).
//!
//! Time-of-day values are `hhmm` integers (`0830`, `1730`), days of week
//! 1–7, as drawn.

use netdir_model::{Directory, Dn, Entry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where subscriber subtrees live, as in Figure 11.
pub const TOPS_BASE: &str = "ou=userProfiles, dc=research, dc=att, dc=com";

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

/// DN of a subscriber's profile entry.
pub fn subscriber_dn(uid: &str) -> Dn {
    dn(&format!("uid={uid}, {TOPS_BASE}"))
}
/// DN of a subscriber's QHP.
pub fn qhp_dn(uid: &str, qhp: &str) -> Dn {
    dn(&format!("QHPName={qhp}, uid={uid}, {TOPS_BASE}"))
}
/// DN of a call appearance under a QHP.
pub fn ca_dn(uid: &str, qhp: &str, number: &str) -> Dn {
    dn(&format!("CANumber={number}, QHPName={qhp}, uid={uid}, {TOPS_BASE}"))
}

fn scaffold() -> Directory {
    let mut d = Directory::new();
    for (s, classes) in [
        ("dc=com", vec!["dcObject"]),
        ("dc=att, dc=com", vec!["dcObject", "domain"]),
        ("dc=research, dc=att, dc=com", vec!["dcObject"]),
    ] {
        let mut b = Entry::builder(dn(s));
        for c in classes {
            b = b.class(c);
        }
        d.insert(b.build().unwrap()).unwrap();
    }
    d.insert(
        Entry::builder(dn(TOPS_BASE))
            .class("organizationalUnit")
            .build()
            .unwrap(),
    )
    .unwrap();
    d
}

/// The Figure 11 fragment: subscriber `jag` with his weekend QHP
/// (priority 1, days 6–7, voice-mail appearance) and working-hours QHP
/// (priority 2, 08:30–17:30, office phone + secretary).
pub fn tops_fig11() -> Directory {
    let mut d = scaffold();
    d.insert(
        Entry::builder(subscriber_dn("jag"))
            .class("inetOrgPerson")
            .class("TOPSSubscriber")
            .attr("commonName", "h jagadish")
            .attr("surName", "jagadish")
            .build()
            .unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(qhp_dn("jag", "weekend"))
            .class("QHP")
            .attr_values("daysOfWeek", [6i64, 7i64])
            .attr("priority", 1i64)
            .build()
            .unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(qhp_dn("jag", "workinghours"))
            .class("QHP")
            .attr("startTime", 830i64)
            .attr("endTime", 1730i64)
            .attr("priority", 2i64)
            .build()
            .unwrap(),
    )
    .unwrap();
    // Working-hours appearances, as drawn.
    d.insert(
        Entry::builder(ca_dn("jag", "workinghours", "9733608750"))
            .class("callAppearance")
            .attr("priority", 1i64)
            .attr("timeOut", 30i64)
            .attr("CAType", "phone")
            .build()
            .unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(ca_dn("jag", "workinghours", "9733608751"))
            .class("callAppearance")
            .attr("priority", 2i64)
            .attr("timeOut", 20i64)
            .attr("description", "secretary")
            .attr("CAType", "phone")
            .build()
            .unwrap(),
    )
    .unwrap();
    // The weekend voice-messaging mailbox the text mentions.
    d.insert(
        Entry::builder(ca_dn("jag", "weekend", "9735550000"))
            .class("callAppearance")
            .attr("priority", 1i64)
            .attr("timeOut", 45i64)
            .attr("CAType", "voicemail")
            .build()
            .unwrap(),
    )
    .unwrap();
    d
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TopsParams {
    /// Number of subscribers.
    pub subscribers: usize,
    /// Max QHPs per subscriber (≥ 1).
    pub qhps_per_subscriber: usize,
    /// Max call appearances per QHP (≥ 1).
    pub cas_per_qhp: usize,
}

impl Default for TopsParams {
    fn default() -> Self {
        TopsParams {
            subscribers: 30,
            qhps_per_subscriber: 4,
            cas_per_qhp: 3,
        }
    }
}

/// Generate a subscriber population under the Figure 11 namespace.
pub fn tops_generate(params: TopsParams, seed: u64) -> Directory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = scaffold();
    for s in 0..params.subscribers {
        let uid = format!("user{s:04}");
        d.insert(
            Entry::builder(subscriber_dn(&uid))
                .class("inetOrgPerson")
                .class("TOPSSubscriber")
                .attr("commonName", format!("User {s}"))
                .attr("surName", format!("family{:02}", s % 20))
                .build()
                .unwrap(),
        )
        .unwrap();
        let n_qhps = 1 + rng.gen_range(0..params.qhps_per_subscriber.max(1));
        for q in 0..n_qhps {
            let qhp = format!("qhp{q}");
            let mut b = Entry::builder(qhp_dn(&uid, &qhp))
                .class("QHP")
                .attr("priority", (q + 1) as i64);
            // Alternate between time-window and day-of-week profiles —
            // the heterogeneity §3.5 calls out.
            if q % 2 == 0 {
                let start = rng.gen_range(6..12) * 100;
                b = b.attr("startTime", start).attr("endTime", start + 900);
            } else {
                b = b.attr_values(
                    "daysOfWeek",
                    (1..=7i64).filter(|d| (d + q as i64) % 3 == 0),
                );
            }
            d.insert(b.build().unwrap()).unwrap();
            let n_cas = 1 + rng.gen_range(0..params.cas_per_qhp.max(1));
            for c in 0..n_cas {
                d.insert(
                    Entry::builder(ca_dn(
                        &uid,
                        &qhp,
                        &format!("973{s:04}{q}{c:02}"),
                    ))
                    .class("callAppearance")
                    .attr("priority", (c + 1) as i64)
                    .attr("timeOut", 15 + (c as i64) * 5)
                    .attr("CAType", if c == 0 { "phone" } else { "voicemail" })
                    .build()
                    .unwrap(),
                )
                .unwrap();
            }
        }
    }
    d
}

/// A call request (Example 2.2's query side).
#[derive(Debug, Clone)]
pub struct CallRequest {
    /// Callee's uid.
    pub callee: String,
    /// Time of day, `hhmm`.
    pub time: i64,
    /// Day of week, 1–7.
    pub day_of_week: i64,
}

impl CallRequest {
    /// Random request against a generated population.
    pub fn random(rng: &mut StdRng, subscribers: usize) -> CallRequest {
        CallRequest {
            callee: format!("user{:04}", rng.gen_range(0..subscribers)),
            time: rng.gen_range(0..24) * 100 + rng.gen_range(0..60),
            day_of_week: rng.gen_range(1..=7),
        }
    }
}

/// Does a QHP match a call request? A QHP with a time window matches when
/// the time falls inside it; one with days-of-week when the day is
/// listed; one with neither matches always (the §3.5 heterogeneity).
pub fn qhp_matches(qhp: &Entry, req: &CallRequest) -> bool {
    let time_ok = match (
        qhp.first_int(&"startTime".into()),
        qhp.first_int(&"endTime".into()),
    ) {
        (Some(s), Some(e)) => s <= req.time && req.time <= e,
        (Some(s), None) => s <= req.time,
        (None, Some(e)) => req.time <= e,
        (None, None) => true,
    };
    let days: Vec<i64> = qhp
        .values(&"daysOfWeek".into())
        .filter_map(|v| v.as_int())
        .collect();
    let day_ok = days.is_empty() || days.contains(&req.day_of_week);
    time_ok && day_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_structure() {
        let d = tops_fig11();
        let jag = d.lookup(&subscriber_dn("jag")).unwrap();
        assert!(jag.has_class(&"TOPSSubscriber".into()));
        assert!(jag.has_class(&"inetOrgPerson".into()));
        // QHPs are children of the subscriber.
        let qhps: Vec<&Entry> = d
            .children_of(&subscriber_dn("jag"))
            .collect();
        assert_eq!(qhps.len(), 2);
        let weekend = d.lookup(&qhp_dn("jag", "weekend")).unwrap();
        assert_eq!(weekend.first_int(&"priority".into()), Some(1));
        // CAs are children of QHPs.
        assert_eq!(d.children_of(&qhp_dn("jag", "workinghours")).count(), 2);
        assert_eq!(d.children_of(&qhp_dn("jag", "weekend")).count(), 1);
    }

    #[test]
    fn qhp_matching_semantics() {
        let d = tops_fig11();
        let weekend = d.lookup(&qhp_dn("jag", "weekend")).unwrap();
        let working = d.lookup(&qhp_dn("jag", "workinghours")).unwrap();
        let saturday_noon = CallRequest {
            callee: "jag".into(),
            time: 1200,
            day_of_week: 6,
        };
        assert!(qhp_matches(weekend, &saturday_noon));
        assert!(qhp_matches(working, &saturday_noon)); // time in window
        let tuesday_night = CallRequest {
            callee: "jag".into(),
            time: 2300,
            day_of_week: 2,
        };
        assert!(!qhp_matches(weekend, &tuesday_night));
        assert!(!qhp_matches(working, &tuesday_night));
    }

    #[test]
    fn generator_shape() {
        let params = TopsParams::default();
        let d = tops_generate(params, 7);
        let again = tops_generate(params, 7);
        assert_eq!(d.len(), again.len());
        // Every subscriber has at least one QHP with at least one CA.
        for s in 0..params.subscribers {
            let uid = format!("user{s:04}");
            let qhps: Vec<_> = d.children_of(&subscriber_dn(&uid)).collect();
            assert!(!qhps.is_empty(), "{uid} has no QHPs");
            for q in &qhps {
                assert!(
                    d.children_of(q.dn()).count() >= 1,
                    "{} has no CAs",
                    q.dn()
                );
            }
        }
    }
}
