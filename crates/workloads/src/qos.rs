//! The QoS policy directory (Example 2.1, Figure 12).
//!
//! Based on the Chaudhury et al. SLA schema \[11\]: a repository of
//! policies, each with traffic-profile references (`SLATPRef`), validity-
//! period references (`SLAPVPRef`), an action reference (`SLADSActRef`),
//! a priority (`SLARulePriority`, smaller = higher priority) and
//! exception references (`SLAExceptionRef`).
//!
//! Conventions for the synthetic values: times are `YYYYMMDDhhmmss`
//! integers as in the figure; days of week are 1–7; source addresses are
//! dotted quads with `*` wildcards matched textually.

use netdir_model::{Directory, Dn, Entry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where the policy subtree lives, as in Figure 12.
pub const QOS_BASE: &str = "ou=networkPolicies, dc=research, dc=att, dc=com";

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

fn ou(d: &mut Directory, name: &str, parent: &str) {
    d.insert(
        Entry::builder(dn(&format!("ou={name}, {parent}")))
            .class("organizationalUnit")
            .build()
            .unwrap(),
    )
    .unwrap();
}

/// DN helpers for the four entry kinds.
pub fn policy_dn(name: &str) -> Dn {
    dn(&format!("SLAPolicyName={name}, ou=SLAPolicyRules, {QOS_BASE}"))
}
/// DN of a traffic profile entry.
pub fn profile_dn(name: &str) -> Dn {
    dn(&format!("TPName={name}, ou=trafficProfile, {QOS_BASE}"))
}
/// DN of a validity period entry.
pub fn period_dn(name: &str) -> Dn {
    dn(&format!("PVPName={name}, ou=policyValidityPeriod, {QOS_BASE}"))
}
/// DN of an action entry.
pub fn action_dn(name: &str) -> Dn {
    dn(&format!("DSActionName={name}, ou=SLADSAction, {QOS_BASE}"))
}

fn scaffold() -> Directory {
    let mut d = Directory::new();
    d.insert(
        Entry::builder(dn("dc=com")).class("dcObject").build().unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(dn("dc=att, dc=com"))
            .class("dcObject")
            .class("domain")
            .build()
            .unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(dn("dc=research, dc=att, dc=com"))
            .class("dcObject")
            .build()
            .unwrap(),
    )
    .unwrap();
    ou(&mut d, "networkPolicies", "dc=research, dc=att, dc=com");
    for child in ["SLAPolicyRules", "trafficProfile", "policyValidityPeriod", "SLADSAction"] {
        ou(&mut d, child, QOS_BASE);
    }
    d
}

/// The Figure 12 fragment: the `dso` policy with its two traffic
/// profiles, two validity periods, action, and the two exception policies
/// the figure mentions but does not draw (`fatt`, `mail`, same shape).
pub fn qos_fig12() -> Directory {
    let mut d = scaffold();

    // Traffic profiles.
    d.insert(
        Entry::builder(profile_dn("lsplitOff"))
            .class("trafficProfile")
            .attr("SourceAddress", "204.178.16.*")
            .build()
            .unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(profile_dn("csplitOff"))
            .class("trafficProfile")
            .attr("SourceAddress", "207.140.*.*")
            .build()
            .unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(profile_dn("smtp"))
            .class("trafficProfile")
            .attr("SourceAddress", "*.*.*.*")
            .attr("SourcePort", 25i64)
            .build()
            .unwrap(),
    )
    .unwrap();

    // Validity periods (figure's formats).
    d.insert(
        Entry::builder(period_dn("1998weekend"))
            .class("policyValidityPeriod")
            .attr("PVStartTime", 19980101060000i64)
            .attr("PVEndTime", 19981231180000i64)
            .attr_values("PVDayOfWeek", [6i64, 7i64])
            .build()
            .unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(period_dn("1998thanksgiving"))
            .class("policyValidityPeriod")
            .attr("PVStartTime", 19981126000000i64)
            .attr("PVEndTime", 19981126235959i64)
            .attr_values("PVDayOfWeek", [1i64, 2, 3, 4, 5, 6, 7])
            .build()
            .unwrap(),
    )
    .unwrap();

    // Actions.
    d.insert(
        Entry::builder(action_dn("denyAll"))
            .class("SLADSAction")
            .attr("DSPermission", "Deny")
            .attr("DSInProfilePeakRate", 20i64)
            .attr("DSDropPriority", 2i64)
            .build()
            .unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(action_dn("allowMail"))
            .class("SLADSAction")
            .attr("DSPermission", "Allow")
            .attr("DSInProfilePeakRate", 80i64)
            .attr("DSDropPriority", 1i64)
            .build()
            .unwrap(),
    )
    .unwrap();

    // The dso policy exactly as drawn.
    d.insert(
        Entry::builder(policy_dn("dso"))
            .class("SLAPolicyRules")
            .attr("SLAPolicyScope", "DataTraffic")
            .attr("SLARulePriority", 2i64)
            .attr_values(
                "SLAExceptionRef",
                [policy_dn("fatt"), policy_dn("mail")],
            )
            .attr_values(
                "SLATPRef",
                [profile_dn("lsplitOff"), profile_dn("csplitOff")],
            )
            .attr_values(
                "SLAPVPRef",
                [period_dn("1998weekend"), period_dn("1998thanksgiving")],
            )
            .attr("SLADSActRef", action_dn("denyAll"))
            .build()
            .unwrap(),
    )
    .unwrap();
    // Its exceptions (same priority, per the exception semantics of §2.1).
    d.insert(
        Entry::builder(policy_dn("mail"))
            .class("SLAPolicyRules")
            .attr("SLAPolicyScope", "DataTraffic")
            .attr("SLARulePriority", 2i64)
            .attr("SLATPRef", profile_dn("smtp"))
            .attr("SLAPVPRef", period_dn("1998weekend"))
            .attr("SLADSActRef", action_dn("allowMail"))
            .build()
            .unwrap(),
    )
    .unwrap();
    d.insert(
        Entry::builder(policy_dn("fatt"))
            .class("SLAPolicyRules")
            .attr("SLAPolicyScope", "DataTraffic")
            .attr("SLARulePriority", 2i64)
            .attr("SLATPRef", profile_dn("csplitOff"))
            .attr("SLAPVPRef", period_dn("1998thanksgiving"))
            .attr("SLADSActRef", action_dn("allowMail"))
            .build()
            .unwrap(),
    )
    .unwrap();
    d
}

/// Generator parameters for a synthetic policy repository.
#[derive(Debug, Clone, Copy)]
pub struct QosParams {
    /// Number of policies.
    pub policies: usize,
    /// Number of traffic profiles.
    pub profiles: usize,
    /// Number of validity periods.
    pub periods: usize,
    /// Number of actions.
    pub actions: usize,
    /// Max traffic-profile references per policy (≥ 1).
    pub refs_per_policy: usize,
    /// Probability a policy names an exception.
    pub exception_rate: f64,
    /// Distinct priority levels (values 1..=levels).
    pub priority_levels: i64,
}

impl Default for QosParams {
    fn default() -> Self {
        QosParams {
            policies: 50,
            profiles: 20,
            periods: 8,
            actions: 6,
            refs_per_policy: 3,
            exception_rate: 0.3,
            priority_levels: 4,
        }
    }
}

/// Generate a policy repository under the Figure 12 namespace.
pub fn qos_generate(params: QosParams, seed: u64) -> Directory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = scaffold();

    for i in 0..params.profiles {
        // Profiles match disjoint /24-ish prefixes plus some port-only
        // profiles for overlap.
        let b = Entry::builder(profile_dn(&format!("tp{i:04}"))).class("trafficProfile");
        let b = if i % 5 == 4 {
            b.attr("SourceAddress", "*.*.*.*")
                .attr("SourcePort", (i % 1024) as i64)
        } else {
            b.attr(
                "SourceAddress",
                format!("10.{}.{}.*", i / 250, i % 250),
            )
        };
        d.insert(b.build().unwrap()).unwrap();
    }
    for i in 0..params.periods {
        // 10-day windows staggered across the month, most weekdays
        // allowed — realistic coverage so that generated packets actually
        // fall under policy (the enforcement entities of §2.1 mostly see
        // covered traffic).
        let start_day = 1 + (i * 3) % 18;
        d.insert(
            Entry::builder(period_dn(&format!("pvp{i:03}")))
                .class("policyValidityPeriod")
                .attr("PVStartTime", 19980100000000 + (start_day as i64) * 1_000_000)
                .attr(
                    "PVEndTime",
                    19980100000000 + (start_day as i64 + 10) * 1_000_000,
                )
                .attr_values(
                    "PVDayOfWeek",
                    (1..=7i64).filter(|day| (day + i as i64) % 7 != 0),
                )
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    for i in 0..params.actions {
        d.insert(
            Entry::builder(action_dn(&format!("act{i:03}")))
                .class("SLADSAction")
                .attr("DSPermission", if i % 3 == 0 { "Deny" } else { "Allow" })
                .attr("DSInProfilePeakRate", (10 + i * 10) as i64)
                .attr("DSDropPriority", (i % 3) as i64)
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    for i in 0..params.policies {
        let n_refs = 1 + rng.gen_range(0..params.refs_per_policy.max(1));
        let tp_refs: Vec<Dn> = (0..n_refs)
            .map(|_| profile_dn(&format!("tp{:04}", rng.gen_range(0..params.profiles))))
            .collect();
        let mut b = Entry::builder(policy_dn(&format!("pol{i:05}")))
            .class("SLAPolicyRules")
            .attr("SLAPolicyScope", "DataTraffic")
            .attr(
                "SLARulePriority",
                rng.gen_range(1..=params.priority_levels),
            )
            .attr_values("SLATPRef", tp_refs)
            .attr(
                "SLAPVPRef",
                period_dn(&format!("pvp{:03}", rng.gen_range(0..params.periods))),
            )
            .attr(
                "SLADSActRef",
                action_dn(&format!("act{:03}", rng.gen_range(0..params.actions))),
            );
        if i > 0 && rng.gen_bool(params.exception_rate) {
            b = b.attr(
                "SLAExceptionRef",
                policy_dn(&format!("pol{:05}", rng.gen_range(0..i))),
            );
        }
        d.insert(b.build().unwrap()).unwrap();
    }
    d
}

/// A packet as presented by an enforcement entity (Example 2.1's query
/// side: packet attributes plus the current time).
#[derive(Debug, Clone)]
pub struct Packet {
    /// Dotted-quad source address.
    pub source_address: String,
    /// Source port.
    pub source_port: i64,
    /// `YYYYMMDDhhmmss` timestamp.
    pub time: i64,
    /// Day of week, 1–7.
    pub day_of_week: i64,
}

impl Packet {
    /// Random packet over the generator's address space, biased so that a
    /// meaningful fraction of packets hit some profile (the enforcement
    /// entities of Example 2.1 mostly see traffic *covered* by policy).
    pub fn random(rng: &mut StdRng) -> Packet {
        Packet {
            source_address: format!(
                "10.{}.{}.{}",
                rng.gen_range(0..2),
                rng.gen_range(0..30),
                rng.gen_range(0..256)
            ),
            source_port: rng.gen_range(0..30),
            time: 19980100000000 + rng.gen_range(1..28i64) * 1_000_000,
            day_of_week: rng.gen_range(1..=7),
        }
    }

    /// Does a dotted-quad wildcard pattern (e.g. `204.178.16.*`) match
    /// this packet's source address?
    pub fn address_matches(&self, pattern: &str) -> bool {
        let pat: Vec<&str> = pattern.split('.').collect();
        let addr: Vec<&str> = self.source_address.split('.').collect();
        pat.len() == addr.len()
            && pat
                .iter()
                .zip(&addr)
                .all(|(p, a)| *p == "*" || p == a)
    }
}

/// Does a traffic profile entry match a packet?
pub fn profile_matches(profile: &Entry, packet: &Packet) -> bool {
    let addr_ok = match profile.first_str(&"SourceAddress".into()) {
        Some(pattern) => packet.address_matches(pattern),
        None => true,
    };
    let port_ok = match profile.first_int(&"SourcePort".into()) {
        Some(p) => p == packet.source_port,
        None => true,
    };
    addr_ok && port_ok
}

/// Does a validity period entry cover a packet's time?
pub fn period_matches(period: &Entry, packet: &Packet) -> bool {
    let start = period.first_int(&"PVStartTime".into()).unwrap_or(i64::MIN);
    let end = period.first_int(&"PVEndTime".into()).unwrap_or(i64::MAX);
    let day_ok = period
        .values(&"PVDayOfWeek".into())
        .filter_map(|v| v.as_int())
        .any(|d| d == packet.day_of_week)
        || !period.has_attr(&"PVDayOfWeek".into());
    start <= packet.time && packet.time <= end && day_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_structure() {
        let d = qos_fig12();
        let dso = d.lookup(&policy_dn("dso")).unwrap();
        assert_eq!(dso.first_int(&"SLARulePriority".into()), Some(2));
        assert_eq!(dso.values(&"SLATPRef".into()).count(), 2);
        assert_eq!(dso.values(&"SLAPVPRef".into()).count(), 2);
        assert_eq!(dso.values(&"SLAExceptionRef".into()).count(), 2);
        assert_eq!(
            dso.first_dn(&"SLADSActRef".into()),
            Some(&action_dn("denyAll"))
        );
        // Referenced entries all exist.
        for attr in ["SLATPRef", "SLAPVPRef", "SLAExceptionRef", "SLADSActRef"] {
            for v in dso.values(&attr.into()) {
                let target = v.as_dn().unwrap();
                assert!(d.contains(target), "{attr} dangling: {target}");
            }
        }
        let wk = d.lookup(&period_dn("1998weekend")).unwrap();
        let days: Vec<i64> = wk
            .values(&"PVDayOfWeek".into())
            .filter_map(|v| v.as_int())
            .collect();
        assert_eq!(days, vec![6, 7]);
    }

    #[test]
    fn generator_is_deterministic_and_closed() {
        let a = qos_generate(QosParams::default(), 42);
        let b = qos_generate(QosParams::default(), 42);
        assert_eq!(a.len(), b.len());
        let c = qos_generate(QosParams::default(), 43);
        assert_eq!(a.len(), c.len()); // same sizes, different refs
        // Every reference resolves.
        for e in a.iter_sorted() {
            for attr in ["SLATPRef", "SLAPVPRef", "SLADSActRef", "SLAExceptionRef"] {
                for v in e.values(&attr.into()) {
                    assert!(a.contains(v.as_dn().unwrap()));
                }
            }
        }
    }

    #[test]
    fn packet_matching() {
        let d = qos_fig12();
        let lsplit = d.lookup(&profile_dn("lsplitOff")).unwrap();
        let smtp = d.lookup(&profile_dn("smtp")).unwrap();
        let pkt = Packet {
            source_address: "204.178.16.5".into(),
            source_port: 80,
            time: 19980606120000,
            day_of_week: 6,
        };
        assert!(profile_matches(lsplit, &pkt));
        assert!(!profile_matches(smtp, &pkt)); // port 80 ≠ 25
        let mail_pkt = Packet {
            source_port: 25,
            ..pkt.clone()
        };
        assert!(profile_matches(smtp, &mail_pkt));

        let wk = d.lookup(&period_dn("1998weekend")).unwrap();
        assert!(period_matches(wk, &pkt)); // Saturday in range
        let weekday = Packet {
            day_of_week: 3,
            ..pkt
        };
        assert!(!period_matches(wk, &weekday));
    }

    #[test]
    fn address_wildcards() {
        let p = Packet {
            source_address: "207.140.3.9".into(),
            source_port: 0,
            time: 0,
            day_of_week: 1,
        };
        assert!(p.address_matches("207.140.*.*"));
        assert!(p.address_matches("*.*.*.*"));
        assert!(!p.address_matches("207.141.*.*"));
        assert!(!p.address_matches("207.140.*")); // wrong arity
    }
}
