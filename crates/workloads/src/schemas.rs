//! Declared schemas for the two DEN applications (Definition 3.1 made
//! concrete).
//!
//! The generators build entries directly; these schemas state what the
//! figures imply — attribute types shared across classes (σ) and
//! per-class allowed attributes (ψ) — so that schema-checked directories
//! can be built from the same data (`qos_fig12_checked`,
//! `tops_fig11_checked`) and the validation machinery is exercised on
//! realistic content.

use netdir_model::{Directory, ModelResult, Schema, TypeName};

/// The Figure 12 / Chaudhury-et-al. SLA schema.
pub fn qos_schema() -> Schema {
    Schema::builder()
        // Shared infrastructure attributes.
        .attr("dc", TypeName::Str)
        .attr("ou", TypeName::Str)
        // Policy rules.
        .attr("SLAPolicyName", TypeName::Str)
        .attr("SLAPolicyScope", TypeName::Str)
        .attr("SLARulePriority", TypeName::Int)
        .attr("SLAExceptionRef", TypeName::Dn)
        .attr("SLATPRef", TypeName::Dn)
        .attr("SLAPVPRef", TypeName::Dn)
        .attr("SLADSActRef", TypeName::Dn)
        // Traffic profiles.
        .attr("TPName", TypeName::Str)
        .attr("SourceAddress", TypeName::Str)
        .attr("SourcePort", TypeName::Int)
        // Validity periods.
        .attr("PVPName", TypeName::Str)
        .attr("PVStartTime", TypeName::Int)
        .attr("PVEndTime", TypeName::Int)
        .attr("PVDayOfWeek", TypeName::Int)
        // Actions.
        .attr("DSActionName", TypeName::Str)
        .attr("DSPermission", TypeName::Str)
        .attr("DSInProfilePeakRate", TypeName::Int)
        .attr("DSDropPriority", TypeName::Int)
        .class("dcObject", ["dc"])
        .class("domain", ["dc"])
        .class("organizationalUnit", ["ou"])
        .class(
            "SLAPolicyRules",
            [
                "SLAPolicyName",
                "SLAPolicyScope",
                "SLARulePriority",
                "SLAExceptionRef",
                "SLATPRef",
                "SLAPVPRef",
                "SLADSActRef",
            ],
        )
        .class("trafficProfile", ["TPName", "SourceAddress", "SourcePort"])
        .class(
            "policyValidityPeriod",
            ["PVPName", "PVStartTime", "PVEndTime", "PVDayOfWeek"],
        )
        .class(
            "SLADSAction",
            [
                "DSActionName",
                "DSPermission",
                "DSInProfilePeakRate",
                "DSDropPriority",
            ],
        )
        .build()
        .expect("QoS schema is well formed")
}

/// The Figure 11 TOPS schema.
pub fn tops_schema() -> Schema {
    Schema::builder()
        .attr("dc", TypeName::Str)
        .attr("ou", TypeName::Str)
        .attr("uid", TypeName::Str)
        .attr("commonName", TypeName::Str)
        .attr("surName", TypeName::Str)
        .attr("QHPName", TypeName::Str)
        .attr("startTime", TypeName::Int)
        .attr("endTime", TypeName::Int)
        .attr("daysOfWeek", TypeName::Int)
        .attr("priority", TypeName::Int)
        .attr("CANumber", TypeName::Str)
        .attr("CAType", TypeName::Str)
        .attr("timeOut", TypeName::Int)
        .attr("description", TypeName::Str)
        .class("dcObject", ["dc"])
        .class("domain", ["dc"])
        .class("organizationalUnit", ["ou"])
        .class("inetOrgPerson", ["uid", "commonName", "surName"])
        .class("TOPSSubscriber", ["uid"])
        .class(
            "QHP",
            ["QHPName", "startTime", "endTime", "daysOfWeek", "priority"],
        )
        .class(
            "callAppearance",
            ["CANumber", "CAType", "priority", "timeOut", "description"],
        )
        .build()
        .expect("TOPS schema is well formed")
}

/// Validate every entry of `dir` against `schema`, returning the first
/// violation (if any).
pub fn validate_directory(dir: &Directory, schema: &Schema) -> ModelResult<()> {
    for e in dir.iter_sorted() {
        e.validate(schema)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{qos_fig12, qos_generate, tops_fig11, tops_generate, QosParams, TopsParams};

    #[test]
    fn figure_12_conforms_to_the_sla_schema() {
        validate_directory(&qos_fig12(), &qos_schema()).unwrap();
    }

    #[test]
    fn figure_11_conforms_to_the_tops_schema() {
        validate_directory(&tops_fig11(), &tops_schema()).unwrap();
    }

    #[test]
    fn generated_workloads_conform_too() {
        validate_directory(&qos_generate(QosParams::default(), 3), &qos_schema()).unwrap();
        validate_directory(&tops_generate(TopsParams::default(), 3), &tops_schema())
            .unwrap();
    }

    #[test]
    fn schema_catches_violations() {
        use netdir_model::{Dn, Entry};
        let mut d = qos_fig12();
        // A policy with a string priority violates σ.
        d.insert(
            Entry::builder(Dn::parse("SLAPolicyName=bad, dc=com").unwrap())
                .class("SLAPolicyRules")
                .attr("SLARulePriority", "high")
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(validate_directory(&d, &qos_schema()).is_err());
    }

    #[test]
    fn heterogeneous_class_sets_validate() {
        // §3.5: an entry in both inetOrgPerson and TOPSSubscriber needs
        // no common superclass — validation takes the union of ψ.
        use netdir_model::{Dn, Entry};
        let e = Entry::builder(Dn::parse("uid=x, dc=com").unwrap())
            .class("inetOrgPerson")
            .class("TOPSSubscriber")
            .attr("surName", "x")
            .build()
            .unwrap();
        e.validate(&tops_schema()).unwrap();
    }
}
