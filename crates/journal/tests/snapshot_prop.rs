//! Snapshot isolation under concurrency and under random histories.
//!
//! The contract: a pinned snapshot is an immutable view of one epoch —
//! later writes never leak into it, batches are all-or-nothing from any
//! reader's perspective, and the whole query stack (sequential and
//! parallel evaluation) answers from the pinned pages alone.

use netdir_filter::{AtomicFilter, Scope};
use netdir_journal::{JournalStore, Mutation, MutationBatch};
use netdir_model::{Directory, Dn, Entry};
use netdir_pager::Pager;
use netdir_query::{parse_query, Evaluator};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

fn seed() -> Directory {
    let mut d = Directory::new();
    for s in ["dc=com", "dc=att, dc=com", "ou=people, dc=att, dc=com"] {
        d.insert(Entry::builder(dn(s)).class("container").build().unwrap())
            .unwrap();
    }
    d
}

const SEED_LEN: u64 = 3;

/// Batch `i` adds the pair `a{i}`/`b{i}` — two mutations that must be
/// visible together or not at all.
fn pair_batch(i: usize) -> MutationBatch {
    let person = |side: char| {
        Entry::builder(dn(&format!("uid={side}{i:03}, ou=people, dc=att, dc=com")))
            .class("person")
            .attr("surName", format!("{side}{i:03}"))
            .build()
            .unwrap()
    };
    MutationBatch::from_mutations(vec![
        Mutation::Add(person('a')),
        Mutation::Add(person('b')),
    ])
}

#[test]
fn concurrent_readers_never_see_torn_batches() {
    const BATCHES: usize = 60;
    let pager = Pager::new(1024, 128);
    let store = JournalStore::create(&pager, seed()).unwrap();
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..BATCHES {
                store.apply(&pair_batch(i)).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            s.spawn(|| {
                let mut last_epoch = 0;
                while !done.load(Ordering::Acquire) {
                    let snap = store.snapshot();
                    let entries = snap.to_vec().unwrap();
                    // Batches are atomic: a-side and b-side arrive
                    // together, so the count past the seed is even...
                    let grown = entries.len() as u64 - SEED_LEN;
                    assert_eq!(grown % 2, 0, "torn batch visible");
                    // ...and pairwise: a{i} visible iff b{i} visible.
                    let names: BTreeSet<String> = entries
                        .iter()
                        .filter_map(|e| e.dn().to_string().strip_prefix("uid=").map(
                            |rest| rest.split(',').next().unwrap_or("").to_string(),
                        ))
                        .collect();
                    for i in 0..BATCHES {
                        assert_eq!(
                            names.contains(&format!("a{i:03}")),
                            names.contains(&format!("b{i:03}")),
                            "pair {i} split across the snapshot"
                        );
                    }
                    // Epochs move forward for every reader.
                    assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch();
                    // The view is frozen: rereading under continued
                    // writes returns the same bytes.
                    assert_eq!(entries, snap.to_vec().unwrap());
                }
            });
        }
    });
    assert_eq!(store.len(), SEED_LEN + 2 * BATCHES as u64);
}

#[test]
fn pinned_snapshot_answers_queries_from_its_own_epoch() {
    let pager = Pager::new(1024, 128);
    let store = JournalStore::create(&pager, seed()).unwrap();
    for i in 0..10 {
        store.apply(&pair_batch(i)).unwrap();
    }
    let snap = store.snapshot();
    let frozen = snap.to_vec().unwrap();

    // Keep mutating after the pin — including deletes of entries the
    // snapshot can see.
    for i in 10..20 {
        store.apply(&pair_batch(i)).unwrap();
    }
    store
        .apply(&MutationBatch::from_mutations(
            (0..5)
                .map(|i| Mutation::Delete(dn(&format!("uid=a{i:03}, ou=people, dc=att, dc=com"))))
                .collect(),
        ))
        .unwrap();

    // The raw view is untouched.
    assert_eq!(snap.to_vec().unwrap(), frozen);

    // The full evaluator stack over the snapshot sees the pinned epoch:
    // all 10 a-side entries, none of the later ones, deletes invisible.
    let scratch = Pager::new(1024, 64);
    let ev = Evaluator::new(&snap, &scratch);
    let q = parse_query("(ou=people, dc=att, dc=com ? sub ? surName=a*)").unwrap();
    let sequential = ev.evaluate(&q).unwrap().to_vec().unwrap();
    assert_eq!(sequential.len(), 10);
    for degree in [2, 4] {
        let parallel = ev.evaluate_parallel(&q, degree).unwrap().to_vec().unwrap();
        assert_eq!(sequential, parallel, "degree {degree} diverged");
    }

    // Direct scope selection agrees with the frozen view too.
    let selected = snap
        .select_scope(&dn("ou=people, dc=att, dc=com"), Scope::Sub, |e| {
            AtomicFilter::present("surName").matches(e)
        })
        .unwrap()
        .to_vec()
        .unwrap();
    assert_eq!(selected.len(), 20, "10 pairs pinned at the snapshot epoch");

    // Meanwhile the store itself moved on.
    assert_eq!(store.len(), SEED_LEN + 2 * 20 - 5);
}

/// Replay a history spec into valid batches: each step toggles one of
/// 24 slots (absent → Add, present → Delete), chunked into batches.
fn history_batches(steps: &[u8], chunk: usize) -> (Vec<MutationBatch>, Vec<BTreeSet<u8>>) {
    let entry = |slot: u8| {
        Entry::builder(dn(&format!("uid=p{slot:02}, ou=people, dc=att, dc=com")))
            .class("person")
            .attr("surName", format!("p{slot:02}"))
            .build()
            .unwrap()
    };
    let mut live: BTreeSet<u8> = BTreeSet::new();
    let mut batches = Vec::new();
    let mut after_each = Vec::new();
    for chunk_steps in steps.chunks(chunk.max(1)) {
        let mut muts = Vec::new();
        for &raw in chunk_steps {
            let slot = raw % 24;
            if live.remove(&slot) {
                muts.push(Mutation::Delete(entry(slot).dn().clone()));
            } else {
                live.insert(slot);
                muts.push(Mutation::Add(entry(slot)));
            }
        }
        batches.push(MutationBatch::from_mutations(muts));
        after_each.push(live.clone());
    }
    (batches, after_each)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshots taken after each batch of a random history keep their
    /// exact contents even as the rest of the history lands; the final
    /// state matches the model.
    #[test]
    fn snapshots_pin_random_histories(
        steps in proptest::collection::vec(0u8..48, 1..40),
        chunk in 1usize..6,
    ) {
        let pager = Pager::new(1024, 256);
        let store = JournalStore::create(&pager, seed()).unwrap();
        let (batches, after_each) = history_batches(&steps, chunk);

        let mut pinned = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            let outcome = store.apply(batch).unwrap();
            prop_assert_eq!(outcome.epoch, (i + 1) as u64);
            pinned.push((store.snapshot(), &after_each[i]));
        }

        // Every pinned snapshot still shows exactly its epoch's state.
        for (i, (snap, expected)) in pinned.iter().enumerate() {
            let got: BTreeSet<u8> = snap
                .to_vec()
                .unwrap()
                .iter()
                .filter_map(|e| {
                    let s = e.dn().to_string();
                    s.strip_prefix("uid=p")?.get(..2)?.parse().ok()
                })
                .collect();
            prop_assert_eq!(&got, *expected, "snapshot {} drifted", i);
            prop_assert_eq!(snap.len(), SEED_LEN + expected.len() as u64);
        }

        // The live store agrees with the model's final state.
        let last = after_each.last().unwrap();
        prop_assert_eq!(store.len(), SEED_LEN + last.len() as u64);
    }
}
