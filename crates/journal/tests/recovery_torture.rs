//! Crash-recovery torture: truncate the WAL image at *every* byte
//! boundary and reopen. The committed prefix — and nothing else — must
//! come back, and the recovered entries must be identical to a fresh
//! store that applied the same prefix of batches directly.

use netdir_journal::{JournalStore, Mutation, MutationBatch};
use netdir_model::{Directory, Dn, Entry};
use netdir_pager::Pager;

fn dn(s: &str) -> Dn {
    Dn::parse(s).unwrap()
}

fn seed() -> Directory {
    let mut d = Directory::new();
    for s in ["dc=com", "dc=att, dc=com", "ou=people, dc=att, dc=com"] {
        d.insert(Entry::builder(dn(s)).class("container").build().unwrap())
            .unwrap();
    }
    d
}

fn person(i: usize) -> Entry {
    Entry::builder(dn(&format!("uid=t{i:03}, ou=people, dc=att, dc=com")))
        .class("person")
        .attr("surName", format!("torture{i:03}"))
        .attr("priority", i as i64)
        .build()
        .unwrap()
}

fn pager() -> Pager {
    Pager::new(512, 32)
}

/// A seeded burst of batches: adds, then interleaved modifies and
/// deletes, so replay exercises every mutation kind.
fn burst() -> Vec<MutationBatch> {
    let mut batches = Vec::new();
    for b in 0..4 {
        batches.push(MutationBatch::from_mutations(
            (b * 5..(b + 1) * 5).map(|i| Mutation::Add(person(i))).collect(),
        ));
    }
    batches.push(MutationBatch::from_mutations(
        (0..10)
            .map(|i| Mutation::Modify {
                dn: person(i).dn().clone(),
                add: vec![("note".into(), netdir_model::Value::Str(format!("v{i}")))],
                remove: vec![],
                remove_attrs: vec![],
            })
            .collect(),
    ));
    batches.push(MutationBatch::from_mutations(
        (0..20)
            .filter(|i| i % 3 == 0)
            .map(|i| Mutation::Delete(person(i).dn().clone()))
            .collect(),
    ));
    batches
}

/// Entries of a fresh store that applied exactly `batches[..n]`.
fn expected_after(batches: &[MutationBatch], n: usize) -> Vec<Entry> {
    let p = pager();
    let store = JournalStore::create(&p, seed()).unwrap();
    for b in &batches[..n] {
        store.apply(b).unwrap();
    }
    store.snapshot().to_vec().unwrap()
}

#[test]
fn every_truncation_point_recovers_exactly_the_committed_prefix() {
    let batches = burst();
    let p = pager();
    let store = JournalStore::create(&p, seed()).unwrap();
    for b in &batches {
        store.apply(b).unwrap();
    }
    let image = store.wal_bytes().unwrap();
    let expected: Vec<Vec<Entry>> =
        (0..=batches.len()).map(|n| expected_after(&batches, n)).collect();

    let mut prev_batches = 0;
    for cut in 0..=image.len() {
        let p2 = pager();
        let opened =
            JournalStore::open_from_wal_bytes(&p2, seed(), &image[..cut], p.page_size());
        let (recovered, report) = match opened {
            Ok(pair) => pair,
            // A cut inside the 8-byte magic/version header leaves
            // something that is not a WAL at all; refusing it outright
            // (instead of replaying nothing) is the contract.
            Err(e) if cut < 8 => {
                let msg = e.to_string();
                assert!(
                    msg.contains("magic") || msg.contains("version"),
                    "cut {cut}: unexpected error {msg}"
                );
                continue;
            }
            Err(e) => panic!("cut {cut}: recovery failed: {e}"),
        };
        let n = report.batches;
        assert!(n <= batches.len(), "cut {cut}: recovered phantom batches");
        // A longer prefix can never recover fewer batches.
        assert!(
            n >= prev_batches,
            "cut {cut}: recovery went backwards ({prev_batches} -> {n})"
        );
        prev_batches = n;
        assert_eq!(
            recovered.epoch(),
            n as u64,
            "cut {cut}: epoch disagrees with replayed batches"
        );
        let got = recovered.snapshot().to_vec().unwrap();
        assert_eq!(
            got, expected[n],
            "cut {cut}: recovered state differs from a fresh store applying {n} batches"
        );
    }
    // The full image recovers everything with nothing discarded.
    assert_eq!(prev_batches, batches.len());
}

#[test]
fn recovered_store_accepts_new_batches_over_a_torn_tail() {
    let batches = burst();
    let p = pager();
    let store = JournalStore::create(&p, seed()).unwrap();
    for b in &batches {
        store.apply(b).unwrap();
    }
    let image = store.wal_bytes().unwrap();

    // Cut mid-image so the tail is torn, then keep writing: the
    // truncated log must accept appends and survive a second reopen.
    let cut = image.len() - image.len() / 3;
    let p2 = pager();
    let (recovered, report) =
        JournalStore::open_from_wal_bytes(&p2, seed(), &image[..cut], p.page_size()).unwrap();
    assert!(report.batches < batches.len(), "cut did not tear anything");
    let extra = MutationBatch::from_mutations(vec![Mutation::Add(person(900))]);
    recovered.apply(&extra).unwrap();

    let image2 = recovered.wal_bytes().unwrap();
    let p3 = pager();
    let (again, report2) =
        JournalStore::open_from_wal_bytes(&p3, seed(), &image2, p.page_size()).unwrap();
    assert_eq!(report2.batches, report.batches + 1);
    assert_eq!(report2.truncated_bytes, 0, "second image must be clean");
    assert_eq!(
        again.snapshot().to_vec().unwrap(),
        recovered.snapshot().to_vec().unwrap()
    );
    assert!(again.lookup(person(900).dn()).is_some());
}

#[test]
fn corrupted_interior_bytes_never_replay_past_the_damage() {
    let batches = burst();
    let p = pager();
    let store = JournalStore::create(&p, seed()).unwrap();
    for b in &batches {
        store.apply(b).unwrap();
    }
    let image = store.wal_bytes().unwrap();
    let expected: Vec<Vec<Entry>> =
        (0..=batches.len()).map(|n| expected_after(&batches, n)).collect();

    // Flip one byte at a stride of positions past the header: recovery
    // must stop at or before the first damaged batch, never panic, and
    // whatever prefix it reports must be exactly reproducible.
    for pos in (8..image.len()).step_by(37) {
        let mut bad = image.clone();
        bad[pos] ^= 0x5a;
        let p2 = pager();
        let (recovered, report) =
            JournalStore::open_from_wal_bytes(&p2, seed(), &bad, p.page_size()).unwrap();
        let n = report.batches;
        assert!(n <= batches.len());
        let got = recovered.snapshot().to_vec().unwrap();
        assert_eq!(
            got, expected[n],
            "flip at {pos}: recovered prefix is not self-consistent"
        );
    }
}
