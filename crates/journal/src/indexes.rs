//! Incremental maintenance of the attribute indices.
//!
//! Mirrors the index set `IndexedDirectory` builds statically — tries
//! for equality, B-trees for integer comparisons, suffix indexes for
//! substrings, a presence map, and the id → sort-key table used for
//! scope filtering — but maintained entry-by-entry as mutations land.
//! Probe semantics are kept identical so query plans behave the same
//! against a live store as against a bulk-loaded one: candidates may
//! over-approximate (they are verified at fetch), never miss.

use netdir_filter::atomic::IntOp;
use netdir_filter::AtomicFilter;
use netdir_index::{LiveIntIndex, LiveSuffixIndex, Trie};
use netdir_model::{AttrName, Entry, EntryId, SortKey, Value};
use netdir_pager::{Pager, PagerResult};
use std::collections::BTreeMap;

/// The live composite index over all attributes.
pub struct LiveIndexes {
    pager: Pager,
    ints: BTreeMap<AttrName, LiveIntIndex>,
    tries: BTreeMap<AttrName, Trie>,
    suffixes: BTreeMap<AttrName, LiveSuffixIndex>,
    presence: BTreeMap<AttrName, Vec<EntryId>>,
    keys: BTreeMap<EntryId, SortKey>,
}

impl LiveIndexes {
    /// Empty indexes; int-index compactions spill through `pager`.
    pub fn new(pager: &Pager) -> LiveIndexes {
        LiveIndexes {
            pager: pager.clone(),
            ints: BTreeMap::new(),
            tries: BTreeMap::new(),
            suffixes: BTreeMap::new(),
            presence: BTreeMap::new(),
            keys: BTreeMap::new(),
        }
    }

    /// Build from existing entries (the bootstrap path).
    pub fn build<'a>(
        pager: &Pager,
        entries: impl Iterator<Item = &'a Entry>,
    ) -> PagerResult<LiveIndexes> {
        let mut idx = LiveIndexes::new(pager);
        for e in entries {
            idx.insert_entry(e)?;
        }
        Ok(idx)
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True iff no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sort key of an indexed entry.
    pub fn key_of(&self, id: EntryId) -> Option<&SortKey> {
        self.keys.get(&id)
    }

    /// Index every pair of `entry` (pairs are sorted by attribute, as
    /// the builder guarantees).
    pub fn insert_entry(&mut self, entry: &Entry) -> PagerResult<()> {
        self.keys.insert(entry.id(), entry.dn().sort_key().clone());
        let pager = &self.pager;
        let mut seen: Option<&AttrName> = None;
        for (a, v) in entry.pairs() {
            if seen != Some(a) {
                seen = Some(a);
                let ids = self.presence.entry(a.clone()).or_default();
                if let Err(pos) = ids.binary_search(&entry.id()) {
                    ids.insert(pos, entry.id());
                }
            }
            let canonical = v.canonical();
            self.tries
                .entry(a.clone())
                .or_default()
                .insert(&canonical, entry.id());
            self.suffixes
                .entry(a.clone())
                .or_default()
                .insert(&canonical, entry.id());
            if let Value::Int(i) = v {
                self.ints
                    .entry(a.clone())
                    .or_insert_with(|| LiveIntIndex::new(pager))
                    .insert(*i, entry.id())?;
            }
        }
        Ok(())
    }

    /// Un-index every pair of `entry` (the exact inverse of
    /// [`Self::insert_entry`] with the same entry).
    pub fn remove_entry(&mut self, entry: &Entry) -> PagerResult<()> {
        self.keys.remove(&entry.id());
        let mut seen: Option<&AttrName> = None;
        for (a, v) in entry.pairs() {
            if seen != Some(a) {
                seen = Some(a);
                if let Some(ids) = self.presence.get_mut(a.canonical()) {
                    if let Ok(pos) = ids.binary_search(&entry.id()) {
                        ids.remove(pos);
                    }
                    if ids.is_empty() {
                        self.presence.remove(a.canonical());
                    }
                }
            }
            let canonical = v.canonical();
            if let Some(t) = self.tries.get_mut(a.canonical()) {
                t.remove(&canonical, entry.id());
                if t.is_empty() {
                    self.tries.remove(a.canonical());
                }
            }
            if let Some(s) = self.suffixes.get_mut(a.canonical()) {
                s.remove(&canonical, entry.id());
            }
            if let Value::Int(i) = v {
                if let Some(tree) = self.ints.get_mut(a.canonical()) {
                    tree.remove(*i, entry.id())?;
                }
            }
        }
        Ok(())
    }

    /// Candidate entry ids for `filter`, or `None` when no index
    /// applies — same semantics as `IndexedDirectory::probe`.
    pub fn probe(&self, filter: &AtomicFilter) -> Option<Vec<EntryId>> {
        match filter {
            AtomicFilter::True => None,
            // Constant false: the empty candidate list, no scan needed.
            AtomicFilter::False => Some(Vec::new()),
            AtomicFilter::Present(a) => Some(
                self.presence
                    .get(a.canonical())
                    .cloned()
                    .unwrap_or_default(),
            ),
            AtomicFilter::Eq(a, v) => Some(
                self.tries
                    .get(a.canonical())
                    .map(|t| t.lookup_exact(v))
                    .unwrap_or_default(),
            ),
            AtomicFilter::DnEq(a, dn) => Some(
                self.tries
                    .get(a.canonical())
                    .map(|t| t.lookup_exact(&dn.canonical()))
                    .unwrap_or_default(),
            ),
            AtomicFilter::Substring(a, pat) => {
                let frag = pat
                    .initial
                    .as_deref()
                    .into_iter()
                    .chain(pat.any.iter().map(String::as_str))
                    .chain(pat.final_.as_deref())
                    .max_by_key(|s| s.len())?;
                Some(
                    self.suffixes
                        .get(a.canonical())
                        .map(|s| s.contains(frag))
                        .unwrap_or_default(),
                )
            }
            AtomicFilter::IntCmp(a, op, v) => {
                let tree = self.ints.get(a.canonical())?;
                let ids = match op {
                    IntOp::Lt => tree.below(*v, false),
                    IntOp::Le => tree.below(*v, true),
                    IntOp::Gt => tree.above(*v, false),
                    IntOp::Ge => tree.above(*v, true),
                    IntOp::Eq => tree.lookup(*v),
                };
                match ids {
                    Ok(mut ids) => {
                        ids.sort_unstable();
                        ids.dedup();
                        Some(ids)
                    }
                    Err(_) => None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_model::Dn;
    use netdir_pager::tiny_pager;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn e(i: u64, sur: &str, pri: i64) -> Entry {
        let mut entry = Entry::builder(dn(&format!("uid=u{i}, dc=com")))
            .class("person")
            .attr("surName", sur)
            .attr("priority", pri)
            .build()
            .unwrap();
        // Tests drive ids directly; the store normally assigns them via
        // the directory.
        entry = {
            let mut d = netdir_model::Directory::new();
            for k in 0..i {
                d.insert(
                    Entry::builder(dn(&format!("uid=pad{k}, dc=org")))
                        .class("thing")
                        .build()
                        .unwrap(),
                )
                .unwrap();
            }
            let id = d.insert(entry).unwrap();
            d.get(id).unwrap().clone()
        };
        entry
    }

    #[test]
    fn insert_then_probe_matches_filters() {
        let pager = tiny_pager();
        let mut idx = LiveIndexes::new(&pager);
        let a = e(0, "jagadish", 2);
        let b = e(1, "srivastava", 5);
        idx.insert_entry(&a).unwrap();
        idx.insert_entry(&b).unwrap();

        assert_eq!(
            idx.probe(&AtomicFilter::eq("surName", "jagadish")),
            Some(vec![a.id()])
        );
        assert_eq!(
            idx.probe(&AtomicFilter::present("priority")),
            Some(vec![a.id(), b.id()])
        );
        assert_eq!(
            idx.probe(&AtomicFilter::int_cmp("priority", IntOp::Lt, 3)),
            Some(vec![a.id()])
        );
        assert_eq!(idx.probe(&AtomicFilter::True), None);
        let sub = netdir_filter::parse_atomic("surName=*vast*").unwrap();
        assert_eq!(idx.probe(&sub), Some(vec![b.id()]));
    }

    #[test]
    fn remove_is_the_inverse_of_insert() {
        let pager = tiny_pager();
        let mut idx = LiveIndexes::new(&pager);
        let a = e(0, "jagadish", 2);
        let b = e(1, "milo", 9);
        idx.insert_entry(&a).unwrap();
        idx.insert_entry(&b).unwrap();
        idx.remove_entry(&a).unwrap();

        assert_eq!(idx.len(), 1);
        assert_eq!(
            idx.probe(&AtomicFilter::eq("surName", "jagadish")),
            Some(vec![])
        );
        assert_eq!(
            idx.probe(&AtomicFilter::present("priority")),
            Some(vec![b.id()])
        );
        assert_eq!(
            idx.probe(&AtomicFilter::int_cmp("priority", IntOp::Eq, 2)),
            Some(vec![])
        );
        assert!(idx.key_of(a.id()).is_none());
        assert!(idx.key_of(b.id()).is_some());
    }

    #[test]
    fn modify_as_remove_plus_insert() {
        let pager = tiny_pager();
        let mut idx = LiveIndexes::new(&pager);
        let old = e(3, "before", 1);
        idx.insert_entry(&old).unwrap();
        // Same id, new values.
        let mut d = netdir_model::Directory::new();
        for k in 0..3 {
            d.insert(
                Entry::builder(dn(&format!("uid=pad{k}, dc=org")))
                    .class("thing")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        let id = d
            .insert(
                Entry::builder(dn("uid=u3, dc=com"))
                    .class("person")
                    .attr("surName", "after")
                    .attr("priority", 8i64)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let new = d.get(id).unwrap().clone();
        idx.remove_entry(&old).unwrap();
        idx.insert_entry(&new).unwrap();

        assert_eq!(idx.probe(&AtomicFilter::eq("surName", "before")), Some(vec![]));
        assert_eq!(
            idx.probe(&AtomicFilter::eq("surName", "after")),
            Some(vec![new.id()])
        );
        assert_eq!(
            idx.probe(&AtomicFilter::int_cmp("priority", IntOp::Ge, 5)),
            Some(vec![new.id()])
        );
    }
}
