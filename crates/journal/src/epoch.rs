//! Epoch-based page reclamation: snapshot isolation without blocking.
//!
//! The copy-on-write entry list never overwrites a page a reader might
//! still reach — a superseding write allocates fresh pages and *retires*
//! the old ones. Retired pages stay readable until every reader that
//! could have captured them drains:
//!
//! * Readers [`pin`](EpochRegistry::pin) the current epoch while they
//!   hold a snapshot. The pin is a refcount keyed by epoch.
//! * Writers retire superseded pages at the epoch current when they
//!   replaced them, then [`advance`](EpochRegistry::advance) after
//!   commit.
//! * A retired page is reclaimed (moved to the free list, handed back
//!   to the allocator) once no reader is pinned at or below its retire
//!   epoch. With no readers at all, reclamation happens on the next
//!   advance — bounded garbage, no background thread.

use netdir_pager::PageId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Shared epoch state. Cheap to clone via `Arc`.
#[derive(Debug, Default)]
pub struct EpochRegistry {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    current: u64,
    /// epoch → number of readers pinned there.
    pinned: BTreeMap<u64, usize>,
    /// (retire epoch, page): readers pinned at or below the retire
    /// epoch may still reach the page.
    retired: Vec<(u64, PageId)>,
    free: Vec<PageId>,
    retired_total: u64,
    reclaimed_total: u64,
}

/// A point-in-time census of the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochStats {
    /// The writer's epoch.
    pub current: u64,
    /// Readers currently pinned.
    pub pinned_readers: usize,
    /// Oldest pinned epoch, if any.
    pub min_pinned: Option<u64>,
    /// Pages retired but not yet reclaimable.
    pub retired_pending: usize,
    /// Pages on the free list.
    pub free_pages: usize,
    /// Pages retired over the registry's lifetime.
    pub retired_total: u64,
    /// Pages reclaimed over the registry's lifetime.
    pub reclaimed_total: u64,
}

impl EpochRegistry {
    /// A fresh registry at epoch 0.
    pub fn new() -> Arc<EpochRegistry> {
        Arc::new(EpochRegistry::default())
    }

    /// The writer's current epoch.
    pub fn current(&self) -> u64 {
        self.lock().current
    }

    /// Pin the current epoch; the guard unpins on drop.
    pub fn pin(self: &Arc<Self>) -> EpochGuard {
        let epoch = {
            let mut inner = self.lock();
            let e = inner.current;
            *inner.pinned.entry(e).or_insert(0) += 1;
            e
        };
        EpochGuard {
            registry: Arc::clone(self),
            epoch,
        }
    }

    /// Advance to a new epoch (a writer committed) and reclaim whatever
    /// became unreachable. Returns the new epoch.
    pub fn advance(&self) -> u64 {
        let mut inner = self.lock();
        inner.current += 1;
        let now = inner.current;
        Self::reclaim(&mut inner);
        now
    }

    /// Retire pages superseded at the current epoch. They become free
    /// once no reader is pinned at or below it.
    pub fn retire(&self, pages: impl IntoIterator<Item = PageId>) {
        let mut inner = self.lock();
        let epoch = inner.current;
        for p in pages {
            inner.retired.push((epoch, p));
            inner.retired_total += 1;
        }
    }

    /// Take a reclaimed page for reuse, if any.
    pub fn take_free(&self) -> Option<PageId> {
        self.lock().free.pop()
    }

    /// Oldest epoch a reader still pins.
    pub fn min_pinned(&self) -> Option<u64> {
        self.lock().pinned.keys().next().copied()
    }

    /// How far the oldest reader trails the writer (0 when idle).
    pub fn lag(&self) -> u64 {
        let inner = self.lock();
        let min = inner.pinned.keys().next().copied().unwrap_or(inner.current);
        inner.current - min
    }

    /// Snapshot the registry's counters.
    pub fn stats(&self) -> EpochStats {
        let inner = self.lock();
        EpochStats {
            current: inner.current,
            pinned_readers: inner.pinned.values().sum(),
            min_pinned: inner.pinned.keys().next().copied(),
            retired_pending: inner.retired.len(),
            free_pages: inner.free.len(),
            retired_total: inner.retired_total,
            reclaimed_total: inner.reclaimed_total,
        }
    }

    fn unpin(&self, epoch: u64) {
        let mut inner = self.lock();
        if let Some(n) = inner.pinned.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                inner.pinned.remove(&epoch);
            }
        }
        Self::reclaim(&mut inner);
    }

    /// A page retired at epoch `e` is reachable by readers pinned at
    /// epochs ≤ `e` (their snapshot predates the replacement). It frees
    /// once the horizon — the oldest pin, or the current epoch when
    /// nobody is pinned — moves strictly past `e`.
    fn reclaim(inner: &mut Inner) {
        let horizon = inner
            .pinned
            .keys()
            .next()
            .copied()
            .unwrap_or(inner.current);
        let mut freed = 0u64;
        let free = &mut inner.free;
        inner.retired.retain(|&(e, p)| {
            if e < horizon {
                free.push(p);
                freed += 1;
                false
            } else {
                true
            }
        });
        inner.reclaimed_total += freed;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Keeps an epoch pinned; dropping it releases the pin and lets the
/// registry reclaim pages the reader could have reached.
#[derive(Debug)]
pub struct EpochGuard {
    registry: Arc<EpochRegistry>,
    epoch: u64,
}

impl EpochGuard {
    /// The epoch this guard pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        self.registry.unpin(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_free_on_advance_when_unpinned() {
        let reg = EpochRegistry::new();
        reg.retire([1, 2]);
        assert_eq!(reg.take_free(), None, "still reachable at current epoch");
        reg.advance();
        assert!(reg.take_free().is_some());
        assert!(reg.take_free().is_some());
        assert_eq!(reg.take_free(), None);
    }

    #[test]
    fn pinned_reader_blocks_reclaim() {
        let reg = EpochRegistry::new();
        let guard = reg.pin(); // pins epoch 0
        reg.retire([7]);
        reg.advance();
        assert_eq!(reg.take_free(), None, "reader at epoch 0 may reach page 7");
        assert_eq!(reg.lag(), 1);
        drop(guard);
        assert_eq!(reg.take_free(), Some(7));
        assert_eq!(reg.lag(), 0);
    }

    #[test]
    fn newer_readers_do_not_block_older_garbage() {
        let reg = EpochRegistry::new();
        reg.retire([1]);
        reg.advance(); // epoch 1; page 1 now free
        assert_eq!(reg.take_free(), Some(1));
        let g1 = reg.pin(); // pins epoch 1
        reg.retire([2]); // retired at epoch 1 — g1 can reach it
        reg.advance(); // epoch 2
        let _g2 = reg.pin(); // pins epoch 2
        assert_eq!(reg.take_free(), None);
        drop(g1);
        // g2 (epoch 2) cannot reach page 2 (retired at 1): it frees.
        assert_eq!(reg.take_free(), Some(2));
    }

    #[test]
    fn stats_census() {
        let reg = EpochRegistry::new();
        let _g = reg.pin();
        reg.retire([1, 2, 3]);
        reg.advance();
        let s = reg.stats();
        assert_eq!(s.current, 1);
        assert_eq!(s.pinned_readers, 1);
        assert_eq!(s.min_pinned, Some(0));
        assert_eq!(s.retired_pending, 3);
        assert_eq!(s.retired_total, 3);
        assert_eq!(s.reclaimed_total, 0);
    }
}
