//! A copy-on-write paged entry list, sorted by reverse-DN key.
//!
//! The static pipeline bulk-loads entries into a [`PagedList`] once; this
//! structure keeps the same on-page format *live*: an insert locates its
//! page through fence keys, splices the record at sort position, and
//! rewrites that one page (splitting into two when it overflows) onto
//! **fresh** page ids. Old pages are never modified — they are retired
//! through the [`EpochRegistry`] so concurrent snapshot readers keep a
//! consistent view, and their ids return to the allocator once the last
//! reader drains.
//!
//! Because page images are byte-compatible with [`ListWriter`]'s output,
//! a snapshot of the page table *is* a [`PagedList`]: queries, parallel
//! evaluation, and the I/O ledger all work unchanged on top of it.

use crate::epoch::EpochRegistry;
use netdir_model::Entry;
use netdir_pager::record::{Record, LEN_PREFIX_BYTES};
use netdir_pager::{PageId, PagedList, Pager, PagerError, PagerResult, PAGE_HEADER_BYTES};
use std::sync::Arc;

/// Metadata for one live page (contents live in the pager).
#[derive(Debug, Clone)]
struct LivePage {
    id: PageId,
    /// Sort key of the first record on the page.
    fence: Vec<u8>,
    count: u32,
}

/// The live, mutable, sorted entry list.
pub struct LiveList {
    pager: Pager,
    epochs: Arc<EpochRegistry>,
    pages: Vec<LivePage>,
    len: u64,
}

fn entry_key(e: &Entry) -> Vec<u8> {
    e.dn().sort_key().as_bytes().to_vec()
}

impl LiveList {
    /// An empty list.
    pub fn new(pager: &Pager, epochs: Arc<EpochRegistry>) -> LiveList {
        LiveList {
            pager: pager.clone(),
            epochs,
            pages: Vec::new(),
            len: 0,
        }
    }

    /// Bulk-load from already-sorted entries (the static build path).
    pub fn bulk_load<'a>(
        pager: &Pager,
        epochs: Arc<EpochRegistry>,
        entries: impl Iterator<Item = &'a Entry>,
    ) -> PagerResult<LiveList> {
        let mut list = LiveList::new(pager, epochs);
        let payload = pager.payload_size();
        let mut pending: Vec<Entry> = Vec::new();
        let mut pending_bytes = 0usize;
        for e in entries {
            let sz = e.encoded_len() + LEN_PREFIX_BYTES;
            if sz > payload {
                return Err(PagerError::RecordTooLarge {
                    record: sz - LEN_PREFIX_BYTES,
                    payload: payload - LEN_PREFIX_BYTES,
                });
            }
            if pending_bytes + sz > payload {
                let page = list.write_page(&pending)?;
                list.pages.push(page);
                pending.clear();
                pending_bytes = 0;
            }
            pending_bytes += sz;
            pending.push(e.clone());
        }
        if !pending.is_empty() {
            let page = list.write_page(&pending)?;
            list.pages.push(page);
        }
        list.len = list.pages.iter().map(|p| u64::from(p.count)).sum();
        Ok(list)
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Insert an entry whose key is absent (callers validate).
    pub fn insert(&mut self, entry: &Entry) -> PagerResult<()> {
        let key = entry_key(entry);
        if self.pages.is_empty() {
            let page = self.write_page(std::slice::from_ref(entry))?;
            self.pages.push(page);
            self.len = 1;
            return Ok(());
        }
        let p = self.locate(&key);
        let mut recs = self.read_page(self.pages[p].id)?;
        let pos = match recs.binary_search_by(|e| entry_key(e).cmp(&key)) {
            Ok(_) => {
                return Err(PagerError::CorruptRecord {
                    detail: format!("insert of existing key for {}", entry.dn()),
                })
            }
            Err(pos) => pos,
        };
        recs.insert(pos, entry.clone());
        self.rewrite(p, &recs)?;
        self.len += 1;
        Ok(())
    }

    /// Replace the record with `entry`'s key (which must exist).
    pub fn replace(&mut self, entry: &Entry) -> PagerResult<()> {
        let key = entry_key(entry);
        let p = self.locate_existing(&key)?;
        let mut recs = self.read_page(self.pages[p].id)?;
        let pos = recs
            .binary_search_by(|e| entry_key(e).cmp(&key))
            .map_err(|_| PagerError::CorruptRecord {
                detail: format!("replace of missing key for {}", entry.dn()),
            })?;
        recs[pos] = entry.clone();
        self.rewrite(p, &recs)
    }

    /// Remove the record with this key (which must exist).
    pub fn remove(&mut self, key: &[u8]) -> PagerResult<()> {
        let p = self.locate_existing(key)?;
        let mut recs = self.read_page(self.pages[p].id)?;
        let pos = recs
            .binary_search_by(|e| entry_key(e).as_slice().cmp(key))
            .map_err(|_| PagerError::CorruptRecord {
                detail: "remove of missing key".into(),
            })?;
        recs.remove(pos);
        if recs.is_empty() {
            let old = self.pages.remove(p);
            self.epochs.retire([old.id]);
        } else {
            self.rewrite(p, &recs)?;
        }
        self.len -= 1;
        Ok(())
    }

    /// Fetch the entry with this key, if present (≤ 1 page read cold).
    pub fn fetch(&self, key: &[u8]) -> PagerResult<Option<Entry>> {
        if self.pages.is_empty() {
            return Ok(None);
        }
        let p = self.locate(key);
        let recs = self.read_page(self.pages[p].id)?;
        Ok(recs.into_iter().find(|e| entry_key(e) == key))
    }

    /// Export the page table as an immutable [`PagedList`] plus fence
    /// keys — the snapshot readers evaluate over. O(pages), no I/O.
    pub fn snapshot(&self) -> (PagedList<Entry>, Vec<Vec<u8>>) {
        let ids: Vec<PageId> = self.pages.iter().map(|p| p.id).collect();
        let counts: Vec<u32> = self.pages.iter().map(|p| p.count).collect();
        let fences = self.pages.iter().map(|p| p.fence.clone()).collect();
        (PagedList::from_parts(&self.pager, ids, &counts), fences)
    }

    /// Index of the page that would hold `key`: the last page whose
    /// fence is ≤ `key` (the first page if `key` precedes every fence).
    fn locate(&self, key: &[u8]) -> usize {
        match self
            .pages
            .binary_search_by(|p| p.fence[..].cmp(key))
        {
            Ok(p) => p,
            Err(0) => 0,
            Err(p) => p - 1,
        }
    }

    fn locate_existing(&self, key: &[u8]) -> PagerResult<usize> {
        if self.pages.is_empty() {
            return Err(PagerError::CorruptRecord {
                detail: "operation on empty live list".into(),
            });
        }
        Ok(self.locate(key))
    }

    fn read_page(&self, id: PageId) -> PagerResult<Vec<Entry>> {
        let guard = self.pager.pool().fetch(id)?;
        guard.with(|data| {
            let count = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
            let mut out = Vec::with_capacity(count);
            let mut pos = PAGE_HEADER_BYTES;
            for _ in 0..count {
                let len =
                    u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                pos += LEN_PREFIX_BYTES;
                out.push(Entry::decode(&data[pos..pos + len])?);
                pos += len;
            }
            Ok(out)
        })
    }

    /// Write `recs` (sorted, fitting one page) to a fresh page id and
    /// return its metadata. Reuses reclaimed ids before allocating.
    fn write_page(&self, recs: &[Entry]) -> PagerResult<LivePage> {
        debug_assert!(!recs.is_empty());
        let id = self
            .epochs
            .take_free()
            .unwrap_or_else(|| self.pager.pool().allocate());
        let mut body = Vec::with_capacity(self.pager.payload_size());
        for e in recs {
            let mut scratch = Vec::new();
            e.encode(&mut scratch);
            body.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
            body.extend_from_slice(&scratch);
        }
        if body.len() > self.pager.payload_size() {
            return Err(PagerError::RecordTooLarge {
                record: body.len(),
                payload: self.pager.payload_size(),
            });
        }
        let guard = self.pager.pool().fetch_zeroed(id)?;
        guard.with_mut(|data| {
            // A reclaimed id may still have its stale frame resident:
            // overwrite the whole page, not just the prefix.
            data.fill(0);
            data[..4].copy_from_slice(&(recs.len() as u32).to_le_bytes());
            data[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + body.len()].copy_from_slice(&body);
        });
        Ok(LivePage {
            id,
            fence: entry_key(&recs[0]),
            count: recs.len() as u32,
        })
    }

    /// Replace page `p` with the new record set, splitting when it no
    /// longer fits. The old page id is retired, never overwritten.
    fn rewrite(&mut self, p: usize, recs: &[Entry]) -> PagerResult<()> {
        let payload = self.pager.payload_size();
        let sizes: Vec<usize> = recs
            .iter()
            .map(|e| e.encoded_len() + LEN_PREFIX_BYTES)
            .collect();
        if let Some(&big) = sizes.iter().find(|&&s| s > payload) {
            return Err(PagerError::RecordTooLarge {
                record: big - LEN_PREFIX_BYTES,
                payload: payload - LEN_PREFIX_BYTES,
            });
        }
        let total: usize = sizes.iter().sum();
        let old = self.pages[p].id;
        if total <= payload {
            self.pages[p] = self.write_page(recs)?;
        } else {
            // Split: greedy-fill the left page; the remainder always
            // fits (total ≤ old page content + one record ≤ 2·payload).
            let mut split = 0;
            let mut left_bytes = 0;
            while left_bytes + sizes[split] <= payload {
                left_bytes += sizes[split];
                split += 1;
            }
            let left = self.write_page(&recs[..split])?;
            let right = self.write_page(&recs[split..])?;
            self.pages[p] = left;
            self.pages.insert(p + 1, right);
        }
        self.epochs.retire([old]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_model::{Directory, Dn};
    use netdir_pager::tiny_pager;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn person(i: usize) -> Entry {
        Entry::builder(dn(&format!("uid=u{i:03}, ou=people, dc=com")))
            .class("person")
            .attr("surName", format!("name{i:03}"))
            .build()
            .unwrap()
    }

    fn sorted_dns(list: &LiveList) -> Vec<String> {
        let (snap, _) = list.snapshot();
        snap.to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect()
    }

    #[test]
    fn inserts_land_in_sort_order() {
        let pager = tiny_pager();
        let epochs = EpochRegistry::new();
        let mut list = LiveList::new(&pager, epochs);
        // Insert out of order.
        for i in [5usize, 1, 9, 0, 7, 3, 8, 2, 6, 4] {
            list.insert(&person(i)).unwrap();
        }
        assert_eq!(list.len(), 10);
        let got = sorted_dns(&list);
        let mut want: Vec<String> = (0..10)
            .map(|i| format!("uid=u{i:03}, ou=people, dc=com"))
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert!(list.num_pages() > 1, "tiny pages must split");
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let pager = tiny_pager();
        let mut d = Directory::new();
        for i in 0..20 {
            d.insert(person(i)).unwrap();
        }
        let bulk =
            LiveList::bulk_load(&pager, EpochRegistry::new(), d.iter_sorted()).unwrap();
        let mut inc = LiveList::new(&pager, EpochRegistry::new());
        for i in (0..20).rev() {
            inc.insert(&person(i)).unwrap();
        }
        assert_eq!(sorted_dns(&bulk), sorted_dns(&inc));
    }

    #[test]
    fn remove_and_fetch() {
        let pager = tiny_pager();
        let mut list = LiveList::new(&pager, EpochRegistry::new());
        for i in 0..8 {
            list.insert(&person(i)).unwrap();
        }
        let key = person(3).dn().sort_key().as_bytes().to_vec();
        assert!(list.fetch(&key).unwrap().is_some());
        list.remove(&key).unwrap();
        assert!(list.fetch(&key).unwrap().is_none());
        assert_eq!(list.len(), 7);
        // Double-remove errors.
        assert!(list.remove(&key).is_err());
    }

    #[test]
    fn replace_rewrites_in_place() {
        let pager = tiny_pager();
        let mut list = LiveList::new(&pager, EpochRegistry::new());
        for i in 0..6 {
            list.insert(&person(i)).unwrap();
        }
        let bigger = Entry::builder(dn("uid=u002, ou=people, dc=com"))
            .class("person")
            .attr("surName", "renamed")
            .attr("note", "x".repeat(60))
            .build()
            .unwrap();
        list.replace(&bigger).unwrap();
        let key = bigger.dn().sort_key().as_bytes().to_vec();
        let got = list.fetch(&key).unwrap().unwrap();
        assert_eq!(got.first_str(&"note".into()), Some("x".repeat(60)).as_deref());
        assert_eq!(list.len(), 6);
    }

    #[test]
    fn cow_preserves_snapshots_across_mutations() {
        let pager = tiny_pager();
        let epochs = EpochRegistry::new();
        let mut list = LiveList::new(&pager, Arc::clone(&epochs));
        for i in 0..10 {
            list.insert(&person(i)).unwrap();
        }
        let guard = epochs.pin();
        let (snap, _) = list.snapshot();
        let before = sorted_dns(&list);
        // Mutate heavily: snapshot pages are retired but pinned.
        for i in 10..30 {
            list.insert(&person(i)).unwrap();
            epochs.advance();
        }
        for i in 0..5 {
            list.remove(person(i).dn().sort_key().as_bytes()).unwrap();
            epochs.advance();
        }
        let after: Vec<String> = snap
            .to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect();
        assert_eq!(after, before, "pinned snapshot changed under mutation");
        drop(guard);
        epochs.advance();
        assert!(
            epochs.stats().free_pages > 0,
            "dropping the reader frees superseded pages"
        );
    }

    #[test]
    fn reclaimed_pages_are_reused() {
        let pager = tiny_pager();
        let epochs = EpochRegistry::new();
        let mut list = LiveList::new(&pager, Arc::clone(&epochs));
        for i in 0..12 {
            list.insert(&person(i)).unwrap();
            epochs.advance();
        }
        let allocated_before = pager.io().allocs;
        // With no pinned readers, every rewrite frees its old page, so
        // continued churn stabilizes allocation.
        for round in 0..5 {
            for i in 0..12 {
                let key = person(i).dn().sort_key().as_bytes().to_vec();
                list.remove(&key).unwrap();
                epochs.advance();
                list.insert(&person(i)).unwrap();
                epochs.advance();
                let _ = round;
            }
        }
        let allocated_after = pager.io().allocs;
        assert!(
            allocated_after - allocated_before <= 4,
            "churn leaked pages: {} new allocations",
            allocated_after - allocated_before
        );
    }
}
