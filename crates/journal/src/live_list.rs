//! A copy-on-write paged entry list, sorted by reverse-DN key.
//!
//! The static pipeline bulk-loads entries into a [`PagedList`] once; this
//! structure keeps the same on-page format *live*: an insert locates its
//! page through fence keys, splices the record at sort position, and
//! rewrites that one page (splitting into two when it overflows) onto
//! **fresh** page ids. Old pages are never modified — they are retired
//! through the [`EpochRegistry`] so concurrent snapshot readers keep a
//! consistent view, and their ids return to the allocator once the last
//! reader drains.
//!
//! Because page images are byte-compatible with [`ListWriter`]'s output,
//! a snapshot of the page table *is* a [`PagedList`]: queries, parallel
//! evaluation, and the I/O ledger all work unchanged on top of it.

use crate::epoch::EpochRegistry;
use netdir_model::Entry;
use netdir_pager::list::{read_page_records, PageBuilder};
use netdir_pager::{PageId, PagedList, Pager, PagerError, PagerResult};
use std::sync::Arc;

/// Metadata for one live page (contents live in the pager).
#[derive(Debug, Clone)]
struct LivePage {
    id: PageId,
    /// Sort key of the first record on the page.
    fence: Vec<u8>,
    count: u32,
}

/// The live, mutable, sorted entry list.
pub struct LiveList {
    pager: Pager,
    epochs: Arc<EpochRegistry>,
    pages: Vec<LivePage>,
    len: u64,
}

fn entry_key(e: &Entry) -> Vec<u8> {
    e.dn().sort_key().as_bytes().to_vec()
}

impl LiveList {
    /// An empty list.
    pub fn new(pager: &Pager, epochs: Arc<EpochRegistry>) -> LiveList {
        LiveList {
            pager: pager.clone(),
            epochs,
            pages: Vec::new(),
            len: 0,
        }
    }

    /// Bulk-load from already-sorted entries (the static build path).
    pub fn bulk_load<'a>(
        pager: &Pager,
        epochs: Arc<EpochRegistry>,
        entries: impl Iterator<Item = &'a Entry>,
    ) -> PagerResult<LiveList> {
        let mut list = LiveList::new(pager, epochs);
        list.pages = list.build_pages(entries)?;
        list.len = list.pages.iter().map(|p| u64::from(p.count)).sum();
        Ok(list)
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Insert an entry whose key is absent (callers validate).
    pub fn insert(&mut self, entry: &Entry) -> PagerResult<()> {
        let key = entry_key(entry);
        if self.pages.is_empty() {
            self.pages = self.build_pages(std::iter::once(entry))?;
            self.len = 1;
            return Ok(());
        }
        let p = self.locate(&key);
        let mut recs = self.read_page(self.pages[p].id)?;
        let pos = match recs.binary_search_by(|e| entry_key(e).cmp(&key)) {
            Ok(_) => {
                return Err(PagerError::CorruptRecord {
                    detail: format!("insert of existing key for {}", entry.dn()),
                })
            }
            Err(pos) => pos,
        };
        recs.insert(pos, entry.clone());
        self.rewrite(p, &recs)?;
        self.len += 1;
        Ok(())
    }

    /// Replace the record with `entry`'s key (which must exist).
    pub fn replace(&mut self, entry: &Entry) -> PagerResult<()> {
        let key = entry_key(entry);
        let p = self.locate_existing(&key)?;
        let mut recs = self.read_page(self.pages[p].id)?;
        let pos = recs
            .binary_search_by(|e| entry_key(e).cmp(&key))
            .map_err(|_| PagerError::CorruptRecord {
                detail: format!("replace of missing key for {}", entry.dn()),
            })?;
        recs[pos] = entry.clone();
        self.rewrite(p, &recs)
    }

    /// Remove the record with this key (which must exist).
    pub fn remove(&mut self, key: &[u8]) -> PagerResult<()> {
        let p = self.locate_existing(key)?;
        let mut recs = self.read_page(self.pages[p].id)?;
        let pos = recs
            .binary_search_by(|e| entry_key(e).as_slice().cmp(key))
            .map_err(|_| PagerError::CorruptRecord {
                detail: "remove of missing key".into(),
            })?;
        recs.remove(pos);
        if recs.is_empty() {
            let old = self.pages.remove(p);
            self.epochs.retire([old.id]);
        } else {
            self.rewrite(p, &recs)?;
        }
        self.len -= 1;
        Ok(())
    }

    /// Fetch the entry with this key, if present (≤ 1 page read cold).
    pub fn fetch(&self, key: &[u8]) -> PagerResult<Option<Entry>> {
        if self.pages.is_empty() {
            return Ok(None);
        }
        let p = self.locate(key);
        let recs = self.read_page(self.pages[p].id)?;
        Ok(recs.into_iter().find(|e| entry_key(e) == key))
    }

    /// Export the page table as an immutable [`PagedList`] plus fence
    /// keys — the snapshot readers evaluate over. O(pages), no I/O.
    pub fn snapshot(&self) -> (PagedList<Entry>, Vec<Vec<u8>>) {
        let ids: Vec<PageId> = self.pages.iter().map(|p| p.id).collect();
        let counts: Vec<u32> = self.pages.iter().map(|p| p.count).collect();
        let fences = self.pages.iter().map(|p| p.fence.clone()).collect();
        (PagedList::from_parts(&self.pager, ids, &counts), fences)
    }

    /// Index of the page that would hold `key`: the last page whose
    /// fence is ≤ `key` (the first page if `key` precedes every fence).
    fn locate(&self, key: &[u8]) -> usize {
        match self
            .pages
            .binary_search_by(|p| p.fence[..].cmp(key))
        {
            Ok(p) => p,
            Err(0) => 0,
            Err(p) => p - 1,
        }
    }

    fn locate_existing(&self, key: &[u8]) -> PagerResult<usize> {
        if self.pages.is_empty() {
            return Err(PagerError::CorruptRecord {
                detail: "operation on empty live list".into(),
            });
        }
        Ok(self.locate(key))
    }

    /// Decode every record on one live page, either page format.
    fn read_page(&self, id: PageId) -> PagerResult<Vec<Entry>> {
        read_page_records(&self.pager, id)
    }

    /// Build page images for `entries` (sorted) via the pager's page
    /// format, each sealed onto a fresh id. Reuses reclaimed ids before
    /// allocating. Packing is by *built* size — under the compressed v2
    /// format a page holds however many records its delta-encoded frames
    /// fit, which a per-record size formula cannot predict.
    fn build_pages<'a>(
        &self,
        entries: impl Iterator<Item = &'a Entry>,
    ) -> PagerResult<Vec<LivePage>> {
        let ctx = self.pager.ctx();
        let mut builder = PageBuilder::new(&self.pager);
        let mut pages = Vec::new();
        let mut fence: Vec<u8> = Vec::new();
        for e in entries {
            loop {
                if builder.is_empty() {
                    fence = entry_key(e);
                }
                if builder.push(e, &ctx)? {
                    break;
                }
                pages.push(self.seal_page(&mut builder, std::mem::take(&mut fence))?);
            }
        }
        if !builder.is_empty() {
            pages.push(self.seal_page(&mut builder, std::mem::take(&mut fence))?);
        }
        Ok(pages)
    }

    /// Seal the builder's current image onto a fresh page id.
    fn seal_page(&self, builder: &mut PageBuilder, fence: Vec<u8>) -> PagerResult<LivePage> {
        let id = self
            .epochs
            .take_free()
            .unwrap_or_else(|| self.pager.pool().allocate());
        let count = builder.seal_to(&self.pager, id)?;
        Ok(LivePage { id, fence, count })
    }

    /// Replace page `p` with the new record set, splitting into as many
    /// pages as the built images need. The old page id is retired, never
    /// overwritten.
    fn rewrite(&mut self, p: usize, recs: &[Entry]) -> PagerResult<()> {
        let old = self.pages[p].id;
        let new_pages = self.build_pages(recs.iter())?;
        debug_assert!(!new_pages.is_empty());
        self.pages.splice(p..=p, new_pages);
        self.epochs.retire([old]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_model::{Directory, Dn};
    use netdir_pager::tiny_pager;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn person(i: usize) -> Entry {
        Entry::builder(dn(&format!("uid=u{i:03}, ou=people, dc=com")))
            .class("person")
            .attr("surName", format!("name{i:03}"))
            .build()
            .unwrap()
    }

    fn sorted_dns(list: &LiveList) -> Vec<String> {
        let (snap, _) = list.snapshot();
        snap.to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect()
    }

    #[test]
    fn inserts_land_in_sort_order() {
        let pager = tiny_pager();
        let epochs = EpochRegistry::new();
        let mut list = LiveList::new(&pager, epochs);
        // Insert out of order.
        for i in [5usize, 1, 9, 0, 7, 3, 8, 2, 6, 4] {
            list.insert(&person(i)).unwrap();
        }
        assert_eq!(list.len(), 10);
        let got = sorted_dns(&list);
        let mut want: Vec<String> = (0..10)
            .map(|i| format!("uid=u{i:03}, ou=people, dc=com"))
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert!(list.num_pages() > 1, "tiny pages must split");
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let pager = tiny_pager();
        let mut d = Directory::new();
        for i in 0..20 {
            d.insert(person(i)).unwrap();
        }
        let bulk =
            LiveList::bulk_load(&pager, EpochRegistry::new(), d.iter_sorted()).unwrap();
        let mut inc = LiveList::new(&pager, EpochRegistry::new());
        for i in (0..20).rev() {
            inc.insert(&person(i)).unwrap();
        }
        assert_eq!(sorted_dns(&bulk), sorted_dns(&inc));
    }

    #[test]
    fn remove_and_fetch() {
        let pager = tiny_pager();
        let mut list = LiveList::new(&pager, EpochRegistry::new());
        for i in 0..8 {
            list.insert(&person(i)).unwrap();
        }
        let key = person(3).dn().sort_key().as_bytes().to_vec();
        assert!(list.fetch(&key).unwrap().is_some());
        list.remove(&key).unwrap();
        assert!(list.fetch(&key).unwrap().is_none());
        assert_eq!(list.len(), 7);
        // Double-remove errors.
        assert!(list.remove(&key).is_err());
    }

    #[test]
    fn replace_rewrites_in_place() {
        let pager = tiny_pager();
        let mut list = LiveList::new(&pager, EpochRegistry::new());
        for i in 0..6 {
            list.insert(&person(i)).unwrap();
        }
        let bigger = Entry::builder(dn("uid=u002, ou=people, dc=com"))
            .class("person")
            .attr("surName", "renamed")
            .attr("note", "x".repeat(60))
            .build()
            .unwrap();
        list.replace(&bigger).unwrap();
        let key = bigger.dn().sort_key().as_bytes().to_vec();
        let got = list.fetch(&key).unwrap().unwrap();
        assert_eq!(got.first_str(&"note".into()), Some("x".repeat(60)).as_deref());
        assert_eq!(list.len(), 6);
    }

    #[test]
    fn cow_preserves_snapshots_across_mutations() {
        let pager = tiny_pager();
        let epochs = EpochRegistry::new();
        let mut list = LiveList::new(&pager, Arc::clone(&epochs));
        for i in 0..10 {
            list.insert(&person(i)).unwrap();
        }
        let guard = epochs.pin();
        let (snap, _) = list.snapshot();
        let before = sorted_dns(&list);
        // Mutate heavily: snapshot pages are retired but pinned.
        for i in 10..30 {
            list.insert(&person(i)).unwrap();
            epochs.advance();
        }
        for i in 0..5 {
            list.remove(person(i).dn().sort_key().as_bytes()).unwrap();
            epochs.advance();
        }
        let after: Vec<String> = snap
            .to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect();
        assert_eq!(after, before, "pinned snapshot changed under mutation");
        drop(guard);
        epochs.advance();
        assert!(
            epochs.stats().free_pages > 0,
            "dropping the reader frees superseded pages"
        );
    }

    #[test]
    fn live_list_works_on_compressed_pager() {
        // Same workload, v2 page format: inserts, CoW snapshots, removes
        // and fetches all go through the prefix-compressed page builder.
        let pager = Pager::compressed(256, 8);
        let epochs = EpochRegistry::new();
        let mut list = LiveList::new(&pager, Arc::clone(&epochs));
        for i in [5usize, 1, 9, 0, 7, 3, 8, 2, 6, 4] {
            list.insert(&person(i)).unwrap();
        }
        let guard = epochs.pin();
        let (snap, _) = list.snapshot();
        let before = sorted_dns(&list);
        for i in 10..20 {
            list.insert(&person(i)).unwrap();
            epochs.advance();
        }
        let key = person(3).dn().sort_key().as_bytes().to_vec();
        assert!(list.fetch(&key).unwrap().is_some());
        list.remove(&key).unwrap();
        assert!(list.fetch(&key).unwrap().is_none());
        let after: Vec<String> = snap
            .to_vec()
            .unwrap()
            .iter()
            .map(|e| e.dn().to_string())
            .collect();
        assert_eq!(after, before, "pinned snapshot changed under mutation");
        drop(guard);
        // The shared prefixes in these DNs compress: the pager banked
        // real byte savings while building live pages.
        assert!(pager.pool().metrics().compressed_bytes_saved > 0);
    }

    #[test]
    fn reclaimed_pages_are_reused() {
        let pager = tiny_pager();
        let epochs = EpochRegistry::new();
        let mut list = LiveList::new(&pager, Arc::clone(&epochs));
        for i in 0..12 {
            list.insert(&person(i)).unwrap();
            epochs.advance();
        }
        let allocated_before = pager.io().allocs;
        // With no pinned readers, every rewrite frees its old page, so
        // continued churn stabilizes allocation.
        for round in 0..5 {
            for i in 0..12 {
                let key = person(i).dn().sort_key().as_bytes().to_vec();
                list.remove(&key).unwrap();
                epochs.advance();
                list.insert(&person(i)).unwrap();
                epochs.advance();
                let _ = round;
            }
        }
        let allocated_after = pager.io().allocs;
        assert!(
            allocated_after - allocated_before <= 4,
            "churn leaked pages: {} new allocations",
            allocated_after - allocated_before
        );
    }
}
