//! The live write path: DN-keyed mutations over a running directory.
//!
//! The paper evaluates queries over a *static* bulk-loaded directory; this
//! crate adds the piece a deployed server needs — mutations that land
//! while queries run — without giving up the two properties the rest of
//! the workspace is built on:
//!
//! * **Sorted-by-reverse-DN storage.** Inserts splice into the paged
//!   entry list at sort position with a page-local copy-on-write
//!   split, never a global re-sort, so every query-side invariant
//!   (contiguous subtrees, fence-guided scope scans) keeps holding.
//! * **Exact page-transfer accounting.** The WAL flushes through the
//!   same [`netdir_pager::Disk`] abstraction as everything else, so
//!   durability costs are measured in the same ledger currency as
//!   query I/O.
//!
//! Layering, bottom to top:
//!
//! * [`mutation`] — [`Mutation`]/[`MutationBatch`], the unit of change,
//!   convertible from RFC 2849 change records
//!   ([`netdir_model::ldif::ChangeRecord`]).
//! * [`wal`] — a checksummed, length-prefixed write-ahead log over raw
//!   disk pages; recovery returns the committed prefix.
//! * [`epoch`] — epoch-based reclamation: readers pin an epoch, writers
//!   retire superseded pages, pages free when the last straggler drains.
//! * [`live_list`] — the copy-on-write sorted entry list with fence
//!   keys; exports immutable page-table snapshots.
//! * [`indexes`] — incremental maintenance of the attribute indices
//!   (tries, int B-trees, suffix indexes, presence) mirroring
//!   `IndexedDirectory`'s probe semantics.
//! * [`store`] — [`JournalStore`] ties it together: validate → WAL
//!   append (durability point) → apply → advance epoch. Snapshots
//!   implement [`netdir_query::eval::AtomicSource`] so a long
//!   evaluation pins one consistent view while writers proceed.

pub mod epoch;
pub mod indexes;
pub mod live_list;
pub mod mutation;
pub mod store;
pub mod wal;

pub use epoch::{EpochGuard, EpochRegistry, EpochStats};
pub use mutation::{Mutation, MutationBatch};
pub use store::{ApplyOutcome, JournalError, JournalStats, JournalStore, RecoveryReport, Snapshot};
pub use wal::Wal;
