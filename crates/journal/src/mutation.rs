//! Mutations: the unit of change submitted to the journal.
//!
//! A [`MutationBatch`] is applied atomically — either every mutation in
//! it lands (and is durably logged first), or none does. Batches encode
//! with the same hand-rolled codec as on-page records, so a batch *is*
//! the WAL payload; replay decodes and re-applies it through the same
//! code path as the original submission, which keeps entry-id assignment
//! deterministic.

use netdir_model::ldif::{Change, ChangeRecord};
use netdir_model::{AttrName, Dn, Entry, Value};
use netdir_pager::record::codec::{put_str, put_u32, Reader};
use netdir_pager::record::Record;
use netdir_pager::{PagerError, PagerResult};

/// One change to one entry, keyed by DN.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Insert a new entry (its DN must not exist).
    Add(Entry),
    /// Edit an existing entry's attribute pairs.
    Modify {
        /// Target entry.
        dn: Dn,
        /// Pairs to add.
        add: Vec<(AttrName, Value)>,
        /// Exact pairs to remove.
        remove: Vec<(AttrName, Value)>,
        /// Attributes to remove wholesale (every value).
        remove_attrs: Vec<AttrName>,
    },
    /// Remove the entry with this DN (descendants stay; the model is a
    /// forest).
    Delete(Dn),
}

impl Mutation {
    /// The DN this mutation targets.
    pub fn dn(&self) -> &Dn {
        match self {
            Mutation::Add(e) => e.dn(),
            Mutation::Modify { dn, .. } => dn,
            Mutation::Delete(dn) => dn,
        }
    }
}

/// An ordered, atomically-applied sequence of mutations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MutationBatch {
    muts: Vec<Mutation>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> MutationBatch {
        MutationBatch::default()
    }

    /// Wrap a list of mutations.
    pub fn from_mutations(muts: Vec<Mutation>) -> MutationBatch {
        MutationBatch { muts }
    }

    /// Build from parsed LDIF change records.
    pub fn from_changes(recs: Vec<ChangeRecord>) -> MutationBatch {
        let muts = recs
            .into_iter()
            .map(|r| match r.change {
                Change::Add(e) => Mutation::Add(e),
                Change::Modify {
                    add,
                    remove,
                    remove_attrs,
                } => Mutation::Modify {
                    dn: r.dn,
                    add,
                    remove,
                    remove_attrs,
                },
                Change::Delete => Mutation::Delete(r.dn),
            })
            .collect();
        MutationBatch { muts }
    }

    /// Parse an LDIF change document (RFC 2849) into a batch.
    pub fn from_ldif(text: &str) -> netdir_model::ModelResult<MutationBatch> {
        Ok(MutationBatch::from_changes(
            netdir_model::ldif::changes_from_ldif(text)?,
        ))
    }

    /// Append a mutation.
    pub fn push(&mut self, m: Mutation) {
        self.muts.push(m);
    }

    /// The mutations, in application order.
    pub fn mutations(&self) -> &[Mutation] {
        &self.muts
    }

    /// Number of mutations.
    pub fn len(&self) -> usize {
        self.muts.len()
    }

    /// True iff the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.muts.is_empty()
    }
}

const TAG_ADD: u8 = 0;
const TAG_MODIFY: u8 = 1;
const TAG_DELETE: u8 = 2;

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Str(s) => {
            out.push(0);
            put_str(out, s);
        }
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Dn(d) => {
            out.push(2);
            put_str(out, &d.to_string());
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> PagerResult<Value> {
    match r.get_u8()? {
        0 => Ok(Value::Str(r.get_str()?.to_string())),
        1 => Ok(Value::Int(r.get_i64()?)),
        2 => Ok(Value::Dn(parse_dn(r.get_str()?)?)),
        t => Err(PagerError::CorruptRecord {
            detail: format!("unknown value tag {t}"),
        }),
    }
}

fn parse_dn(s: &str) -> PagerResult<Dn> {
    Dn::parse(s).map_err(|e| PagerError::CorruptRecord {
        detail: format!("bad DN in mutation: {e}"),
    })
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(AttrName, Value)]) {
    put_u32(out, pairs.len() as u32);
    for (a, v) in pairs {
        put_str(out, a.as_str());
        put_value(out, v);
    }
}

fn get_pairs(r: &mut Reader<'_>) -> PagerResult<Vec<(AttrName, Value)>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let a: AttrName = r.get_str()?.into();
        let v = get_value(r)?;
        out.push((a, v));
    }
    Ok(out)
}

impl Record for Mutation {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Mutation::Add(e) => {
                // Entry::encode is not self-delimiting inside a longer
                // stream, so Add frames its entry with a length prefix.
                out.push(TAG_ADD);
                let mut body = Vec::new();
                e.encode(&mut body);
                put_u32(out, body.len() as u32);
                out.extend_from_slice(&body);
            }
            Mutation::Modify {
                dn,
                add,
                remove,
                remove_attrs,
            } => {
                out.push(TAG_MODIFY);
                put_str(out, &dn.to_string());
                put_pairs(out, add);
                put_pairs(out, remove);
                put_u32(out, remove_attrs.len() as u32);
                for a in remove_attrs {
                    put_str(out, a.as_str());
                }
            }
            Mutation::Delete(dn) => {
                out.push(TAG_DELETE);
                put_str(out, &dn.to_string());
            }
        }
    }

    fn decode(bytes: &[u8]) -> PagerResult<Mutation> {
        let mut r = Reader::new(bytes);
        let m = decode_one(&mut r)?;
        if r.remaining() != 0 {
            return Err(PagerError::CorruptRecord {
                detail: format!("{} trailing bytes after mutation", r.remaining()),
            });
        }
        Ok(m)
    }
}

fn decode_one(r: &mut Reader<'_>) -> PagerResult<Mutation> {
    match r.get_u8()? {
        TAG_ADD => {
            // Entries are length-delimited within the batch framing.
            let body = r.get_bytes()?;
            Ok(Mutation::Add(Entry::decode(body)?))
        }
        TAG_MODIFY => {
            let dn = parse_dn(r.get_str()?)?;
            let add = get_pairs(r)?;
            let remove = get_pairs(r)?;
            let n = r.get_u32()? as usize;
            let mut remove_attrs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                remove_attrs.push(r.get_str()?.into());
            }
            Ok(Mutation::Modify {
                dn,
                add,
                remove,
                remove_attrs,
            })
        }
        TAG_DELETE => Ok(Mutation::Delete(parse_dn(r.get_str()?)?)),
        t => Err(PagerError::CorruptRecord {
            detail: format!("unknown mutation tag {t}"),
        }),
    }
}

impl Record for MutationBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.muts.len() as u32);
        for m in &self.muts {
            m.encode(out);
        }
    }

    fn decode(bytes: &[u8]) -> PagerResult<MutationBatch> {
        let mut r = Reader::new(bytes);
        let n = r.get_u32()? as usize;
        let mut muts = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            muts.push(decode_one(&mut r)?);
        }
        if r.remaining() != 0 {
            return Err(PagerError::CorruptRecord {
                detail: format!("{} trailing bytes after batch", r.remaining()),
            });
        }
        Ok(MutationBatch { muts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_pager::record::Record;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn sample_batch() -> MutationBatch {
        let e = Entry::builder(dn("uid=jag, dc=att, dc=com"))
            .class("person")
            .attr("surName", "jagadish")
            .attr("priority", 7i64)
            .attr("manager", Value::Dn(dn("uid=boss, dc=att, dc=com")))
            .build()
            .unwrap();
        MutationBatch::from_mutations(vec![
            Mutation::Add(e),
            Mutation::Modify {
                dn: dn("uid=jag, dc=att, dc=com"),
                add: vec![("title".into(), Value::Str("researcher".into()))],
                remove: vec![("priority".into(), Value::Int(7))],
                remove_attrs: vec!["manager".into()],
            },
            Mutation::Delete(dn("uid=jag, dc=att, dc=com")),
        ])
    }

    #[test]
    fn batch_roundtrip() {
        let b = sample_batch();
        let mut buf = Vec::new();
        b.encode(&mut buf);
        let back = MutationBatch::decode(&buf).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let b = sample_batch();
        let mut buf = Vec::new();
        b.encode(&mut buf);
        buf.push(0xff);
        assert!(MutationBatch::decode(&buf).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let b = sample_batch();
        let mut buf = Vec::new();
        b.encode(&mut buf);
        for cut in 1..buf.len() {
            assert!(
                MutationBatch::decode(&buf[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn from_ldif_feeds_batches() {
        let text = "dn: uid=x, dc=com\nobjectClass: thing\nuid: x\n\n\
                    dn: uid=x, dc=com\nchangetype: modify\nadd: note\nnote: hi\n-\n\n\
                    dn: uid=x, dc=com\nchangetype: delete\n";
        let b = MutationBatch::from_ldif(text).unwrap();
        assert_eq!(b.len(), 3);
        assert!(matches!(b.mutations()[0], Mutation::Add(_)));
        assert!(matches!(b.mutations()[1], Mutation::Modify { .. }));
        assert!(matches!(b.mutations()[2], Mutation::Delete(_)));
    }
}
