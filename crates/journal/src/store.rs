//! [`JournalStore`]: the live directory — validate, log, apply, publish.
//!
//! The write protocol per batch:
//!
//! 1. **Validate** every mutation against a private overlay of the
//!    current state (so later mutations in the batch see earlier ones).
//!    Any violation rejects the whole batch before anything is logged —
//!    batches are atomic.
//! 2. **Log**: encode the batch and append it to the WAL. When the
//!    append returns, the batch is durable; replay after a crash
//!    re-applies it through this same code path, so entry-id assignment
//!    is deterministic.
//! 3. **Apply**: update the in-memory [`Directory`] mirror, splice the
//!    copy-on-write entry list, and incrementally maintain the
//!    attribute indexes.
//! 4. **Publish**: advance the epoch. Readers that pinned the previous
//!    epoch keep their page-table snapshot; superseded pages reclaim
//!    once the last such reader drains.
//!
//! Reads come in two flavors: [`JournalStore::evaluate_atomic`] answers
//! against the *current* state under the store lock (index probe with
//! scan fallback, mirroring `IndexedDirectory`), while
//! [`JournalStore::snapshot`] pins an epoch and hands back a
//! [`Snapshot`] implementing [`AtomicSource`] — a long `evaluate` or
//! `evaluate_parallel` run sees one consistent directory no matter how
//! many batches land meanwhile.

use crate::epoch::{EpochRegistry, EpochStats};
use crate::indexes::LiveIndexes;
use crate::live_list::LiveList;
use crate::mutation::{Mutation, MutationBatch};
use crate::wal::Wal;
use netdir_filter::{AtomicFilter, Scope};
use netdir_model::{
    AttrName, Directory, Dn, Entry, ModelError, SortKey, Value,
};
use netdir_obs::{names, Clock, MetricsRegistry, MonotonicClock};
use netdir_pager::disk::{Disk, MemDisk};
use netdir_pager::record::Record;
use netdir_pager::{
    IoStats, ListWriter, PagedList, Pager, PagerError, PagerResult,
};
use netdir_query::AtomicSource;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Everything that can go wrong on the write path.
#[derive(Debug)]
pub enum JournalError {
    /// A mutation violated the data model (unknown DN, duplicate DN,
    /// schema violation, …). Nothing was logged or applied.
    Model(ModelError),
    /// Storage-layer failure.
    Pager(PagerError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Model(e) => write!(f, "rejected: {e}"),
            JournalError::Pager(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<ModelError> for JournalError {
    fn from(e: ModelError) -> Self {
        JournalError::Model(e)
    }
}

impl From<PagerError> for JournalError {
    fn from(e: PagerError) -> Self {
        JournalError::Pager(e)
    }
}

/// What one committed batch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// The epoch at which the batch became visible.
    pub epoch: u64,
    /// Mutations applied.
    pub mutations: usize,
}

/// What reopening a WAL recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Committed batches replayed.
    pub batches: usize,
    /// Individual mutations replayed.
    pub mutations: usize,
    /// Replay wall-clock, microseconds.
    pub replay_us: u64,
    /// Bytes of log discarded past the committed prefix.
    pub truncated_bytes: u64,
}

/// Counters the store accumulates across its lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalStats {
    /// Batches durably applied (excluding replay).
    pub batches_applied: u64,
    /// Mutations durably applied (excluding replay).
    pub mutations_applied: u64,
    /// WAL appends (one per batch, plus replayed history on reopen).
    pub wal_appends: u64,
    /// WAL durability barriers.
    pub wal_fsyncs: u64,
    /// Pages written through the WAL disk.
    pub wal_page_writes: u64,
    /// Epoch census.
    pub epochs: EpochStats,
}

/// A mutation validated against the overlay and ready to apply.
enum PlannedOp {
    Insert(Entry),
    Replace {
        dn: Dn,
        add: Vec<(AttrName, Value)>,
        remove: Vec<(AttrName, Value)>,
    },
    Remove(Dn),
}

struct StoreInner {
    wal: Wal,
    dir: Directory,
    list: LiveList,
    indexes: LiveIndexes,
}

/// The live directory store. Clone-free sharing via `Arc` outside.
pub struct JournalStore {
    pager: Pager,
    epochs: Arc<EpochRegistry>,
    inner: Mutex<StoreInner>,
    batches_applied: AtomicU64,
    mutations_applied: AtomicU64,
    last_replay_us: AtomicU64,
}

impl JournalStore {
    /// Open a store over a seed directory with a fresh (empty) WAL on an
    /// in-memory device with the pager's page size.
    pub fn create(pager: &Pager, seed: Directory) -> PagerResult<JournalStore> {
        let disk: Box<dyn Disk> =
            Box::new(MemDisk::new(pager.page_size(), IoStats::new()));
        let (store, _report) = JournalStore::open(pager, seed, disk)?;
        Ok(store)
    }

    /// Open a store over a seed directory plus a WAL device, replaying
    /// the committed prefix of the log on top of the seed.
    ///
    /// Replay stops at the first batch that fails to decode or apply
    /// (a torn tail the checksum happened to pass cannot re-validate);
    /// the log is truncated back to the last good batch so the next
    /// append overwrites the garbage.
    pub fn open(
        pager: &Pager,
        seed: Directory,
        disk: Box<dyn Disk>,
    ) -> PagerResult<(JournalStore, RecoveryReport)> {
        JournalStore::open_with_clock(pager, seed, disk, &MonotonicClock::new())
    }

    /// [`JournalStore::open`] with an injected time source for the
    /// recovery-report replay timing.
    pub fn open_with_clock(
        pager: &Pager,
        seed: Directory,
        disk: Box<dyn Disk>,
        clock: &dyn Clock,
    ) -> PagerResult<(JournalStore, RecoveryReport)> {
        let t0 = clock.now();
        let (wal, records) = Wal::open(disk)?;
        let epochs = EpochRegistry::new();
        let list = LiveList::bulk_load(pager, Arc::clone(&epochs), seed.iter_sorted())?;
        let indexes = LiveIndexes::build(pager, seed.iter_sorted())?;
        let mut inner = StoreInner {
            wal,
            dir: seed,
            list,
            indexes,
        };

        let mut report = RecoveryReport::default();
        let full_tail = inner.wal.tail();
        let mut good_end = None;
        for rec in &records {
            let Ok(batch) = MutationBatch::decode(&rec.payload) else {
                break;
            };
            let Ok(plan) = plan_batch(&inner, &batch) else {
                break;
            };
            apply_plan(&mut inner, plan)?;
            epochs.advance();
            report.batches += 1;
            report.mutations += batch.len();
            good_end = Some(rec.end);
        }
        if report.batches < records.len() {
            let keep = good_end.unwrap_or(8);
            report.truncated_bytes = full_tail - keep;
            inner.wal.truncate_to(keep)?;
        }
        report.replay_us = clock.now().saturating_sub(t0).as_micros() as u64;

        // Replay must not double-count "applied" work.
        let store = JournalStore {
            pager: pager.clone(),
            epochs,
            inner: Mutex::new(inner),
            batches_applied: AtomicU64::new(0),
            mutations_applied: AtomicU64::new(0),
            last_replay_us: AtomicU64::new(report.replay_us),
        };
        Ok((store, report))
    }

    /// Reopen from a raw WAL byte image (the crash-recovery tests
    /// truncate this at arbitrary byte boundaries).
    pub fn open_from_wal_bytes(
        pager: &Pager,
        seed: Directory,
        bytes: &[u8],
        wal_page_size: usize,
    ) -> PagerResult<(JournalStore, RecoveryReport)> {
        JournalStore::open(pager, seed, Wal::disk_from_bytes(bytes, wal_page_size))
    }

    /// Validate, durably log, and apply one batch. Atomic: on any
    /// validation error nothing is logged or applied.
    pub fn apply(&self, batch: &MutationBatch) -> Result<ApplyOutcome, JournalError> {
        let mut inner = self.lock();
        let plan = plan_batch(&inner, batch)?;
        let mut payload = Vec::new();
        batch.encode(&mut payload);
        inner.wal.append(&payload)?; // ── durability point ──
        apply_plan(&mut inner, plan)?;
        drop(inner);
        let epoch = self.epochs.advance();
        self.batches_applied.fetch_add(1, Ordering::Relaxed);
        self.mutations_applied
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        Ok(ApplyOutcome {
            epoch,
            mutations: batch.len(),
        })
    }

    /// Pin the current epoch and capture an immutable view. Cheap:
    /// clones page-table metadata, reads no pages.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let guard = self.epochs.pin();
        let (list, fences) = inner.list.snapshot();
        Snapshot {
            pager: self.pager.clone(),
            list,
            fences,
            guard,
        }
    }

    /// Evaluate an atomic query against the *current* state under the
    /// store lock: index probe with scope filtering and fetch-time
    /// verification, scan fallback — `IndexedDirectory` semantics.
    pub fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>> {
        let inner = self.lock();
        match inner.indexes.probe(filter) {
            Some(mut ids) => {
                let base_key = base.sort_key().clone();
                ids.sort_unstable();
                ids.dedup();
                let mut hits: Vec<(&SortKey, netdir_model::EntryId)> = ids
                    .iter()
                    .filter_map(|&id| inner.indexes.key_of(id).map(|k| (k, id)))
                    .filter(|(k, _)| match scope {
                        Scope::Base => **k == base_key,
                        Scope::Sub => base_key.subsumes(k),
                        Scope::One => {
                            base_key.subsumes(k) && k.depth() <= base_key.depth() + 1
                        }
                    })
                    .collect();
                hits.sort_by(|a, b| a.0.cmp(b.0));
                let mut w = ListWriter::new(&self.pager);
                for (k, _) in hits {
                    if let Some(e) = inner.list.fetch(k.as_bytes())? {
                        if filter.matches(&e) {
                            w.push(&e)?;
                        }
                    }
                }
                w.finish()
            }
            None => {
                let (list, fences) = inner.list.snapshot();
                drop(inner);
                select_scope(&self.pager, &list, &fences, base, scope, |e| {
                    filter.matches(e)
                })
            }
        }
    }

    /// Look up one entry by DN in the current state.
    pub fn lookup(&self, dn: &Dn) -> Option<Entry> {
        self.lock().dir.lookup(dn).cloned()
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.lock().list.len()
    }

    /// True iff the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The writer's current epoch.
    pub fn epoch(&self) -> u64 {
        self.epochs.current()
    }

    /// Run `f` over the current directory mirror under the store lock
    /// (e.g. to rebuild static query structures after a batch).
    pub fn with_directory<R>(&self, f: impl FnOnce(&Directory) -> R) -> R {
        f(&self.lock().dir)
    }

    /// The raw WAL image (testing and backup).
    pub fn wal_bytes(&self) -> PagerResult<Vec<u8>> {
        self.lock().wal.raw_bytes()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> JournalStats {
        let inner = self.lock();
        JournalStats {
            batches_applied: self.batches_applied.load(Ordering::Relaxed),
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            wal_appends: inner.wal.appends(),
            wal_fsyncs: inner.wal.fsyncs(),
            wal_page_writes: inner.wal.page_writes(),
            epochs: self.epochs.stats(),
        }
    }

    /// Export the write-path counters into a metrics registry under the
    /// stable names in [`netdir_obs::names`].
    pub fn sync_metrics(&self, m: &MetricsRegistry) {
        let s = self.stats();
        m.counter(names::WAL_FSYNCS).set(s.wal_fsyncs);
        m.counter(names::WAL_PAGE_WRITES).set(s.wal_page_writes);
        m.counter(names::MUTATION_BATCHES).set(s.batches_applied);
        m.counter(names::MUTATIONS_APPLIED).set(s.mutations_applied);
        m.gauge(names::EPOCH_LAG)
            .set(s.epochs.current - s.epochs.min_pinned.unwrap_or(s.epochs.current));
        m.counter(names::JOURNAL_PAGES_RECLAIMED)
            .set(s.epochs.reclaimed_total);
        let replay = self.last_replay_us.load(Ordering::Relaxed);
        if replay > 0 {
            m.histogram(names::WAL_REPLAY_US).observe(replay);
            self.last_replay_us.store(0, Ordering::Relaxed);
        }
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Dry-run the batch against an overlay of the current state. Returns
/// the concrete operations to apply, or the first violation.
fn plan_batch(
    inner: &StoreInner,
    batch: &MutationBatch,
) -> Result<Vec<PlannedOp>, ModelError> {
    // key → Some(entry) (exists, possibly pending) | None (pending delete)
    let mut overlay: BTreeMap<Vec<u8>, Option<Entry>> = BTreeMap::new();
    let current = |overlay: &BTreeMap<Vec<u8>, Option<Entry>>, dn: &Dn| -> Option<Entry> {
        let key = dn.sort_key().as_bytes().to_vec();
        match overlay.get(&key) {
            Some(slot) => slot.clone(),
            None => inner.dir.lookup(dn).cloned(),
        }
    };
    let mut plan = Vec::with_capacity(batch.len());
    for m in batch.mutations() {
        match m {
            Mutation::Add(e) => {
                if let Some(schema) = inner.dir.schema() {
                    e.validate(schema)?;
                } else {
                    e.check_rdn_in_values()?;
                }
                if current(&overlay, e.dn()).is_some() {
                    return Err(ModelError::DuplicateDn {
                        dn: e.dn().to_string(),
                    });
                }
                overlay.insert(e.dn().sort_key().as_bytes().to_vec(), Some(e.clone()));
                plan.push(PlannedOp::Insert(e.clone()));
            }
            Mutation::Modify {
                dn,
                add,
                remove,
                remove_attrs,
            } => {
                let cur = current(&overlay, dn).ok_or_else(|| ModelError::NoSuchEntry {
                    dn: dn.to_string(),
                })?;
                // Expand whole-attribute removals into concrete pairs
                // against the current value set, so apply and replay run
                // the exact same pair-level edit.
                let mut remove_all: Vec<(AttrName, Value)> = remove.clone();
                for (a, v) in cur.pairs() {
                    if remove_attrs.iter().any(|ra| ra == a) {
                        remove_all.push((a.clone(), v.clone()));
                    }
                }
                // Rebuild through the builder exactly like
                // `Directory::modify` will.
                let mut b = Entry::builder(cur.dn().clone());
                'pairs: for (a, v) in cur.pairs() {
                    for (ra, rv) in &remove_all {
                        if a == ra && v.canonical() == rv.canonical() {
                            continue 'pairs;
                        }
                    }
                    b = b.attr(a.clone(), v.clone());
                }
                for (a, v) in add {
                    b = b.attr(a.clone(), v.clone());
                }
                let rebuilt = b.build()?;
                if let Some(schema) = inner.dir.schema() {
                    rebuilt.validate(schema)?;
                }
                overlay.insert(dn.sort_key().as_bytes().to_vec(), Some(rebuilt));
                plan.push(PlannedOp::Replace {
                    dn: dn.clone(),
                    add: add.clone(),
                    remove: remove_all,
                });
            }
            Mutation::Delete(dn) => {
                if current(&overlay, dn).is_none() {
                    return Err(ModelError::NoSuchEntry {
                        dn: dn.to_string(),
                    });
                }
                overlay.insert(dn.sort_key().as_bytes().to_vec(), None);
                plan.push(PlannedOp::Remove(dn.clone()));
            }
        }
    }
    Ok(plan)
}

/// Apply a validated plan to the directory mirror, the entry list, and
/// the indexes. Must not fail post-validation; a storage error here is
/// surfaced but leaves the batch partially applied (callers treat it as
/// fatal).
fn apply_plan(inner: &mut StoreInner, plan: Vec<PlannedOp>) -> PagerResult<()> {
    for op in plan {
        match op {
            PlannedOp::Insert(e) => {
                let id = inner.dir.insert(e).map_err(storage_invariant)?;
                let stored = inner.dir.get(id).expect("just inserted").clone();
                inner.list.insert(&stored)?;
                inner.indexes.insert_entry(&stored)?;
            }
            PlannedOp::Replace { dn, add, remove } => {
                let old = inner
                    .dir
                    .lookup(&dn)
                    .expect("validated to exist")
                    .clone();
                inner
                    .dir
                    .modify(&dn, &add, &remove)
                    .map_err(storage_invariant)?;
                let new = inner.dir.lookup(&dn).expect("still exists").clone();
                inner.list.replace(&new)?;
                inner.indexes.remove_entry(&old)?;
                inner.indexes.insert_entry(&new)?;
            }
            PlannedOp::Remove(dn) => {
                let old = inner.dir.remove(&dn).map_err(storage_invariant)?;
                inner.list.remove(old.dn().sort_key().as_bytes())?;
                inner.indexes.remove_entry(&old)?;
            }
        }
    }
    Ok(())
}

/// A model error after successful validation means the plan and the
/// mirror disagree — report it as corruption, not as a user error.
fn storage_invariant(e: ModelError) -> PagerError {
    PagerError::CorruptRecord {
        detail: format!("planned mutation failed to apply: {e}"),
    }
}

/// Scope-scan `list` (with `fences` as page lower bounds) exactly like
/// `DnTable::scan_scope`, writing matches to a fresh result list.
fn select_scope(
    pager: &Pager,
    list: &PagedList<Entry>,
    fences: &[Vec<u8>],
    base: &Dn,
    scope: Scope,
    mut pred: impl FnMut(&Entry) -> bool,
) -> PagerResult<PagedList<Entry>> {
    let prefix = base.sort_key().as_bytes().to_vec();
    let start_page = match fences.binary_search_by(|f| f[..].cmp(&prefix)) {
        Ok(p) => p,
        Err(0) => 0,
        Err(p) => p - 1,
    };
    let mut w = ListWriter::new(pager);
    'outer: for r in list.iter_from_page(start_page) {
        let e = r?;
        let key = e.dn().sort_key().as_bytes().to_vec();
        if key < prefix {
            continue;
        }
        if !key.starts_with(&prefix) {
            break 'outer;
        }
        if scope.contains(base, e.dn()) && pred(&e) {
            w.push(&e)?;
        }
    }
    w.finish()
}

/// An immutable, epoch-pinned view of the store.
///
/// Holding the snapshot keeps every page it references readable; the
/// pin releases on drop. Implements [`AtomicSource`], so the full
/// query stack — including `evaluate_parallel` — runs unchanged against
/// it.
pub struct Snapshot {
    pager: Pager,
    list: PagedList<Entry>,
    fences: Vec<Vec<u8>>,
    guard: crate::epoch::EpochGuard,
}

impl Snapshot {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.guard.epoch()
    }

    /// Number of entries visible.
    pub fn len(&self) -> u64 {
        self.list.len()
    }

    /// True iff the snapshot sees no entries.
    pub fn is_empty(&self) -> bool {
        self.list.len() == 0
    }

    /// All visible entries, sorted by reverse DN.
    pub fn to_vec(&self) -> PagerResult<Vec<Entry>> {
        self.list.to_vec()
    }

    /// Evaluate `(base ? scope ? pred)` by fence-guided scope scan.
    pub fn select_scope(
        &self,
        base: &Dn,
        scope: Scope,
        pred: impl FnMut(&Entry) -> bool,
    ) -> PagerResult<PagedList<Entry>> {
        select_scope(&self.pager, &self.list, &self.fences, base, scope, pred)
    }
}

impl AtomicSource for Snapshot {
    /// Scope scan only: probing the *live* indexes from a snapshot could
    /// miss entries deleted after the pin, so the snapshot answers from
    /// its own pinned pages exclusively.
    fn evaluate_atomic(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &AtomicFilter,
    ) -> PagerResult<PagedList<Entry>> {
        self.select_scope(base, scope, |e| filter.matches(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdir_pager::tiny_pager;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn seed() -> Directory {
        let mut d = Directory::new();
        for s in ["dc=com", "dc=att, dc=com", "ou=people, dc=att, dc=com"] {
            d.insert(Entry::builder(dn(s)).class("container").build().unwrap())
                .unwrap();
        }
        d
    }

    fn person(i: usize) -> Entry {
        Entry::builder(dn(&format!("uid=u{i:02}, ou=people, dc=att, dc=com")))
            .class("person")
            .attr("surName", format!("sur{i:02}"))
            .attr("priority", i as i64)
            .build()
            .unwrap()
    }

    fn add_batch(range: std::ops::Range<usize>) -> MutationBatch {
        MutationBatch::from_mutations(range.map(|i| Mutation::Add(person(i))).collect())
    }

    #[test]
    fn apply_makes_entries_queryable() {
        let pager = tiny_pager();
        let store = JournalStore::create(&pager, seed()).unwrap();
        store.apply(&add_batch(0..5)).unwrap();
        let out = store
            .evaluate_atomic(&dn("dc=com"), Scope::Sub, &AtomicFilter::present("uid"))
            .unwrap();
        assert_eq!(out.len(), 5);
        // Probe path and scan path agree.
        let scan = store
            .evaluate_atomic(&dn("dc=com"), Scope::Sub, &AtomicFilter::True)
            .unwrap();
        assert_eq!(scan.len(), 8); // 3 containers + 5 people
    }

    #[test]
    fn batches_are_atomic() {
        let pager = tiny_pager();
        let store = JournalStore::create(&pager, seed()).unwrap();
        let mut bad = add_batch(0..3);
        bad.push(Mutation::Delete(dn("uid=ghost, dc=com"))); // fails validation
        let err = store.apply(&bad).unwrap_err();
        assert!(matches!(err, JournalError::Model(_)));
        assert_eq!(store.len(), 3, "nothing from the failed batch applied");
        assert_eq!(store.stats().wal_appends, 0, "nothing logged either");
    }

    #[test]
    fn modify_and_delete_flow_through() {
        let pager = tiny_pager();
        let store = JournalStore::create(&pager, seed()).unwrap();
        store.apply(&add_batch(0..3)).unwrap();
        let target = dn("uid=u01, ou=people, dc=att, dc=com");
        store
            .apply(&MutationBatch::from_mutations(vec![Mutation::Modify {
                dn: target.clone(),
                add: vec![("title".into(), Value::Str("chief".into()))],
                remove: vec![],
                remove_attrs: vec!["priority".into()],
            }]))
            .unwrap();
        let e = store.lookup(&target).unwrap();
        assert_eq!(e.first_str(&"title".into()), Some("chief"));
        assert!(!e.has_attr(&"priority".into()));
        // The int index no longer finds it.
        let out = store
            .evaluate_atomic(
                &dn("dc=com"),
                Scope::Sub,
                &AtomicFilter::int_cmp("priority", netdir_filter::atomic::IntOp::Eq, 1),
            )
            .unwrap();
        assert_eq!(out.len(), 0);

        store
            .apply(&MutationBatch::from_mutations(vec![Mutation::Delete(
                target.clone(),
            )]))
            .unwrap();
        assert!(store.lookup(&target).is_none());
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let pager = tiny_pager();
        let store = JournalStore::create(&pager, seed()).unwrap();
        store.apply(&add_batch(0..4)).unwrap();
        let snap = store.snapshot();
        let before = snap.len();
        store.apply(&add_batch(4..9)).unwrap();
        store
            .apply(&MutationBatch::from_mutations(vec![Mutation::Delete(dn(
                "uid=u00, ou=people, dc=att, dc=com",
            ))]))
            .unwrap();
        assert_eq!(snap.len(), before, "snapshot length drifted");
        let out = snap
            .evaluate_atomic(&dn("dc=com"), Scope::Sub, &AtomicFilter::present("uid"))
            .unwrap();
        assert_eq!(out.len(), 4, "snapshot sees exactly its epoch's entries");
        // Current state moved on.
        assert_eq!(store.len(), 3 + 8);
    }

    #[test]
    fn replay_reconstructs_state_and_ids() {
        let pager = tiny_pager();
        let store = JournalStore::create(&pager, seed()).unwrap();
        store.apply(&add_batch(0..6)).unwrap();
        store
            .apply(&MutationBatch::from_mutations(vec![
                Mutation::Delete(dn("uid=u02, ou=people, dc=att, dc=com")),
                Mutation::Modify {
                    dn: dn("uid=u03, ou=people, dc=att, dc=com"),
                    add: vec![("note".into(), Value::Str("kept".into()))],
                    remove: vec![],
                    remove_attrs: vec![],
                },
            ]))
            .unwrap();
        let bytes = store.wal_bytes().unwrap();

        let pager2 = tiny_pager();
        let (re, report) =
            JournalStore::open_from_wal_bytes(&pager2, seed(), &bytes, pager.page_size())
                .unwrap();
        assert_eq!(report.batches, 2);
        assert_eq!(report.mutations, 8);
        assert_eq!(re.len(), store.len());
        // Entries identical, including assigned ids.
        let a = store.snapshot().to_vec().unwrap();
        let b = re.snapshot().to_vec().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id(), y.id(), "replay changed id of {}", x.dn());
            assert_eq!(x.pairs(), y.pairs());
        }
    }

    #[test]
    fn metrics_sync_exports_stable_names() {
        let pager = tiny_pager();
        let store = JournalStore::create(&pager, seed()).unwrap();
        store.apply(&add_batch(0..2)).unwrap();
        let m = MetricsRegistry::new();
        store.sync_metrics(&m);
        let flat: std::collections::BTreeMap<String, u64> =
            m.flatten().into_iter().collect();
        assert_eq!(flat[names::MUTATION_BATCHES], 1);
        assert_eq!(flat[names::MUTATIONS_APPLIED], 2);
        assert!(flat[names::WAL_FSYNCS] >= 1);
    }
}
