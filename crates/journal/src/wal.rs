//! A write-ahead log over raw disk pages.
//!
//! The log is a byte stream laid across fixed-size pages of a
//! [`Disk`], so durability I/O is charged to the same page-transfer
//! ledger as everything else in the workspace. Layout:
//!
//! ```text
//! offset 0:  magic "NDJW" (4 bytes) | version u32 LE (=1)
//! then:      records, back to back, each
//!            [payload len u32 LE][crc32(payload) u32 LE][payload]
//! tail:      zeroes (len == 0 marks the clean end of the log)
//! ```
//!
//! Records may span page boundaries. Recovery scans from the header and
//! stops at the first zero length, short record, or checksum mismatch —
//! everything before that point is the *committed prefix*; everything
//! after is discarded. A record is durable exactly when [`Wal::append`]
//! returns: the append path writes every touched page through the disk
//! before returning (the "fsync").

use netdir_pager::disk::{Disk, MemDisk};
use netdir_pager::{IoStats, PagerError, PagerResult};

/// First bytes of every log: identifies the file and pins the format.
pub const WAL_MAGIC: [u8; 4] = *b"NDJW";

/// On-disk format version.
pub const WAL_VERSION: u32 = 1;

const HEADER_BYTES: u64 = 8;
const RECORD_HEADER_BYTES: u64 = 8;

/// CRC-32 (IEEE 802.3, reflected), bit-serial — small and dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// One recovered record and where it ends in the log's byte stream.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The record's payload, checksum-verified.
    pub payload: Vec<u8>,
    /// Byte offset just past this record (a valid truncation point).
    pub end: u64,
}

/// An append-only, checksummed log on a page device.
pub struct Wal {
    disk: Box<dyn Disk>,
    page_size: u64,
    /// Next byte offset to write.
    tail: u64,
    /// Full image of the page containing `tail`, zeroed past `tail`.
    tail_image: Vec<u8>,
    /// Page index of `tail_image`.
    tail_page: u64,
    appends: u64,
    fsyncs: u64,
    page_writes: u64,
}

impl Wal {
    /// Start a fresh log on an empty device, writing the header durably.
    pub fn create(disk: Box<dyn Disk>) -> PagerResult<Wal> {
        let page_size = disk.page_size() as u64;
        let mut image = vec![0u8; page_size as usize];
        image[..4].copy_from_slice(&WAL_MAGIC);
        image[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
        let mut wal = Wal {
            disk,
            page_size,
            tail: HEADER_BYTES,
            tail_image: image,
            tail_page: 0,
            appends: 0,
            fsyncs: 0,
            page_writes: 0,
        };
        wal.ensure_allocated(0)?;
        wal.flush_tail_page()?;
        wal.fsyncs += 1;
        Ok(wal)
    }

    /// Reopen an existing log, returning the committed prefix in order.
    ///
    /// The log's tail is positioned after the last valid record, so
    /// subsequent appends overwrite any torn garbage.
    pub fn open(disk: Box<dyn Disk>) -> PagerResult<(Wal, Vec<WalRecord>)> {
        if disk.num_pages() == 0 {
            return Ok((Wal::create(disk)?, Vec::new()));
        }
        let page_size = disk.page_size() as u64;
        let mut buf = Vec::with_capacity((disk.num_pages() * page_size) as usize);
        for p in 0..disk.num_pages() {
            buf.extend_from_slice(&disk.read_page(p)?);
        }
        if buf.len() < HEADER_BYTES as usize || buf[..4] != WAL_MAGIC {
            return Err(PagerError::CorruptRecord {
                detail: "not a journal WAL (bad magic)".into(),
            });
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(PagerError::CorruptRecord {
                detail: format!("unsupported WAL version {version}"),
            });
        }

        let mut records = Vec::new();
        let mut pos = HEADER_BYTES as usize;
        loop {
            if pos + RECORD_HEADER_BYTES as usize > buf.len() {
                break;
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            if len == 0 {
                break; // clean end of log
            }
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            let body_start = pos + RECORD_HEADER_BYTES as usize;
            if body_start + len > buf.len() {
                break; // torn: record runs past the device
            }
            let payload = &buf[body_start..body_start + len];
            if crc32(payload) != crc {
                break; // torn or corrupt: checksum mismatch
            }
            pos = body_start + len;
            records.push(WalRecord {
                payload: payload.to_vec(),
                end: pos as u64,
            });
        }

        let tail = pos as u64;
        let tail_page = tail / page_size;
        let mut tail_image = vec![0u8; page_size as usize];
        if tail_page < disk.num_pages() {
            let in_page = (tail % page_size) as usize;
            let start = (tail_page * page_size) as usize;
            // Keep only bytes before the tail; anything after is garbage
            // from a torn write and must not survive the next flush.
            tail_image[..in_page].copy_from_slice(&buf[start..start + in_page]);
        }
        let wal = Wal {
            disk,
            page_size,
            tail,
            tail_image,
            tail_page,
            appends: 0,
            fsyncs: 0,
            page_writes: 0,
        };
        Ok((wal, records))
    }

    /// Append one record durably. When this returns, the record survives
    /// a crash: every touched page has been written through the disk.
    pub fn append(&mut self, payload: &[u8]) -> PagerResult<()> {
        if payload.is_empty() {
            return Err(PagerError::CorruptRecord {
                detail: "empty WAL payload".into(),
            });
        }
        let mut rec = Vec::with_capacity(RECORD_HEADER_BYTES as usize + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);

        let mut written = 0usize;
        while written < rec.len() {
            let off = self.tail + written as u64;
            let page = off / self.page_size;
            let in_page = (off % self.page_size) as usize;
            if page != self.tail_page {
                // Crossing into a fresh page: flush the filled one.
                self.flush_tail_page()?;
                self.tail_page = page;
                self.tail_image.fill(0);
            }
            let n = (self.page_size as usize - in_page).min(rec.len() - written);
            self.tail_image[in_page..in_page + n].copy_from_slice(&rec[written..written + n]);
            written += n;
        }
        self.flush_tail_page()?;
        self.tail += rec.len() as u64;
        // The record may end exactly at a page boundary; keep the image
        // pointed at the page that will receive the next byte.
        let next_page = self.tail / self.page_size;
        if next_page != self.tail_page {
            self.tail_page = next_page;
            self.tail_image.fill(0);
        }
        self.appends += 1;
        self.fsyncs += 1;
        Ok(())
    }

    /// Discard everything after `offset` (a record boundary from
    /// [`Wal::open`]); later appends overwrite the discarded bytes.
    pub fn truncate_to(&mut self, offset: u64) -> PagerResult<()> {
        debug_assert!(offset >= HEADER_BYTES && offset <= self.tail);
        self.tail = offset;
        self.tail_page = offset / self.page_size;
        self.tail_image.fill(0);
        if self.tail_page < self.disk.num_pages() {
            let page = self.disk.read_page(self.tail_page)?;
            let keep = (offset % self.page_size) as usize;
            self.tail_image[..keep].copy_from_slice(&page[..keep]);
        }
        self.flush_tail_page()?;
        Ok(())
    }

    fn ensure_allocated(&self, page: u64) -> PagerResult<()> {
        while self.disk.num_pages() <= page {
            self.disk.allocate();
        }
        Ok(())
    }

    fn flush_tail_page(&mut self) -> PagerResult<()> {
        self.ensure_allocated(self.tail_page)?;
        self.disk
            .write_page(self.tail_page, bytes::Bytes::from(self.tail_image.clone()))?;
        self.page_writes += 1;
        Ok(())
    }

    /// Bytes appended so far (including the 8-byte header).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Records appended through this handle.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Durability barriers issued (one per create/append).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Pages written through the disk by this handle.
    pub fn page_writes(&self) -> u64 {
        self.page_writes
    }

    /// The underlying device's I/O ledger.
    pub fn io(&self) -> &IoStats {
        self.disk.stats()
    }

    /// The raw log image: every allocated page, concatenated. Used by
    /// the crash-recovery tests to truncate at arbitrary byte boundaries.
    pub fn raw_bytes(&self) -> PagerResult<Vec<u8>> {
        let mut out = Vec::with_capacity((self.disk.num_pages() * self.page_size) as usize);
        for p in 0..self.disk.num_pages() {
            out.extend_from_slice(&self.disk.read_page(p)?);
        }
        Ok(out)
    }

    /// Build a device holding `bytes` (zero-padded to whole pages) —
    /// the reopen side of the crash-recovery tests.
    pub fn disk_from_bytes(bytes: &[u8], page_size: usize) -> Box<dyn Disk> {
        let disk = MemDisk::new(page_size, IoStats::new());
        let pages = bytes.len().div_ceil(page_size);
        for p in 0..pages {
            let id = disk.allocate();
            let start = p * page_size;
            let end = (start + page_size).min(bytes.len());
            let mut img = vec![0u8; page_size];
            img[..end - start].copy_from_slice(&bytes[start..end]);
            disk.write_page(id, bytes::Bytes::from(img)).unwrap();
        }
        Box::new(disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(page_size: usize) -> Box<dyn Disk> {
        Box::new(MemDisk::new(page_size, IoStats::new()))
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_open_recovers_everything() {
        let mut w = Wal::create(mem(64)).unwrap();
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 3 + i as usize * 7]).collect();
        for p in &payloads {
            w.append(p).unwrap();
        }
        let bytes = w.raw_bytes().unwrap();
        let (w2, recs) = Wal::open(Wal::disk_from_bytes(&bytes, 64)).unwrap();
        assert_eq!(recs.len(), payloads.len());
        for (r, p) in recs.iter().zip(&payloads) {
            assert_eq!(&r.payload, p);
        }
        assert_eq!(w2.tail(), w.tail());
    }

    #[test]
    fn records_span_pages() {
        let mut w = Wal::create(mem(32)).unwrap();
        let big = vec![0xabu8; 200]; // many pages worth
        w.append(&big).unwrap();
        w.append(&[1, 2, 3]).unwrap();
        let bytes = w.raw_bytes().unwrap();
        let (_, recs) = Wal::open(Wal::disk_from_bytes(&bytes, 32)).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].payload, big);
        assert_eq!(recs[1].payload, vec![1, 2, 3]);
    }

    #[test]
    fn truncation_recovers_a_committed_prefix() {
        let mut w = Wal::create(mem(64)).unwrap();
        let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i + 1; 10 + i as usize * 13]).collect();
        let mut ends = Vec::new();
        for p in &payloads {
            w.append(p).unwrap();
            ends.push(w.tail());
        }
        let bytes = w.raw_bytes().unwrap();
        for cut in 8..bytes.len() {
            let (_, recs) = Wal::open(Wal::disk_from_bytes(&bytes[..cut], 64)).unwrap();
            // The recovered records must be exactly the committed prefix:
            // every record wholly before `cut` survives, nothing after.
            let expect = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(recs.len(), expect, "cut at {cut}");
            for (r, p) in recs.iter().zip(&payloads) {
                assert_eq!(&r.payload, p, "cut at {cut}");
            }
        }
    }

    #[test]
    fn append_after_recovery_overwrites_torn_tail() {
        let mut w = Wal::create(mem(64)).unwrap();
        w.append(&[9u8; 50]).unwrap();
        let keep = w.tail();
        w.append(&[7u8; 40]).unwrap();
        let bytes = w.raw_bytes().unwrap();
        // Cut mid-way through the second record.
        let cut = keep as usize + 20;
        let (mut w2, recs) = Wal::open(Wal::disk_from_bytes(&bytes[..cut], 64)).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(w2.tail(), keep);
        w2.append(&[5u8; 30]).unwrap();
        let bytes2 = w2.raw_bytes().unwrap();
        let (_, recs2) = Wal::open(Wal::disk_from_bytes(&bytes2, 64)).unwrap();
        assert_eq!(recs2.len(), 2);
        assert_eq!(recs2[0].payload, vec![9u8; 50]);
        assert_eq!(recs2[1].payload, vec![5u8; 30]);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let disk = mem(64);
        disk.allocate();
        assert!(Wal::open(disk).is_err());
    }

    #[test]
    fn counters_track_durability_work() {
        let mut w = Wal::create(mem(64)).unwrap();
        let f0 = w.fsyncs();
        w.append(&[1u8; 10]).unwrap();
        w.append(&[2u8; 100]).unwrap(); // spans pages
        assert_eq!(w.appends(), 2);
        assert_eq!(w.fsyncs(), f0 + 2);
        assert!(w.page_writes() >= 3);
        assert!(w.io().snapshot().writes >= 3);
    }
}
