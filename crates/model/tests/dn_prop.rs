//! Property tests for the distinguished-name machinery — the invariants
//! every evaluation algorithm rides on.

use netdir_model::{Dn, Entry, Rdn, Value};
use proptest::prelude::*;

/// RDN components over a small alphabet (so prefix traps like
/// `dc=a` vs `dc=ab` actually occur).
fn arb_component() -> impl Strategy<Value = (String, String)> {
    (
        prop_oneof![Just("dc"), Just("ou"), Just("cn"), Just("uid")],
        "[a-c]{1,3}",
    )
        .prop_map(|(a, v)| (a.to_string(), v))
}

fn arb_dn() -> impl Strategy<Value = Dn> {
    proptest::collection::vec(arb_component(), 0..5).prop_map(|parts| {
        let rdns: Vec<Rdn> = parts
            .into_iter()
            .map(|(a, v)| Rdn::single(a.as_str(), v.as_str()).unwrap())
            .collect();
        Dn::from_rdns(rdns)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The crux of Section 4.2: ancestor(x, y) ⇔ key(x) is a proper
    /// byte-prefix of key(y).
    #[test]
    fn ancestry_iff_key_prefix(x in arb_dn(), y in arb_dn()) {
        let semantic = x.depth() < y.depth()
            && (0..y.depth() - x.depth())
                .try_fold(y.clone(), |d, _| d.parent())
                == Some(x.clone());
        let key = x.sort_key().is_ancestor_of(y.sort_key());
        prop_assert_eq!(semantic, key, "x={} y={}", x, y);
        prop_assert_eq!(x.is_ancestor_of(&y), key);
    }

    /// Parent ⇔ ancestor at distance exactly one.
    #[test]
    fn parent_is_distance_one_ancestor(x in arb_dn(), y in arb_dn()) {
        prop_assert_eq!(
            x.is_parent_of(&y),
            x.is_ancestor_of(&y) && x.depth() + 1 == y.depth()
        );
        if let Some(p) = y.parent() {
            prop_assert!(p.is_parent_of(&y) || y.depth() == 0);
        }
    }

    /// Ordering by sort key puts every DN after its ancestors and keeps
    /// subtrees contiguous.
    #[test]
    fn sort_puts_ancestors_first(mut dns in proptest::collection::vec(arb_dn(), 2..20)) {
        dns.sort();
        dns.dedup();
        for (i, d) in dns.iter().enumerate() {
            for later in &dns[i + 1..] {
                prop_assert!(!later.is_ancestor_of(d),
                    "{} sorts after its descendant {}", later, d);
            }
        }
        // Contiguity: in sorted order, a subtree's members directly
        // follow their root — descendant flags form a true-prefix.
        for (i, base) in dns.iter().enumerate() {
            let flags: Vec<bool> =
                dns[i + 1..].iter().map(|d| base.is_ancestor_of(d)).collect();
            let first_false = flags.iter().position(|f| !f).unwrap_or(flags.len());
            prop_assert!(
                flags[first_false..].iter().all(|f| !f),
                "subtree of {} is not contiguous",
                base
            );
        }
    }

    /// Display → parse is the identity (canonically).
    #[test]
    fn display_parse_roundtrip(d in arb_dn()) {
        let printed = d.to_string();
        let back = Dn::parse(&printed).unwrap();
        prop_assert_eq!(back, d);
    }

    /// child/parent are inverse.
    #[test]
    fn child_then_parent(d in arb_dn(), (a, v) in arb_component()) {
        let rdn = Rdn::single(a.as_str(), v.as_str()).unwrap();
        let c = d.child(rdn);
        prop_assert_eq!(c.parent(), Some(d.clone()));
        prop_assert!(d.is_parent_of(&c));
        prop_assert_eq!(c.depth(), d.depth() + 1);
    }

    /// Entry record encoding round-trips entries with arbitrary DNs and
    /// mixed-type values.
    #[test]
    fn entry_record_roundtrip(d in arb_dn(), n in 1i64..100, s in "[a-z]{0,8}") {
        prop_assume!(!d.is_root());
        use netdir_pager::record::Record;
        let e = Entry::builder(d.clone())
            .class("t")
            .attr("num", n)
            .attr("label", s)
            .attr("self", Value::Dn(d))
            .build()
            .unwrap();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        prop_assert_eq!(Entry::decode(&buf).unwrap(), e);
    }

    /// LDIF round-trips arbitrary entries.
    #[test]
    fn ldif_roundtrip(d in arb_dn(), n in -50i64..50) {
        prop_assume!(!d.is_root());
        let e = Entry::builder(d)
            .class("thing")
            .attr("weight", n)
            .build()
            .unwrap();
        let text = netdir_model::ldif::entry_to_ldif(&e);
        let back = netdir_model::ldif::entry_from_ldif(&text).unwrap();
        prop_assert_eq!(back, e);
    }
}
