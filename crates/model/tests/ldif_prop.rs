//! Property tests for the LDIF codec's RFC 2849 transport layer:
//! export→import must be the identity over *adversarial* string values
//! (newlines, leading/trailing spaces, colons, non-ASCII, lines past
//! the 76-column fold).

use netdir_model::ldif::{
    changes_from_ldif, changes_to_ldif, directory_from_ldif, directory_to_ldif,
    entry_from_ldif, entry_to_ldif, Change, ChangeRecord,
};
use netdir_model::{Directory, Dn, Entry, Value};
use proptest::prelude::*;

/// String values chosen to stress every special case in the format:
/// SAFE-STRING violations (base64 path), long values (folding path),
/// and plain values (the fast path).
fn arb_adversarial_value() -> impl Strategy<Value = String> {
    prop_oneof![
        // Plain, safe values.
        "[a-zA-Z0-9][a-zA-Z0-9 ]{0,10}",
        // Leading / trailing spaces and forbidden first bytes.
        " [a-z]{1,5}",
        "[a-z]{1,5} ",
        ":[a-z]{0,5}",
        "<[a-z]{0,5}",
        // Embedded newlines, carriage returns, tabs.
        "[a-z]{1,4}(\n|\r|\t)[a-z]{1,4}",
        // Lines that look like LDIF themselves (format injection).
        "dn: dc=evil",
        "[a-z]{1,3}:: aGk=",
        // Fold-boundary stress: longer than 76 columns.
        "[a-z]{70,200}",
        // Non-ASCII (multi-byte UTF-8 straddling fold points).
        "[à-ü]{1,40}",
        "[a-z]{74}[à-ü]{1,3}",
        // Empty.
        Just(String::new()),
    ]
}

fn arb_attr_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9]{0,11}"
}

/// Typed values for change records: adversarial strings, integers, DNs.
fn arb_typed_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_adversarial_value().prop_map(Value::Str),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        Just(Value::Dn(Dn::parse("ou=ref, dc=com").unwrap())),
    ]
}

/// One arbitrary change record over a small fixed DN pool.
fn arb_change_record() -> impl Strategy<Value = ChangeRecord> {
    let dn = prop_oneof![
        Just("uid=x, dc=com"),
        Just("cn=a b, ou=people, dc=att, dc=com"),
        Just("dc=org"),
    ]
    .prop_map(|s| Dn::parse(s).unwrap());
    let adds = proptest::collection::vec((arb_attr_name(), arb_typed_value()), 0..4);
    let removes = proptest::collection::vec((arb_attr_name(), arb_typed_value()), 0..4);
    let names = proptest::collection::vec(arb_attr_name(), 0..3);
    (dn, adds, removes, names, 0..3u8).prop_map(
        |(dn, add, remove, names, kind)| {
            let change = match kind {
                0 => {
                    let mut b = Entry::builder(dn.clone()).class("thing");
                    for (a, v) in add {
                        b = b.attr(a.as_str(), v);
                    }
                    Change::Add(b.build().unwrap())
                }
                1 => Change::Modify {
                    add: add.into_iter().map(|(a, v)| (a.as_str().into(), v)).collect(),
                    remove: remove
                        .into_iter()
                        .map(|(a, v)| (a.as_str().into(), v))
                        .collect(),
                    remove_attrs: names.into_iter().map(|n| n.as_str().into()).collect(),
                },
                _ => Change::Delete,
            };
            ChangeRecord { dn, change }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One entry with up to five adversarial values survives
    /// entry_to_ldif → entry_from_ldif exactly.
    #[test]
    fn adversarial_values_roundtrip(
        names in proptest::collection::vec(arb_attr_name(), 1..5),
        values in proptest::collection::vec(arb_adversarial_value(), 1..5),
    ) {
        let mut b = Entry::builder(Dn::parse("cn=t, dc=com").unwrap()).class("thing");
        for (n, v) in names.iter().zip(&values) {
            b = b.attr(n.as_str(), v.as_str());
        }
        let e = b.build().unwrap();
        let text = entry_to_ldif(&e);
        // Transport invariant: no physical line exceeds the fold width.
        for line in text.lines() {
            prop_assert!(line.len() <= 76, "unfolded line {line:?}");
        }
        let back = entry_from_ldif(&text).unwrap();
        prop_assert_eq!(back.pairs(), e.pairs(), "values mangled in transit");
    }

    /// Whole-directory export→import is the identity even when values
    /// contain blank-line lookalikes and folded blocks.
    #[test]
    fn directory_roundtrip_with_adversarial_values(
        v1 in arb_adversarial_value(),
        v2 in arb_adversarial_value(),
    ) {
        let mut d = Directory::new();
        d.insert(Entry::builder(Dn::parse("dc=com").unwrap()).class("dc").build().unwrap())
            .unwrap();
        d.insert(
            Entry::builder(Dn::parse("ou=a, dc=com").unwrap())
                .class("thing")
                .attr("payload", v1.as_str())
                .build()
                .unwrap(),
        )
        .unwrap();
        d.insert(
            Entry::builder(Dn::parse("ou=b, dc=com").unwrap())
                .class("thing")
                .attr("payload", v2.as_str())
                .build()
                .unwrap(),
        )
        .unwrap();
        let text = directory_to_ldif(&d);
        let back = directory_from_ldif(&text).unwrap();
        prop_assert_eq!(back.len(), d.len());
        for (x, y) in d.iter_sorted().zip(back.iter_sorted()) {
            prop_assert_eq!(x.dn(), y.dn());
            prop_assert_eq!(x.pairs(), y.pairs());
        }
    }

    /// Change-record documents (add / modify / delete, typed and
    /// adversarial values) survive export→import exactly.
    #[test]
    fn change_records_roundtrip(
        recs in proptest::collection::vec(arb_change_record(), 1..6),
    ) {
        let text = changes_to_ldif(&recs);
        for line in text.lines() {
            prop_assert!(line.len() <= 76, "unfolded line {line:?}");
        }
        let back = changes_from_ldif(&text).unwrap();
        prop_assert_eq!(back, recs, "change records mangled in transit");
    }
}
