//! # netdir-model — the network directory data model
//!
//! Section 3 of *Querying Network Directories* defines the model this crate
//! implements:
//!
//! * A **directory schema** `S = (C, A, σ, ψ)` — class names, attribute
//!   names, an attribute-typing function σ (shared across classes), and a
//!   map ψ from class to its allowed attributes ([`schema`]).
//! * A **directory instance** — a finite set of entries, each with a
//!   non-empty class set, a multiset of `(attribute, value)` pairs, and a
//!   **distinguished name** that both identifies it and places it in the
//!   hierarchy ([`entry`], [`directory`]).
//! * **Distinguished names** are sequences of RDNs, each RDN a set of
//!   `(attribute, value)` pairs, written leaf-first:
//!   `uid=jag, ou=userProfiles, dc=research, dc=att, dc=com` ([`dn`]).
//!
//! The crate also provides the load-bearing detail of the whole paper:
//! the **reverse-DN sort key** ([`dn::SortKey`]). All evaluation algorithms
//! assume lists sorted "based on the lexicographic ordering of the reverse
//! dn's", under which *the reverse dn of a parent entry is a prefix of the
//! reverse dn of a child entry* — so ancestor testing is byte-prefix
//! testing and subtrees are contiguous key ranges.

pub mod attr;
pub mod directory;
pub mod dn;
pub mod entry;
pub mod error;
pub mod ldif;
pub mod schema;
pub mod value;

pub use attr::{AttrName, ClassName};
pub use directory::Directory;
pub use dn::{Dn, Rdn, SortKey};
pub use entry::{Entry, EntryBuilder, EntryId};
pub use error::{ModelError, ModelResult};
pub use schema::{Schema, SchemaBuilder};
pub use value::{TypeName, Value};

/// The attribute every entry must carry, whose values are the entry's
/// classes (Definition 3.2, condition 2).
pub const OBJECT_CLASS: &str = "objectClass";
