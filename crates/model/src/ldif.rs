//! LDIF-style import/export.
//!
//! The figures render entries as a DN plus `attr: value` lines — the LDIF
//! interchange format every directory server of the paper's era spoke.
//! This module reads and writes that format, typed:
//!
//! ```text
//! dn: SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, dc=com
//! objectClass: SLAPolicyRules
//! SLARulePriority:i 2
//! SLATPRef:dn TPName=lsplitOff, ou=trafficProfile, ou=networkPolicies, dc=com
//!
//! dn: …next entry…
//! ```
//!
//! Plain `attr: value` lines are strings; `attr:i value` parses an
//! integer; `attr:dn value` parses a DN reference. (Standard LDIF carries
//! types in the schema instead; the suffix keeps round-trips lossless
//! without one.) Blank lines separate entries; `#` starts a comment.
//!
//! The RFC 2849 transport conventions are honored in both directions:
//!
//! * **Folding** — logical lines longer than 76 characters are folded;
//!   a physical line starting with a single space continues the
//!   previous logical line (the space is removed on read).
//! * **Base64** — `attr:: <base64>` carries a value that is not a
//!   SAFE-STRING (leading space/`:`/`<`, trailing space, or any byte
//!   outside printable ASCII — newlines, control characters, UTF-8).
//!   The writer encodes such values automatically, so *every* string
//!   value round-trips through export→import unchanged.

use crate::directory::Directory;
use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{ModelError, ModelResult};
use crate::value::Value;

/// Maximum physical line width before folding (RFC 2849 suggests 76).
const FOLD_WIDTH: usize = 76;

/// Can `s` travel as a plain `attr: value` line and come back intact?
///
/// Mirrors RFC 2849's SAFE-STRING, tightened to printable ASCII: no
/// leading space/colon/less-than, no trailing space, every byte in
/// `0x20..=0x7e`. Anything else goes base64.
fn is_safe_string(s: &str) -> bool {
    s.bytes().all(|b| (0x20..=0x7e).contains(&b))
        && !s.starts_with([' ', ':', '<'])
        && !s.ends_with(' ')
}

/// Append `line` to `out`, folding at [`FOLD_WIDTH`] columns with
/// single-space continuation lines.
fn push_folded(out: &mut String, line: &str) {
    let mut rest = line;
    let mut first = true;
    loop {
        // Continuation lines lose one column to the leading space.
        let limit = if first { FOLD_WIDTH } else { FOLD_WIDTH - 1 };
        if !first {
            out.push(' ');
        }
        if rest.len() <= limit {
            out.push_str(rest);
            out.push('\n');
            return;
        }
        let mut cut = limit;
        while !rest.is_char_boundary(cut) {
            cut -= 1;
        }
        out.push_str(&rest[..cut]);
        out.push('\n');
        rest = &rest[cut..];
        first = false;
    }
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding (hand-rolled; the build has no deps).
fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let n = (u32::from(chunk[0]) << 16)
            | (u32::from(*chunk.get(1).unwrap_or(&0)) << 8)
            | u32::from(*chunk.get(2).unwrap_or(&0));
        out.push(BASE64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(BASE64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            BASE64_ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            BASE64_ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Strict base64 decode: multiple-of-4 length, `=` padding only at the
/// very end.
fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    fn sextet(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("invalid base64 byte {:?}", c as char)),
        }
    }
    let b = s.as_bytes();
    if b.is_empty() {
        return Ok(Vec::new());
    }
    if !b.len().is_multiple_of(4) {
        return Err(format!("base64 length {} is not a multiple of 4", b.len()));
    }
    let chunks = b.len() / 4;
    let mut out = Vec::with_capacity(chunks * 3);
    for (i, chunk) in b.chunks(4).enumerate() {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && i != chunks - 1) {
            return Err("misplaced base64 padding".into());
        }
        if chunk[..4 - pad].contains(&b'=') {
            return Err("misplaced base64 padding".into());
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | sextet(c)?;
        }
        n <<= 6 * pad as u32;
        let bytes = [(n >> 16) as u8, (n >> 8) as u8, n as u8];
        out.extend_from_slice(&bytes[..3 - pad]);
    }
    Ok(out)
}

/// Render one `attr: value` (or `attr:: base64`) logical line for a
/// string value, folded into `out`.
fn push_str_line(out: &mut String, attr: &str, value: &str) {
    if is_safe_string(value) {
        push_folded(out, &format!("{attr}: {value}"));
    } else {
        push_folded(out, &format!("{attr}:: {}", base64_encode(value.as_bytes())));
    }
}

/// Serialize one entry in typed-LDIF form.
pub fn entry_to_ldif(entry: &Entry) -> String {
    let mut out = String::new();
    push_str_line(&mut out, "dn", &entry.dn().to_string());
    for (a, v) in entry.pairs() {
        match v {
            Value::Str(s) => push_str_line(&mut out, &a.to_string(), s),
            Value::Int(i) => push_folded(&mut out, &format!("{a}:i {i}")),
            Value::Dn(d) => push_folded(&mut out, &format!("{a}:dn {d}")),
        }
    }
    out
}

/// Serialize a whole directory (sorted order, blank-line separated).
pub fn directory_to_ldif(dir: &Directory) -> String {
    let mut out = String::new();
    for e in dir.iter_sorted() {
        out.push_str(&entry_to_ldif(e));
        out.push('\n');
    }
    out
}

/// Reassemble logical lines: a physical line starting with a single
/// space continues the previous logical line (RFC 2849 folding).
fn unfold(block: &str) -> Vec<String> {
    let mut logical: Vec<String> = Vec::new();
    for raw in block.lines() {
        match raw.strip_prefix(' ') {
            Some(cont) if !logical.is_empty() => {
                logical.last_mut().expect("non-empty").push_str(cont);
            }
            _ => logical.push(raw.to_string()),
        }
    }
    logical
}

/// Decode the base64 payload of an `attr:: value` line into a string.
fn decode_base64_value(line: &str, payload: &str) -> ModelResult<String> {
    let bytes = base64_decode(payload.trim()).map_err(|detail| ModelError::DnParse {
        input: line.to_string(),
        detail,
    })?;
    String::from_utf8(bytes).map_err(|_| ModelError::DnParse {
        input: line.to_string(),
        detail: "base64 value is not valid UTF-8".into(),
    })
}

/// Parse one typed-LDIF entry block (no blank lines inside).
pub fn entry_from_ldif(block: &str) -> ModelResult<Entry> {
    let mut dn: Option<Dn> = None;
    let mut builder: Option<crate::entry::EntryBuilder> = None;
    for line in unfold(block) {
        let line = line.as_str();
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(colon) = line.find(':') else {
            return Err(ModelError::DnParse {
                input: line.to_string(),
                detail: "LDIF line has no ':'".into(),
            });
        };
        let attr = line[..colon].trim();
        let rest = &line[colon + 1..];
        // `attr:: payload` marks a base64-encoded string value.
        let (base64, rest) = match rest.strip_prefix(':') {
            Some(payload) => (true, payload),
            None => (false, rest),
        };
        if dn.is_none() {
            if !attr.eq_ignore_ascii_case("dn") {
                return Err(ModelError::DnParse {
                    input: line.to_string(),
                    detail: "LDIF entry must start with a dn: line".into(),
                });
            }
            let text = if base64 {
                decode_base64_value(line, rest)?
            } else {
                rest.trim().to_string()
            };
            let parsed = Dn::parse(&text)?;
            builder = Some(Entry::builder(parsed.clone()));
            dn = Some(parsed);
            continue;
        }
        let b = builder.take().expect("builder exists after dn line");
        let value = if base64 {
            Value::Str(decode_base64_value(line, rest)?)
        } else {
            let (tag, value_s) = if let Some(v) = rest.strip_prefix("dn ") {
                ("dn", v)
            } else if let Some(v) = rest.strip_prefix("i ") {
                ("i", v)
            } else {
                ("", rest)
            };
            let value_s = value_s.trim();
            match tag {
                "i" => Value::Int(value_s.parse().map_err(|_| ModelError::DnParse {
                    input: line.to_string(),
                    detail: format!("{value_s:?} is not an integer"),
                })?),
                "dn" => Value::Dn(Dn::parse(value_s)?),
                _ => Value::Str(value_s.to_string()),
            }
        };
        builder = Some(b.attr(attr, value));
    }
    let Some(builder) = builder else {
        return Err(ModelError::EmptyDn);
    };
    builder.build()
}

/// Parse a whole typed-LDIF document into a directory.
pub fn directory_from_ldif(text: &str) -> ModelResult<Directory> {
    let mut dir = Directory::new();
    for block in text.split("\n\n") {
        let meaningful = block
            .lines()
            .any(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
        if !meaningful {
            continue;
        }
        dir.insert(entry_from_ldif(block)?)?;
    }
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Directory {
        let mut d = Directory::new();
        d.insert(
            Entry::builder(Dn::parse("dc=com").unwrap())
                .class("dcObject")
                .build()
                .unwrap(),
        )
        .unwrap();
        d.insert(
            Entry::builder(Dn::parse("SLAPolicyName=dso, dc=com").unwrap())
                .class("SLAPolicyRules")
                .attr("SLARulePriority", 2i64)
                .attr("SLATPRef", Dn::parse("TPName=x, dc=com").unwrap())
                .attr("SLAPolicyScope", "DataTraffic")
                .build()
                .unwrap(),
        )
        .unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = sample();
        let text = directory_to_ldif(&d);
        let back = directory_from_ldif(&text).unwrap();
        assert_eq!(back.len(), d.len());
        let a: Vec<&Entry> = d.iter_sorted().collect();
        let b: Vec<&Entry> = back.iter_sorted().collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dn(), y.dn());
            assert_eq!(x.pairs(), y.pairs(), "typed values must survive");
        }
    }

    #[test]
    fn typed_lines_render_distinctly() {
        let d = sample();
        let text = directory_to_ldif(&d);
        assert!(text.contains("SLARulePriority:i 2"));
        assert!(text.contains("SLATPRef:dn TPName=x, dc=com"));
        assert!(text.contains("SLAPolicyScope: DataTraffic"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ndn: dc=com\nobjectClass: dcObject\n\n# trailing\n";
        let d = directory_from_ldif(text).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(entry_from_ldif("objectClass: x\n").is_err()); // no dn first
        assert!(entry_from_ldif("dn: dc=com\nbad line\n").is_err()); // no colon
        assert!(entry_from_ldif("dn: dc=com\nx:i notanint\n").is_err());
        assert!(directory_from_ldif("dn: dc=com\noc: a\n\ndn: dc=com\noc: a\n").is_err());
        // duplicate dn
    }

    #[test]
    fn figure_style_output_parses_back() {
        // The Display form of an entry is close to LDIF; the ldif module
        // is its lossless sibling.
        let d = sample();
        for e in d.iter_sorted() {
            let block = entry_to_ldif(e);
            let back = entry_from_ldif(&block).unwrap();
            // Ids are store-assigned and deliberately absent from LDIF.
            assert_eq!(back.dn(), e.dn());
            assert_eq!(back.pairs(), e.pairs());
        }
    }

    #[test]
    fn base64_codec_roundtrips_and_rejects_junk() {
        for s in ["", "a", "ab", "abc", "abcd", "hello world\n", "é—ü"] {
            let enc = base64_encode(s.as_bytes());
            assert_eq!(base64_decode(&enc).unwrap(), s.as_bytes(), "input {s:?}");
        }
        assert_eq!(base64_encode(b"any carnal pleasure"), "YW55IGNhcm5hbCBwbGVhc3VyZQ==");
        assert!(base64_decode("abc").is_err()); // not a multiple of 4
        assert!(base64_decode("ab=c").is_err()); // padding mid-chunk
        assert!(base64_decode("====").is_err()); // too much padding
        assert!(base64_decode("QUJD!").is_err()); // bad byte (and bad length)
        assert!(base64_decode("QU=Q").is_err()); // padding not at end
    }

    #[test]
    fn unsafe_values_are_base64_encoded_and_recovered() {
        let tricky = [
            " leading space",
            "trailing space ",
            ": starts with colon",
            "< starts with less-than",
            "embedded\nnewline",
            "ünïcödé",
            "",
        ];
        let mut b = Entry::builder(Dn::parse("cn=t, dc=com").unwrap()).class("thing");
        for (i, v) in tricky.iter().enumerate() {
            b = b.attr(format!("v{i}"), *v);
        }
        let e = b.build().unwrap();
        let text = entry_to_ldif(&e);
        // Every tricky value travels as base64, never raw.
        assert!(!text.contains("leading space"));
        assert!(!text.contains("ünïcödé"));
        assert!(text.contains("v0:: "));
        let back = entry_from_ldif(&text).unwrap();
        assert_eq!(back.pairs(), e.pairs());
    }

    #[test]
    fn long_lines_are_folded_and_unfolded() {
        let long = "x".repeat(300);
        let e = Entry::builder(Dn::parse("cn=t, dc=com").unwrap())
            .class("thing")
            .attr("blob", long.as_str())
            .build()
            .unwrap();
        let text = entry_to_ldif(&e);
        for line in text.lines() {
            assert!(line.len() <= FOLD_WIDTH, "unfolded line: {line:?}");
        }
        assert!(text.lines().any(|l| l.starts_with(' ')), "nothing folded");
        let back = entry_from_ldif(&text).unwrap();
        assert_eq!(back.pairs(), e.pairs());
    }

    #[test]
    fn foreign_folded_and_base64_ldif_parses() {
        // Folding mid-value (the continuation space is transport, not
        // payload) and a base64 dn, as another RFC 2849 producer might
        // emit them.
        let text = "dn:: Y249dCwgZGM9Y29t\nobjectClass: thing\ndescription: folded \n across two lines\n";
        let e = entry_from_ldif(text).unwrap();
        assert_eq!(e.dn().to_string(), "cn=t, dc=com");
        assert_eq!(
            e.first_str(&crate::attr::AttrName::new("description")),
            Some("folded across two lines")
        );
    }
}
