//! LDIF-style import/export.
//!
//! The figures render entries as a DN plus `attr: value` lines — the LDIF
//! interchange format every directory server of the paper's era spoke.
//! This module reads and writes that format, typed:
//!
//! ```text
//! dn: SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, dc=com
//! objectClass: SLAPolicyRules
//! SLARulePriority:i 2
//! SLATPRef:dn TPName=lsplitOff, ou=trafficProfile, ou=networkPolicies, dc=com
//!
//! dn: …next entry…
//! ```
//!
//! Plain `attr: value` lines are strings; `attr:i value` parses an
//! integer; `attr:dn value` parses a DN reference. (Standard LDIF carries
//! types in the schema instead; the suffix keeps round-trips lossless
//! without one.) Blank lines separate entries; `#` starts a comment.

use crate::directory::Directory;
use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{ModelError, ModelResult};
use crate::value::Value;
use std::fmt::Write as _;

/// Serialize one entry in typed-LDIF form.
pub fn entry_to_ldif(entry: &Entry) -> String {
    let mut out = String::new();
    writeln!(out, "dn: {}", entry.dn()).expect("string write");
    for (a, v) in entry.pairs() {
        match v {
            Value::Str(s) => writeln!(out, "{a}: {s}"),
            Value::Int(i) => writeln!(out, "{a}:i {i}"),
            Value::Dn(d) => writeln!(out, "{a}:dn {d}"),
        }
        .expect("string write");
    }
    out
}

/// Serialize a whole directory (sorted order, blank-line separated).
pub fn directory_to_ldif(dir: &Directory) -> String {
    let mut out = String::new();
    for e in dir.iter_sorted() {
        out.push_str(&entry_to_ldif(e));
        out.push('\n');
    }
    out
}

/// Parse one typed-LDIF entry block (no blank lines inside).
pub fn entry_from_ldif(block: &str) -> ModelResult<Entry> {
    let mut dn: Option<Dn> = None;
    let mut builder: Option<crate::entry::EntryBuilder> = None;
    for line in block.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(colon) = line.find(':') else {
            return Err(ModelError::DnParse {
                input: line.to_string(),
                detail: "LDIF line has no ':'".into(),
            });
        };
        let attr = line[..colon].trim();
        let rest = &line[colon + 1..];
        if dn.is_none() {
            if !attr.eq_ignore_ascii_case("dn") {
                return Err(ModelError::DnParse {
                    input: line.to_string(),
                    detail: "LDIF entry must start with a dn: line".into(),
                });
            }
            let parsed = Dn::parse(rest.trim())?;
            builder = Some(Entry::builder(parsed.clone()));
            dn = Some(parsed);
            continue;
        }
        let b = builder.take().expect("builder exists after dn line");
        let (tag, value_s) = if let Some(v) = rest.strip_prefix("dn ") {
            ("dn", v)
        } else if let Some(v) = rest.strip_prefix("i ") {
            ("i", v)
        } else {
            ("", rest)
        };
        let value_s = value_s.trim();
        let value = match tag {
            "i" => Value::Int(value_s.parse().map_err(|_| ModelError::DnParse {
                input: line.to_string(),
                detail: format!("{value_s:?} is not an integer"),
            })?),
            "dn" => Value::Dn(Dn::parse(value_s)?),
            _ => Value::Str(value_s.to_string()),
        };
        builder = Some(b.attr(attr, value));
    }
    let Some(builder) = builder else {
        return Err(ModelError::EmptyDn);
    };
    builder.build()
}

/// Parse a whole typed-LDIF document into a directory.
pub fn directory_from_ldif(text: &str) -> ModelResult<Directory> {
    let mut dir = Directory::new();
    for block in text.split("\n\n") {
        let meaningful = block
            .lines()
            .any(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
        if !meaningful {
            continue;
        }
        dir.insert(entry_from_ldif(block)?)?;
    }
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Directory {
        let mut d = Directory::new();
        d.insert(
            Entry::builder(Dn::parse("dc=com").unwrap())
                .class("dcObject")
                .build()
                .unwrap(),
        )
        .unwrap();
        d.insert(
            Entry::builder(Dn::parse("SLAPolicyName=dso, dc=com").unwrap())
                .class("SLAPolicyRules")
                .attr("SLARulePriority", 2i64)
                .attr("SLATPRef", Dn::parse("TPName=x, dc=com").unwrap())
                .attr("SLAPolicyScope", "DataTraffic")
                .build()
                .unwrap(),
        )
        .unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = sample();
        let text = directory_to_ldif(&d);
        let back = directory_from_ldif(&text).unwrap();
        assert_eq!(back.len(), d.len());
        let a: Vec<&Entry> = d.iter_sorted().collect();
        let b: Vec<&Entry> = back.iter_sorted().collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dn(), y.dn());
            assert_eq!(x.pairs(), y.pairs(), "typed values must survive");
        }
    }

    #[test]
    fn typed_lines_render_distinctly() {
        let d = sample();
        let text = directory_to_ldif(&d);
        assert!(text.contains("SLARulePriority:i 2"));
        assert!(text.contains("SLATPRef:dn TPName=x, dc=com"));
        assert!(text.contains("SLAPolicyScope: DataTraffic"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ndn: dc=com\nobjectClass: dcObject\n\n# trailing\n";
        let d = directory_from_ldif(text).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(entry_from_ldif("objectClass: x\n").is_err()); // no dn first
        assert!(entry_from_ldif("dn: dc=com\nbad line\n").is_err()); // no colon
        assert!(entry_from_ldif("dn: dc=com\nx:i notanint\n").is_err());
        assert!(directory_from_ldif("dn: dc=com\noc: a\n\ndn: dc=com\noc: a\n").is_err());
        // duplicate dn
    }

    #[test]
    fn figure_style_output_parses_back() {
        // The Display form of an entry is close to LDIF; the ldif module
        // is its lossless sibling.
        let d = sample();
        for e in d.iter_sorted() {
            let block = entry_to_ldif(e);
            let back = entry_from_ldif(&block).unwrap();
            // Ids are store-assigned and deliberately absent from LDIF.
            assert_eq!(back.dn(), e.dn());
            assert_eq!(back.pairs(), e.pairs());
        }
    }
}
