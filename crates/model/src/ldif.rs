//! LDIF-style import/export.
//!
//! The figures render entries as a DN plus `attr: value` lines — the LDIF
//! interchange format every directory server of the paper's era spoke.
//! This module reads and writes that format, typed:
//!
//! ```text
//! dn: SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, dc=com
//! objectClass: SLAPolicyRules
//! SLARulePriority:i 2
//! SLATPRef:dn TPName=lsplitOff, ou=trafficProfile, ou=networkPolicies, dc=com
//!
//! dn: …next entry…
//! ```
//!
//! Plain `attr: value` lines are strings; `attr:i value` parses an
//! integer; `attr:dn value` parses a DN reference. (Standard LDIF carries
//! types in the schema instead; the suffix keeps round-trips lossless
//! without one.) Blank lines separate entries; `#` starts a comment.
//!
//! The RFC 2849 transport conventions are honored in both directions:
//!
//! * **Folding** — logical lines longer than 76 characters are folded;
//!   a physical line starting with a single space continues the
//!   previous logical line (the space is removed on read).
//! * **Base64** — `attr:: <base64>` carries a value that is not a
//!   SAFE-STRING (leading space/`:`/`<`, trailing space, or any byte
//!   outside printable ASCII — newlines, control characters, UTF-8).
//!   The writer encodes such values automatically, so *every* string
//!   value round-trips through export→import unchanged.

use crate::attr::AttrName;
use crate::directory::Directory;
use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{ModelError, ModelResult};
use crate::value::Value;

/// Maximum physical line width before folding (RFC 2849 suggests 76).
const FOLD_WIDTH: usize = 76;

/// Can `s` travel as a plain `attr: value` line and come back intact?
///
/// Mirrors RFC 2849's SAFE-STRING, tightened to printable ASCII: no
/// leading space/colon/less-than, no trailing space, every byte in
/// `0x20..=0x7e`. Anything else goes base64.
fn is_safe_string(s: &str) -> bool {
    s.bytes().all(|b| (0x20..=0x7e).contains(&b))
        && !s.starts_with([' ', ':', '<'])
        && !s.ends_with(' ')
}

/// Append `line` to `out`, folding at [`FOLD_WIDTH`] columns with
/// single-space continuation lines.
fn push_folded(out: &mut String, line: &str) {
    let mut rest = line;
    let mut first = true;
    loop {
        // Continuation lines lose one column to the leading space.
        let limit = if first { FOLD_WIDTH } else { FOLD_WIDTH - 1 };
        if !first {
            out.push(' ');
        }
        if rest.len() <= limit {
            out.push_str(rest);
            out.push('\n');
            return;
        }
        let mut cut = limit;
        while !rest.is_char_boundary(cut) {
            cut -= 1;
        }
        out.push_str(&rest[..cut]);
        out.push('\n');
        rest = &rest[cut..];
        first = false;
    }
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding (hand-rolled; the build has no deps).
fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let n = (u32::from(chunk[0]) << 16)
            | (u32::from(*chunk.get(1).unwrap_or(&0)) << 8)
            | u32::from(*chunk.get(2).unwrap_or(&0));
        out.push(BASE64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(BASE64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            BASE64_ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            BASE64_ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Strict base64 decode: multiple-of-4 length, `=` padding only at the
/// very end.
fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    fn sextet(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("invalid base64 byte {:?}", c as char)),
        }
    }
    let b = s.as_bytes();
    if b.is_empty() {
        return Ok(Vec::new());
    }
    if !b.len().is_multiple_of(4) {
        return Err(format!("base64 length {} is not a multiple of 4", b.len()));
    }
    let chunks = b.len() / 4;
    let mut out = Vec::with_capacity(chunks * 3);
    for (i, chunk) in b.chunks(4).enumerate() {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && i != chunks - 1) {
            return Err("misplaced base64 padding".into());
        }
        if chunk[..4 - pad].contains(&b'=') {
            return Err("misplaced base64 padding".into());
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | sextet(c)?;
        }
        n <<= 6 * pad as u32;
        let bytes = [(n >> 16) as u8, (n >> 8) as u8, n as u8];
        out.extend_from_slice(&bytes[..3 - pad]);
    }
    Ok(out)
}

/// Render one `attr: value` (or `attr:: base64`) logical line for a
/// string value, folded into `out`.
fn push_str_line(out: &mut String, attr: &str, value: &str) {
    if is_safe_string(value) {
        push_folded(out, &format!("{attr}: {value}"));
    } else {
        push_folded(out, &format!("{attr}:: {}", base64_encode(value.as_bytes())));
    }
}

/// Serialize one entry in typed-LDIF form.
pub fn entry_to_ldif(entry: &Entry) -> String {
    let mut out = String::new();
    push_str_line(&mut out, "dn", &entry.dn().to_string());
    for (a, v) in entry.pairs() {
        match v {
            Value::Str(s) => push_str_line(&mut out, &a.to_string(), s),
            Value::Int(i) => push_folded(&mut out, &format!("{a}:i {i}")),
            Value::Dn(d) => push_folded(&mut out, &format!("{a}:dn {d}")),
        }
    }
    out
}

/// Serialize a whole directory (sorted order, blank-line separated).
pub fn directory_to_ldif(dir: &Directory) -> String {
    let mut out = String::new();
    for e in dir.iter_sorted() {
        out.push_str(&entry_to_ldif(e));
        out.push('\n');
    }
    out
}

/// Reassemble logical lines: a physical line starting with a single
/// space continues the previous logical line (RFC 2849 folding).
fn unfold(block: &str) -> Vec<String> {
    let mut logical: Vec<String> = Vec::new();
    for raw in block.lines() {
        match raw.strip_prefix(' ') {
            Some(cont) if !logical.is_empty() => {
                logical.last_mut().expect("non-empty").push_str(cont);
            }
            _ => logical.push(raw.to_string()),
        }
    }
    logical
}

/// Decode the base64 payload of an `attr:: value` line into a string.
fn decode_base64_value(line: &str, payload: &str) -> ModelResult<String> {
    let bytes = base64_decode(payload.trim()).map_err(|detail| ModelError::DnParse {
        input: line.to_string(),
        detail,
    })?;
    String::from_utf8(bytes).map_err(|_| ModelError::DnParse {
        input: line.to_string(),
        detail: "base64 value is not valid UTF-8".into(),
    })
}

/// One parsed LDIF logical line: `attr: value`, `attr:: base64`,
/// `attr:i int`, or `attr:dn dn`.
struct AttrLine<'a> {
    attr: &'a str,
    /// Whether the value travelled base64-encoded.
    base64: bool,
    /// Everything after the (first) colon, base64 marker stripped.
    rest: &'a str,
}

/// Split one logical line at its first colon.
fn split_attr_line(line: &str) -> ModelResult<AttrLine<'_>> {
    let Some(colon) = line.find(':') else {
        return Err(ModelError::DnParse {
            input: line.to_string(),
            detail: "LDIF line has no ':'".into(),
        });
    };
    let attr = line[..colon].trim();
    let rest = &line[colon + 1..];
    let (base64, rest) = match rest.strip_prefix(':') {
        Some(payload) => (true, payload),
        None => (false, rest),
    };
    Ok(AttrLine { attr, base64, rest })
}

/// Decode the value half of a split line into a typed [`Value`].
fn parse_value(line: &str, split: &AttrLine) -> ModelResult<Value> {
    if split.base64 {
        return Ok(Value::Str(decode_base64_value(line, split.rest)?));
    }
    let (tag, value_s) = if let Some(v) = split.rest.strip_prefix("dn ") {
        ("dn", v)
    } else if let Some(v) = split.rest.strip_prefix("i ") {
        ("i", v)
    } else {
        ("", split.rest)
    };
    let value_s = value_s.trim();
    match tag {
        "i" => Ok(Value::Int(value_s.parse().map_err(|_| ModelError::DnParse {
            input: line.to_string(),
            detail: format!("{value_s:?} is not an integer"),
        })?)),
        "dn" => Ok(Value::Dn(Dn::parse(value_s)?)),
        _ => Ok(Value::Str(value_s.to_string())),
    }
}

/// Parse a `dn:`/`dn::` line's value.
fn parse_dn_line(line: &str, split: &AttrLine) -> ModelResult<Dn> {
    let text = if split.base64 {
        decode_base64_value(line, split.rest)?
    } else {
        split.rest.trim().to_string()
    };
    Dn::parse(&text)
}

/// Parse one typed-LDIF entry block (no blank lines inside).
pub fn entry_from_ldif(block: &str) -> ModelResult<Entry> {
    let mut builder: Option<crate::entry::EntryBuilder> = None;
    for line in unfold(block) {
        let line = line.as_str();
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let split = split_attr_line(line)?;
        let Some(b) = builder.take() else {
            if !split.attr.eq_ignore_ascii_case("dn") {
                return Err(ModelError::DnParse {
                    input: line.to_string(),
                    detail: "LDIF entry must start with a dn: line".into(),
                });
            }
            builder = Some(Entry::builder(parse_dn_line(line, &split)?));
            continue;
        };
        let value = parse_value(line, &split)?;
        builder = Some(b.attr(split.attr, value));
    }
    let Some(builder) = builder else {
        return Err(ModelError::EmptyDn);
    };
    builder.build()
}

/// Parse a whole typed-LDIF document into a directory.
pub fn directory_from_ldif(text: &str) -> ModelResult<Directory> {
    let mut dir = Directory::new();
    for block in text.split("\n\n") {
        let meaningful = block
            .lines()
            .any(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
        if !meaningful {
            continue;
        }
        dir.insert(entry_from_ldif(block)?)?;
    }
    Ok(dir)
}

/// The operation of one RFC 2849 *change record*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Change {
    /// `changetype: add` — insert the entry.
    Add(Entry),
    /// `changetype: modify` — add/remove values on an existing entry.
    Modify {
        /// Pairs to add (`add: attr` sub-operations, and the value half
        /// of `replace:`).
        add: Vec<(AttrName, Value)>,
        /// Specific pairs to remove (`delete: attr` with values).
        remove: Vec<(AttrName, Value)>,
        /// Attributes to strip entirely (`delete: attr` without values,
        /// and the clearing half of `replace:`).
        remove_attrs: Vec<AttrName>,
    },
    /// `changetype: delete` — remove the entry (descendants stay; the
    /// model is a forest).
    Delete,
}

/// One change record: a target DN plus the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeRecord {
    /// The entry the change applies to.
    pub dn: Dn,
    /// What to do to it.
    pub change: Change,
}

fn bad_line(line: &str, detail: impl Into<String>) -> ModelError {
    ModelError::DnParse {
        input: line.to_string(),
        detail: detail.into(),
    }
}

/// Parse one change-record block: a `dn:` line, a `changetype:` line,
/// then the operation body. A block *without* a `changetype:` line is an
/// RFC 2849 content record and parses as an implicit `add` — so a plain
/// directory LDIF feeds a mutation batch directly.
pub fn change_from_ldif(block: &str) -> ModelResult<ChangeRecord> {
    let lines: Vec<String> = unfold(block)
        .into_iter()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .collect();
    let Some(dn_line) = lines.first() else {
        return Err(ModelError::EmptyDn);
    };
    let dn_split = split_attr_line(dn_line)?;
    if !dn_split.attr.eq_ignore_ascii_case("dn") {
        return Err(bad_line(dn_line, "change record must start with a dn: line"));
    }
    let dn = parse_dn_line(dn_line, &dn_split)?;

    let changetype = lines.get(1).and_then(|l| {
        let s = split_attr_line(l).ok()?;
        s.attr
            .eq_ignore_ascii_case("changetype")
            .then(|| (s.rest.trim().to_ascii_lowercase(), 2usize))
    });
    let (kind, body_start) = match changetype {
        Some((kind, start)) => (kind, start),
        // Content record: every line after the dn is an attribute.
        None => ("add".to_string(), 1),
    };

    let change = match kind.as_str() {
        "add" => {
            let mut builder = Entry::builder(dn.clone());
            for line in &lines[body_start..] {
                let split = split_attr_line(line)?;
                let value = parse_value(line, &split)?;
                builder = builder.attr(split.attr, value);
            }
            Change::Add(builder.build()?)
        }
        "delete" => {
            if lines.len() > body_start {
                return Err(bad_line(
                    &lines[body_start],
                    "changetype: delete takes no body",
                ));
            }
            Change::Delete
        }
        "modify" => {
            let mut add = Vec::new();
            let mut remove = Vec::new();
            let mut remove_attrs = Vec::new();
            let mut i = body_start;
            while i < lines.len() {
                let op_line = &lines[i];
                let op = split_attr_line(op_line)?;
                let target = AttrName::new(op.rest.trim());
                // Collect this sub-operation's value lines up to the
                // next `-` separator.
                let mut values = Vec::new();
                i += 1;
                while i < lines.len() && lines[i].trim() != "-" {
                    let line = &lines[i];
                    let split = split_attr_line(line)?;
                    if !AttrName::new(split.attr).eq(&target) {
                        return Err(bad_line(
                            line,
                            format!("value line for {:?} inside a {} of {:?}",
                                split.attr, op.attr, target.as_str()),
                        ));
                    }
                    values.push(parse_value(line, &split)?);
                    i += 1;
                }
                i += 1; // skip the `-`
                match op.attr.to_ascii_lowercase().as_str() {
                    "add" => {
                        if values.is_empty() {
                            return Err(bad_line(op_line, "add: wants at least one value"));
                        }
                        add.extend(values.into_iter().map(|v| (target.clone(), v)));
                    }
                    "delete" => {
                        if values.is_empty() {
                            remove_attrs.push(target);
                        } else {
                            remove.extend(values.into_iter().map(|v| (target.clone(), v)));
                        }
                    }
                    "replace" => {
                        remove_attrs.push(target.clone());
                        add.extend(values.into_iter().map(|v| (target.clone(), v)));
                    }
                    other => {
                        return Err(bad_line(
                            op_line,
                            format!("unknown modify sub-operation {other:?}"),
                        ));
                    }
                }
            }
            Change::Modify { add, remove, remove_attrs }
        }
        other => {
            return Err(bad_line(
                &lines[1],
                format!("unknown changetype {other:?}"),
            ));
        }
    };
    Ok(ChangeRecord { dn, change })
}

/// Parse a whole change-record document (blank-line-separated blocks).
pub fn changes_from_ldif(text: &str) -> ModelResult<Vec<ChangeRecord>> {
    let mut out = Vec::new();
    for block in text.split("\n\n") {
        let meaningful = block
            .lines()
            .any(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
        if !meaningful {
            continue;
        }
        out.push(change_from_ldif(block)?);
    }
    Ok(out)
}

/// Render one typed value line (`attr: v`, `attr:i v`, `attr:dn v`, or
/// base64) into `out`.
fn push_value_line(out: &mut String, attr: &str, v: &Value) {
    match v {
        Value::Str(s) => push_str_line(out, attr, s),
        Value::Int(i) => push_folded(out, &format!("{attr}:i {i}")),
        Value::Dn(d) => push_folded(out, &format!("{attr}:dn {d}")),
    }
}

/// Serialize one change record.
pub fn change_to_ldif(rec: &ChangeRecord) -> String {
    let mut out = String::new();
    push_str_line(&mut out, "dn", &rec.dn.to_string());
    match &rec.change {
        Change::Add(entry) => {
            push_folded(&mut out, "changetype: add");
            for (a, v) in entry.pairs() {
                push_value_line(&mut out, &a.to_string(), v);
            }
        }
        Change::Delete => push_folded(&mut out, "changetype: delete"),
        Change::Modify { add, remove, remove_attrs } => {
            push_folded(&mut out, "changetype: modify");
            for a in remove_attrs {
                push_folded(&mut out, &format!("delete: {a}"));
                push_folded(&mut out, "-");
            }
            for (a, v) in remove {
                push_folded(&mut out, &format!("delete: {a}"));
                push_value_line(&mut out, &a.to_string(), v);
                push_folded(&mut out, "-");
            }
            for (a, v) in add {
                push_folded(&mut out, &format!("add: {a}"));
                push_value_line(&mut out, &a.to_string(), v);
                push_folded(&mut out, "-");
            }
        }
    }
    out
}

/// Serialize a change-record document.
pub fn changes_to_ldif(recs: &[ChangeRecord]) -> String {
    let mut out = String::new();
    for r in recs {
        out.push_str(&change_to_ldif(r));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Directory {
        let mut d = Directory::new();
        d.insert(
            Entry::builder(Dn::parse("dc=com").unwrap())
                .class("dcObject")
                .build()
                .unwrap(),
        )
        .unwrap();
        d.insert(
            Entry::builder(Dn::parse("SLAPolicyName=dso, dc=com").unwrap())
                .class("SLAPolicyRules")
                .attr("SLARulePriority", 2i64)
                .attr("SLATPRef", Dn::parse("TPName=x, dc=com").unwrap())
                .attr("SLAPolicyScope", "DataTraffic")
                .build()
                .unwrap(),
        )
        .unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = sample();
        let text = directory_to_ldif(&d);
        let back = directory_from_ldif(&text).unwrap();
        assert_eq!(back.len(), d.len());
        let a: Vec<&Entry> = d.iter_sorted().collect();
        let b: Vec<&Entry> = back.iter_sorted().collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dn(), y.dn());
            assert_eq!(x.pairs(), y.pairs(), "typed values must survive");
        }
    }

    #[test]
    fn typed_lines_render_distinctly() {
        let d = sample();
        let text = directory_to_ldif(&d);
        assert!(text.contains("SLARulePriority:i 2"));
        assert!(text.contains("SLATPRef:dn TPName=x, dc=com"));
        assert!(text.contains("SLAPolicyScope: DataTraffic"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ndn: dc=com\nobjectClass: dcObject\n\n# trailing\n";
        let d = directory_from_ldif(text).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(entry_from_ldif("objectClass: x\n").is_err()); // no dn first
        assert!(entry_from_ldif("dn: dc=com\nbad line\n").is_err()); // no colon
        assert!(entry_from_ldif("dn: dc=com\nx:i notanint\n").is_err());
        assert!(directory_from_ldif("dn: dc=com\noc: a\n\ndn: dc=com\noc: a\n").is_err());
        // duplicate dn
    }

    #[test]
    fn figure_style_output_parses_back() {
        // The Display form of an entry is close to LDIF; the ldif module
        // is its lossless sibling.
        let d = sample();
        for e in d.iter_sorted() {
            let block = entry_to_ldif(e);
            let back = entry_from_ldif(&block).unwrap();
            // Ids are store-assigned and deliberately absent from LDIF.
            assert_eq!(back.dn(), e.dn());
            assert_eq!(back.pairs(), e.pairs());
        }
    }

    #[test]
    fn base64_codec_roundtrips_and_rejects_junk() {
        for s in ["", "a", "ab", "abc", "abcd", "hello world\n", "é—ü"] {
            let enc = base64_encode(s.as_bytes());
            assert_eq!(base64_decode(&enc).unwrap(), s.as_bytes(), "input {s:?}");
        }
        assert_eq!(base64_encode(b"any carnal pleasure"), "YW55IGNhcm5hbCBwbGVhc3VyZQ==");
        assert!(base64_decode("abc").is_err()); // not a multiple of 4
        assert!(base64_decode("ab=c").is_err()); // padding mid-chunk
        assert!(base64_decode("====").is_err()); // too much padding
        assert!(base64_decode("QUJD!").is_err()); // bad byte (and bad length)
        assert!(base64_decode("QU=Q").is_err()); // padding not at end
    }

    #[test]
    fn unsafe_values_are_base64_encoded_and_recovered() {
        let tricky = [
            " leading space",
            "trailing space ",
            ": starts with colon",
            "< starts with less-than",
            "embedded\nnewline",
            "ünïcödé",
            "",
        ];
        let mut b = Entry::builder(Dn::parse("cn=t, dc=com").unwrap()).class("thing");
        for (i, v) in tricky.iter().enumerate() {
            b = b.attr(format!("v{i}"), *v);
        }
        let e = b.build().unwrap();
        let text = entry_to_ldif(&e);
        // Every tricky value travels as base64, never raw.
        assert!(!text.contains("leading space"));
        assert!(!text.contains("ünïcödé"));
        assert!(text.contains("v0:: "));
        let back = entry_from_ldif(&text).unwrap();
        assert_eq!(back.pairs(), e.pairs());
    }

    #[test]
    fn long_lines_are_folded_and_unfolded() {
        let long = "x".repeat(300);
        let e = Entry::builder(Dn::parse("cn=t, dc=com").unwrap())
            .class("thing")
            .attr("blob", long.as_str())
            .build()
            .unwrap();
        let text = entry_to_ldif(&e);
        for line in text.lines() {
            assert!(line.len() <= FOLD_WIDTH, "unfolded line: {line:?}");
        }
        assert!(text.lines().any(|l| l.starts_with(' ')), "nothing folded");
        let back = entry_from_ldif(&text).unwrap();
        assert_eq!(back.pairs(), e.pairs());
    }

    #[test]
    fn change_records_parse() {
        let text = "\
dn: uid=new, dc=com
changetype: add
objectClass: person
priority:i 3

dn: uid=old, dc=com
changetype: delete

dn: uid=mod, dc=com
changetype: modify
add: description
description: fresh
-
delete: description
description: stale
-
delete: obsolete
-
replace: priority
priority:i 9
-
";
        let changes = changes_from_ldif(text).unwrap();
        assert_eq!(changes.len(), 3);
        let Change::Add(e) = &changes[0].change else {
            panic!("expected add")
        };
        assert_eq!(e.first_int(&"priority".into()), Some(3));
        assert_eq!(changes[1].change, Change::Delete);
        assert_eq!(changes[1].dn.to_string(), "uid=old, dc=com");
        let Change::Modify { add, remove, remove_attrs } = &changes[2].change else {
            panic!("expected modify")
        };
        assert_eq!(add.len(), 2, "add: plus replace's value half");
        assert_eq!(remove, &[("description".into(), Value::str("stale"))]);
        assert_eq!(remove_attrs.len(), 2, "valueless delete plus replace");
    }

    #[test]
    fn content_records_are_implicit_adds() {
        let text = "dn: dc=com\nobjectClass: dcObject\n";
        let changes = changes_from_ldif(text).unwrap();
        assert_eq!(changes.len(), 1);
        assert!(matches!(changes[0].change, Change::Add(_)));
    }

    #[test]
    fn change_records_roundtrip() {
        let recs = vec![
            ChangeRecord {
                dn: Dn::parse("uid=a, dc=com").unwrap(),
                change: Change::Add(
                    Entry::builder(Dn::parse("uid=a, dc=com").unwrap())
                        .class("person")
                        .attr("priority", 7i64)
                        .attr("ref", Dn::parse("dc=com").unwrap())
                        .build()
                        .unwrap(),
                ),
            },
            ChangeRecord {
                dn: Dn::parse("uid=b, dc=com").unwrap(),
                change: Change::Modify {
                    add: vec![("cn".into(), Value::str("x y"))],
                    remove: vec![("cn".into(), Value::str(" tricky "))],
                    remove_attrs: vec!["stale".into()],
                },
            },
            ChangeRecord {
                dn: Dn::parse("uid=c, dc=com").unwrap(),
                change: Change::Delete,
            },
        ];
        let text = changes_to_ldif(&recs);
        let back = changes_from_ldif(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn malformed_change_records_are_rejected() {
        // Unknown changetype.
        assert!(changes_from_ldif("dn: dc=com\nchangetype: rename\n").is_err());
        // Body after a delete.
        assert!(changes_from_ldif("dn: dc=com\nchangetype: delete\nx: y\n").is_err());
        // Modify value line for the wrong attribute.
        assert!(changes_from_ldif(
            "dn: dc=com\nchangetype: modify\nadd: cn\nsn: nope\n-\n"
        )
        .is_err());
        // add: with no values.
        assert!(changes_from_ldif(
            "dn: dc=com\nchangetype: modify\nadd: cn\n-\n"
        )
        .is_err());
        // Unknown sub-operation.
        assert!(changes_from_ldif(
            "dn: dc=com\nchangetype: modify\nincrement: cn\ncn: v\n-\n"
        )
        .is_err());
    }

    #[test]
    fn foreign_folded_and_base64_ldif_parses() {
        // Folding mid-value (the continuation space is transport, not
        // payload) and a base64 dn, as another RFC 2849 producer might
        // emit them.
        let text = "dn:: Y249dCwgZGM9Y29t\nobjectClass: thing\ndescription: folded \n across two lines\n";
        let e = entry_from_ldif(text).unwrap();
        assert_eq!(e.dn().to_string(), "cn=t, dc=com");
        assert_eq!(
            e.first_str(&crate::attr::AttrName::new("description")),
            Some("folded across two lines")
        );
    }
}
