//! Error type for the data model.

use std::fmt;

/// Result alias for model operations.
pub type ModelResult<T> = Result<T, ModelError>;

/// Violations of the model's definitions (3.1 and 3.2) and parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A DN string failed to parse.
    DnParse { input: String, detail: String },
    /// An RDN contained a NUL byte (reserved as the sort-key separator).
    NulInRdn { rdn: String },
    /// An RDN was empty (RDNs are non-empty sets of pairs).
    EmptyRdn,
    /// A DN had no RDNs.
    EmptyDn,
    /// Attribute not declared in the schema.
    UnknownAttribute { attr: String },
    /// Class not declared in the schema.
    UnknownClass { class: String },
    /// Value's type does not match σ(attribute) (Def 3.2, condition 1).
    TypeMismatch {
        attr: String,
        expected: String,
        got: String,
    },
    /// Attribute not allowed by any of the entry's classes
    /// (Def 3.2, condition 1).
    AttributeNotAllowed { attr: String, classes: Vec<String> },
    /// objectClass values and the class set disagree (Def 3.2, condition 2).
    ClassValueMismatch { detail: String },
    /// The entry's class set is empty (Def 3.2(b)).
    NoClasses,
    /// rdn(r) ⊄ val(r) (Def 3.2(d)(ii)).
    RdnNotInValues { pair: String },
    /// Two entries share a DN (Def 3.2(d)(i): dn is a key).
    DuplicateDn { dn: String },
    /// Operation referenced a DN not present in the directory.
    NoSuchEntry { dn: String },
    /// Schema construction problem (e.g. objectClass typed non-string).
    BadSchema { detail: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DnParse { input, detail } => {
                write!(f, "cannot parse DN {input:?}: {detail}")
            }
            ModelError::NulInRdn { rdn } => {
                write!(f, "RDN {rdn:?} contains a NUL byte (reserved separator)")
            }
            ModelError::EmptyRdn => write!(f, "empty RDN"),
            ModelError::EmptyDn => write!(f, "empty DN"),
            ModelError::UnknownAttribute { attr } => {
                write!(f, "attribute {attr:?} not in schema")
            }
            ModelError::UnknownClass { class } => write!(f, "class {class:?} not in schema"),
            ModelError::TypeMismatch {
                attr,
                expected,
                got,
            } => write!(
                f,
                "attribute {attr:?} has type {expected}, got a {got} value"
            ),
            ModelError::AttributeNotAllowed { attr, classes } => write!(
                f,
                "attribute {attr:?} not allowed by any of the classes {classes:?}"
            ),
            ModelError::ClassValueMismatch { detail } => {
                write!(f, "objectClass values disagree with class set: {detail}")
            }
            ModelError::NoClasses => write!(f, "entry must belong to at least one class"),
            ModelError::RdnNotInValues { pair } => {
                write!(f, "rdn pair {pair} missing from entry values (rdn ⊆ val)")
            }
            ModelError::DuplicateDn { dn } => write!(f, "duplicate DN {dn}"),
            ModelError::NoSuchEntry { dn } => write!(f, "no entry with DN {dn}"),
            ModelError::BadSchema { detail } => write!(f, "bad schema: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offender() {
        let e = ModelError::UnknownAttribute {
            attr: "frobnicate".into(),
        };
        assert!(e.to_string().contains("frobnicate"));
        let e = ModelError::TypeMismatch {
            attr: "priority".into(),
            expected: "int".into(),
            got: "string".into(),
        };
        let s = e.to_string();
        assert!(s.contains("priority") && s.contains("int") && s.contains("string"));
    }
}
