//! Directory schemas (Definition 3.1).
//!
//! A schema `S = (C, A, σ, ψ)` declares class names, attribute names, the
//! typing function σ : A → T, and the allowed-attribute map ψ : C → 2^A.
//! The decoupling of attribute typing from classes is the model's key
//! departure from relational/OO schemas: an attribute's type is the same in
//! every class that allows it.

use crate::attr::{AttrName, ClassName};
use crate::error::{ModelError, ModelResult};
use crate::value::TypeName;
use crate::OBJECT_CLASS;
use std::collections::{BTreeMap, BTreeSet};

/// An immutable directory schema. Build with [`SchemaBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: BTreeMap<AttrName, TypeName>,
    classes: BTreeMap<ClassName, BTreeSet<AttrName>>,
}

impl Schema {
    /// Start building a schema. `objectClass : string` is pre-declared, as
    /// Definition 3.1 requires.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::new()
    }

    /// σ(attr) — the attribute's type, if declared.
    pub fn attr_type(&self, attr: &AttrName) -> Option<TypeName> {
        self.attrs.get(attr.canonical()).copied()
    }

    /// ψ(class) — the class's allowed attributes, if declared.
    pub fn allowed_attrs(&self, class: &ClassName) -> Option<&BTreeSet<AttrName>> {
        self.classes.get(class.canonical())
    }

    /// True iff `class` is declared.
    pub fn has_class(&self, class: &ClassName) -> bool {
        self.classes.contains_key(class.canonical())
    }

    /// All declared attributes with their types.
    pub fn attrs(&self) -> impl Iterator<Item = (&AttrName, TypeName)> {
        self.attrs.iter().map(|(a, t)| (a, *t))
    }

    /// All declared classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassName> {
        self.classes.keys()
    }

    /// Is `attr` allowed for an entry belonging to `classes`?
    /// (Definition 3.2, condition 1: allowed by *at least one* class.)
    pub fn attr_allowed(&self, attr: &AttrName, classes: &[ClassName]) -> bool {
        if attr.canonical() == OBJECT_CLASS.to_ascii_lowercase() {
            return true;
        }
        classes.iter().any(|c| {
            self.classes
                .get(c.canonical())
                .is_some_and(|allowed| allowed.contains(attr.canonical()))
        })
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attrs: BTreeMap<AttrName, TypeName>,
    classes: BTreeMap<ClassName, BTreeSet<AttrName>>,
    errors: Vec<ModelError>,
}

impl SchemaBuilder {
    fn new() -> Self {
        let mut b = SchemaBuilder::default();
        b.attrs
            .insert(AttrName::new(OBJECT_CLASS), TypeName::Str);
        b
    }

    /// Declare an attribute with its type (σ).
    pub fn attr(mut self, name: impl Into<AttrName>, ty: TypeName) -> Self {
        let name = name.into();
        if name.canonical() == OBJECT_CLASS.to_ascii_lowercase() && ty != TypeName::Str {
            self.errors.push(ModelError::BadSchema {
                detail: "objectClass must have type string".into(),
            });
            return self;
        }
        if let Some(prev) = self.attrs.insert(name.clone(), ty) {
            if prev != ty {
                self.errors.push(ModelError::BadSchema {
                    detail: format!(
                        "attribute {name} declared with conflicting types {prev} and {ty}"
                    ),
                });
            }
        }
        self
    }

    /// Declare a class with its allowed attributes (ψ). Attributes must be
    /// declared (before or after; checked at `build`).
    pub fn class<I, S>(mut self, name: impl Into<ClassName>, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<AttrName>,
    {
        let name = name.into();
        let set: BTreeSet<AttrName> = attrs.into_iter().map(Into::into).collect();
        if self.classes.insert(name.clone(), set).is_some() {
            self.errors.push(ModelError::BadSchema {
                detail: format!("class {name} declared twice"),
            });
        }
        self
    }

    /// Finish, verifying every class's attributes are declared.
    pub fn build(mut self) -> ModelResult<Schema> {
        if let Some(e) = self.errors.drain(..).next() {
            return Err(e);
        }
        for (class, attrs) in &self.classes {
            for attr in attrs {
                if !self.attrs.contains_key(attr.canonical()) {
                    return Err(ModelError::BadSchema {
                        detail: format!(
                            "class {class} allows undeclared attribute {attr}"
                        ),
                    });
                }
            }
        }
        Ok(Schema {
            attrs: self.attrs,
            classes: self.classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .attr("dc", TypeName::Str)
            .attr("priority", TypeName::Int)
            .attr("ref", TypeName::Dn)
            .class("dcObject", ["dc"])
            .class("policy", ["priority", "ref"])
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_types_and_allowed() {
        let s = schema();
        assert_eq!(s.attr_type(&"dc".into()), Some(TypeName::Str));
        assert_eq!(s.attr_type(&"PRIORITY".into()), Some(TypeName::Int));
        assert_eq!(s.attr_type(&"nope".into()), None);
        assert!(s.has_class(&"dcobject".into()));
        assert!(s
            .allowed_attrs(&"policy".into())
            .unwrap()
            .contains("priority"));
    }

    #[test]
    fn object_class_is_predeclared_and_string() {
        let s = Schema::builder().build().unwrap();
        assert_eq!(s.attr_type(&OBJECT_CLASS.into()), Some(TypeName::Str));
        assert!(Schema::builder()
            .attr(OBJECT_CLASS, TypeName::Int)
            .build()
            .is_err());
    }

    #[test]
    fn attr_allowed_requires_one_class() {
        let s = schema();
        let both = vec![ClassName::new("dcObject"), ClassName::new("policy")];
        assert!(s.attr_allowed(&"dc".into(), &both));
        assert!(s.attr_allowed(&"priority".into(), &both));
        assert!(!s.attr_allowed(&"priority".into(), &[ClassName::new("dcObject")]));
        // objectClass always allowed.
        assert!(s.attr_allowed(&OBJECT_CLASS.into(), &[ClassName::new("dcObject")]));
    }

    #[test]
    fn undeclared_class_attr_rejected() {
        let err = Schema::builder()
            .class("c", ["ghost"])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn conflicting_attr_types_rejected() {
        assert!(Schema::builder()
            .attr("x", TypeName::Str)
            .attr("x", TypeName::Int)
            .build()
            .is_err());
        // Same type twice is fine.
        assert!(Schema::builder()
            .attr("x", TypeName::Str)
            .attr("X", TypeName::Str)
            .build()
            .is_ok());
    }

    #[test]
    fn duplicate_class_rejected() {
        assert!(Schema::builder()
            .attr("dc", TypeName::Str)
            .class("c", ["dc"])
            .class("C", ["dc"])
            .build()
            .is_err());
    }
}
