//! Attribute and class names.
//!
//! LDAP attribute names compare case-insensitively (`surName` ≡ `surname`).
//! [`AttrName`] and [`ClassName`] preserve the spelling they were created
//! with but hash/compare on the lowercased form, so `cn=X` and `CN=X` are
//! the same pair — matching commercial server behaviour and keeping the
//! sort-key canonical.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

macro_rules! ci_name {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone)]
        pub struct $name {
            display: Box<str>,
            folded: Box<str>,
        }

        impl $name {
            /// Create a name, preserving spelling, folding for comparison.
            pub fn new(s: impl AsRef<str>) -> Self {
                let display: Box<str> = s.as_ref().into();
                let folded: Box<str> = display.to_ascii_lowercase().into();
                $name { display, folded }
            }

            /// The original spelling.
            pub fn as_str(&self) -> &str {
                &self.display
            }

            /// The canonical (lowercased) spelling used for ordering,
            /// equality, and sort keys.
            pub fn canonical(&self) -> &str {
                &self.folded
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.display)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), &*self.display)
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.folded == other.folded
            }
        }
        impl Eq for $name {}

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for $name {
            fn cmp(&self, other: &Self) -> Ordering {
                self.folded.cmp(&other.folded)
            }
        }

        impl Hash for $name {
            fn hash<H: Hasher>(&self, state: &mut H) {
                self.folded.hash(state)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name::new(s)
            }
        }
        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name::new(s)
            }
        }

        /// Borrow as the canonical form, enabling map lookups by `&str`
        /// (callers must pass lowercased strings).
        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.folded
            }
        }
    };
}

ci_name! {
    /// An attribute name (element of the paper's set `A`), e.g. `surName`.
    AttrName
}

ci_name! {
    /// A class name (element of the paper's set `C`), e.g. `inetOrgPerson`.
    ClassName
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn comparison_is_case_insensitive() {
        assert_eq!(AttrName::new("surName"), AttrName::new("SURNAME"));
        assert_eq!(ClassName::new("QHP"), ClassName::new("qhp"));
        assert!(AttrName::new("a") < AttrName::new("B"));
    }

    #[test]
    fn display_preserves_spelling() {
        let a = AttrName::new("objectClass");
        assert_eq!(a.to_string(), "objectClass");
        assert_eq!(a.canonical(), "objectclass");
    }

    #[test]
    fn set_deduplicates_case_variants() {
        let set: BTreeSet<AttrName> = ["cn", "CN", "Cn"].iter().map(AttrName::new).collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn borrow_enables_str_lookup() {
        let set: BTreeSet<AttrName> = [AttrName::new("SurName")].into_iter().collect();
        assert!(set.contains("surname"));
        assert!(!set.contains("surName")); // lookups must be canonical
    }
}
