//! The directory information forest (Section 3.3).
//!
//! A [`Directory`] is a directory *instance*: a finite set of entries whose
//! DNs induce the hierarchy. The paper deliberately works with a forest,
//! not a tree ("we need this extension to obtain the closure property for
//! our query languages") — roots may appear anywhere; an entry's parent
//! need not exist.
//!
//! Entries are indexed by their reverse-DN [`crate::dn::SortKey`], under which a
//! subtree is a contiguous key range; `base`/`one`/`sub` scope resolution
//! and sorted-list export are range scans.

use crate::dn::Dn;
use crate::entry::{Entry, EntryId};
use crate::error::{ModelError, ModelResult};
use crate::schema::Schema;
use netdir_pager::{PagedList, Pager, PagerResult};
use std::collections::BTreeMap;

/// An in-memory directory instance with sort-key indexing.
///
/// This is the *authoritative store* (what a server holds); query
/// evaluation operates on sorted [`PagedList`]s exported from it, so that
/// operator I/O is measured against the external-memory substrate.
#[derive(Debug, Default)]
pub struct Directory {
    schema: Option<Schema>,
    /// Reverse-DN key bytes → entry id. BTreeMap gives sorted iteration
    /// and contiguous subtree ranges.
    by_key: BTreeMap<Vec<u8>, EntryId>,
    /// Entry id → entry. Ids are dense; removal leaves a tombstone.
    entries: Vec<Option<Entry>>,
    live: usize,
}

impl Directory {
    /// An empty directory without schema enforcement.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// An empty directory that validates every inserted entry against
    /// `schema`.
    pub fn with_schema(schema: Schema) -> Directory {
        Directory {
            schema: Some(schema),
            ..Directory::default()
        }
    }

    /// The schema, if any.
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff no entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert an entry, assigning it an id. Enforces DN uniqueness
    /// (Definition 3.2(d)(i)) and, if a schema is set, Definition 3.2's
    /// conditions.
    pub fn insert(&mut self, mut entry: Entry) -> ModelResult<EntryId> {
        if let Some(schema) = &self.schema {
            entry.validate(schema)?;
        } else {
            entry.check_rdn_in_values()?;
        }
        let key = entry.dn().sort_key().as_bytes().to_vec();
        if self.by_key.contains_key(&key) {
            return Err(ModelError::DuplicateDn {
                dn: entry.dn().to_string(),
            });
        }
        let id = self.entries.len() as EntryId;
        entry.set_id(id);
        self.entries.push(Some(entry));
        self.by_key.insert(key, id);
        self.live += 1;
        Ok(id)
    }

    /// Modify an entry in place: add and remove `(attribute, value)`
    /// pairs. The result must still satisfy the model's invariants
    /// (rdn ⊆ val; schema conditions if a schema is set) or the entry is
    /// left untouched and the violation returned — modifications are
    /// atomic per entry.
    ///
    /// This is the update surface the exception mechanism of Example 2.1
    /// relies on ("exception attributes allow for easy insertion and
    /// deletion of policies"): adding an `SLAExceptionRef` value is one
    /// `modify`, no renumbering of priorities.
    pub fn modify(
        &mut self,
        dn: &Dn,
        add: &[(crate::attr::AttrName, crate::value::Value)],
        remove: &[(crate::attr::AttrName, crate::value::Value)],
    ) -> ModelResult<()> {
        let key = dn.sort_key().as_bytes().to_vec();
        let id = *self
            .by_key
            .get(&key)
            .ok_or_else(|| ModelError::NoSuchEntry { dn: dn.to_string() })?;
        let current = self.entries[id as usize]
            .as_ref()
            .expect("indexed entry exists");
        // Rebuild through the builder so ordering/dedup/rdn invariants
        // re-establish themselves.
        let mut builder = Entry::builder(current.dn().clone());
        'pairs: for (a, v) in current.pairs() {
            for (ra, rv) in remove {
                if a == ra && v.canonical() == rv.canonical() {
                    continue 'pairs;
                }
            }
            builder = builder.attr(a.clone(), v.clone());
        }
        for (a, v) in add {
            builder = builder.attr(a.clone(), v.clone());
        }
        let mut rebuilt = builder.build()?;
        if let Some(schema) = &self.schema {
            rebuilt.validate(schema)?;
        }
        rebuilt.set_id(id);
        self.entries[id as usize] = Some(rebuilt);
        Ok(())
    }

    /// Remove the entry with this DN (its descendants stay — the model is
    /// a forest, so orphaned subtrees are legal). Returns the entry.
    pub fn remove(&mut self, dn: &Dn) -> ModelResult<Entry> {
        let key = dn.sort_key().as_bytes().to_vec();
        let id = self.by_key.remove(&key).ok_or_else(|| ModelError::NoSuchEntry {
            dn: dn.to_string(),
        })?;
        self.live -= 1;
        Ok(self.entries[id as usize]
            .take()
            .expect("indexed entry exists"))
    }

    /// Fetch by id.
    pub fn get(&self, id: EntryId) -> Option<&Entry> {
        self.entries.get(id as usize).and_then(|e| e.as_ref())
    }

    /// Fetch by DN.
    pub fn lookup(&self, dn: &Dn) -> Option<&Entry> {
        let id = *self.by_key.get(dn.sort_key().as_bytes())?;
        self.get(id)
    }

    /// True iff an entry with this DN exists.
    pub fn contains(&self, dn: &Dn) -> bool {
        self.by_key.contains_key(dn.sort_key().as_bytes())
    }

    /// The parent *entry* of `dn`, if present in this instance.
    pub fn parent_of(&self, dn: &Dn) -> Option<&Entry> {
        self.lookup(&dn.parent()?)
    }

    /// All entries in sorted (reverse-DN) order.
    pub fn iter_sorted(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.by_key
            .values()
            .map(move |&id| self.get(id).expect("indexed entry exists"))
    }

    /// The subtree rooted at `base` — `base`'s entry (if any) and every
    /// descendant entry — in sorted order. `Dn::root()` yields everything.
    pub fn subtree<'a>(&'a self, base: &Dn) -> impl Iterator<Item = &'a Entry> + 'a {
        let prefix = base.sort_key().as_bytes().to_vec();
        self.by_key
            .range(prefix.clone()..)
            .take_while(move |(k, _)| k.starts_with(&prefix))
            .map(move |(_, &id)| self.get(id).expect("indexed entry exists"))
    }

    /// `base`'s entry (if any) and its child entries, in sorted order —
    /// the `one` scope of Definition 4.1.
    pub fn base_and_children<'a>(&'a self, base: &Dn) -> impl Iterator<Item = &'a Entry> + 'a {
        let base_depth = base.depth();
        self.subtree(base)
            .filter(move |e| e.dn().depth() <= base_depth + 1)
    }

    /// Child entries only.
    pub fn children_of<'a>(&'a self, base: &Dn) -> impl Iterator<Item = &'a Entry> + 'a {
        let base_depth = base.depth();
        self.subtree(base)
            .filter(move |e| e.dn().depth() == base_depth + 1)
    }

    /// Export every entry, sorted, as a [`PagedList`] on `pager` — the
    /// form the evaluation operators consume.
    pub fn to_paged_list(&self, pager: &Pager) -> PagerResult<PagedList<Entry>> {
        PagedList::from_iter(pager, self.iter_sorted().cloned())
    }

    /// Export the subtree under `base`, sorted, as a [`PagedList`].
    pub fn subtree_to_paged_list(
        &self,
        pager: &Pager,
        base: &Dn,
    ) -> PagerResult<PagedList<Entry>> {
        PagedList::from_iter(pager, self.subtree(base).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn entry(s: &str) -> Entry {
        Entry::builder(dn(s)).class("dcObject").build().unwrap()
    }

    fn sample() -> Directory {
        let mut d = Directory::new();
        for s in [
            "dc=com",
            "dc=att, dc=com",
            "dc=research, dc=att, dc=com",
            "dc=corona, dc=research, dc=att, dc=com",
            "dc=labs, dc=att, dc=com",
            "dc=org",
        ] {
            d.insert(entry(s)).unwrap();
        }
        d
    }

    #[test]
    fn insert_lookup_len() {
        let d = sample();
        assert_eq!(d.len(), 6);
        let e = d.lookup(&dn("dc=att, dc=com")).unwrap();
        assert_eq!(e.dn(), &dn("dc=att, dc=com"));
        assert!(d.contains(&dn("dc=org")));
        assert!(!d.contains(&dn("dc=net")));
    }

    #[test]
    fn duplicate_dn_rejected() {
        let mut d = sample();
        assert!(matches!(
            d.insert(entry("dc=org")),
            Err(ModelError::DuplicateDn { .. })
        ));
    }

    #[test]
    fn subtree_is_contiguous_and_sorted() {
        let d = sample();
        let got: Vec<String> = d
            .subtree(&dn("dc=att, dc=com"))
            .map(|e| e.dn().to_string())
            .collect();
        assert_eq!(
            got,
            vec![
                "dc=att, dc=com",
                "dc=labs, dc=att, dc=com",
                "dc=research, dc=att, dc=com",
                "dc=corona, dc=research, dc=att, dc=com",
            ]
        );
    }

    #[test]
    fn root_subtree_is_everything() {
        let d = sample();
        assert_eq!(d.subtree(&Dn::root()).count(), 6);
    }

    #[test]
    fn children_and_one_scope() {
        let d = sample();
        let kids: Vec<String> = d
            .children_of(&dn("dc=att, dc=com"))
            .map(|e| e.dn().to_string())
            .collect();
        assert_eq!(kids, vec!["dc=labs, dc=att, dc=com", "dc=research, dc=att, dc=com"]);
        assert_eq!(d.base_and_children(&dn("dc=att, dc=com")).count(), 3);
        // one scope from the forest root: the roots.
        let top: Vec<String> = d
            .children_of(&Dn::root())
            .map(|e| e.dn().to_string())
            .collect();
        assert_eq!(top, vec!["dc=com", "dc=org"]);
    }

    #[test]
    fn parent_of_navigation() {
        let d = sample();
        let p = d.parent_of(&dn("dc=research, dc=att, dc=com")).unwrap();
        assert_eq!(p.dn(), &dn("dc=att, dc=com"));
        assert!(d.parent_of(&dn("dc=com")).is_none());
    }

    #[test]
    fn remove_leaves_orphans() {
        let mut d = sample();
        d.remove(&dn("dc=att, dc=com")).unwrap();
        assert_eq!(d.len(), 5);
        assert!(!d.contains(&dn("dc=att, dc=com")));
        // Orphaned descendants remain — the instance is a forest.
        assert!(d.contains(&dn("dc=research, dc=att, dc=com")));
        assert!(matches!(
            d.remove(&dn("dc=att, dc=com")),
            Err(ModelError::NoSuchEntry { .. })
        ));
    }

    #[test]
    fn modify_adds_and_removes_values() {
        use crate::value::Value;
        let mut d = sample();
        let target = dn("dc=att, dc=com");
        d.modify(
            &target,
            &[("description".into(), Value::str("carrier")),
              ("description".into(), Value::str("research lab"))],
            &[],
        )
        .unwrap();
        assert_eq!(d.lookup(&target).unwrap().values(&"description".into()).count(), 2);
        d.modify(
            &target,
            &[],
            &[("description".into(), Value::str("carrier"))],
        )
        .unwrap();
        let e = d.lookup(&target).unwrap();
        assert_eq!(e.first_str(&"description".into()), Some("research lab"));
        assert_eq!(e.id(), 1, "id stable across modify");
    }

    #[test]
    fn modify_cannot_strip_rdn_or_classes() {
        use crate::value::Value;
        let mut d = sample();
        let target = dn("dc=att, dc=com");
        // Removing the rdn value is silently restored by the builder's
        // rdn ⊆ val invariant (the pair is re-added).
        d.modify(&target, &[], &[("dc".into(), Value::str("att"))])
            .unwrap();
        assert!(d.lookup(&target).unwrap().has_attr(&"dc".into()));
        // Unknown entry errors.
        assert!(matches!(
            d.modify(&dn("dc=ghost"), &[], &[]),
            Err(ModelError::NoSuchEntry { .. })
        ));
    }

    #[test]
    fn modify_respects_schema_atomically() {
        use crate::value::TypeName;
        use crate::value::Value;
        let schema = Schema::builder()
            .attr("dc", TypeName::Str)
            .attr("priority", TypeName::Int)
            .class("dcObject", ["dc", "priority"])
            .build()
            .unwrap();
        let mut d = Directory::with_schema(schema);
        d.insert(entry("dc=com")).unwrap();
        let target = dn("dc=com");
        // Type violation rejected, entry unchanged.
        let err = d
            .modify(&target, &[("priority".into(), Value::str("high"))], &[])
            .unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
        assert!(!d.lookup(&target).unwrap().has_attr(&"priority".into()));
        // Valid modification sticks.
        d.modify(&target, &[("priority".into(), Value::int(1))], &[])
            .unwrap();
        assert_eq!(d.lookup(&target).unwrap().first_int(&"priority".into()), Some(1));
    }

    #[test]
    fn schema_enforcement_on_insert() {
        use crate::value::TypeName;
        let schema = Schema::builder()
            .attr("dc", TypeName::Str)
            .class("dcObject", ["dc"])
            .build()
            .unwrap();
        let mut d = Directory::with_schema(schema);
        d.insert(entry("dc=com")).unwrap();
        let bad = Entry::builder(dn("cn=x, dc=com"))
            .class("ghost")
            .build()
            .unwrap();
        assert!(d.insert(bad).is_err());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn paged_export_roundtrips_sorted() {
        let d = sample();
        let pager = netdir_pager::tiny_pager();
        let list = d.to_paged_list(&pager).unwrap();
        assert_eq!(list.len(), 6);
        let back = list.to_vec().unwrap();
        let expect: Vec<Entry> = d.iter_sorted().cloned().collect();
        assert_eq!(back, expect);
    }

    #[test]
    fn ids_are_stable_and_resolvable() {
        let d = sample();
        for e in d.iter_sorted() {
            assert_eq!(d.get(e.id()).unwrap().dn(), e.dn());
        }
    }
}
