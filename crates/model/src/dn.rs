//! Distinguished names and the reverse-DN sort key.
//!
//! A DN is a sequence of RDNs written **leaf-first** (Definition 3.2(d)):
//! `uid=jag, ou=userProfiles, dc=research, dc=att, dc=com`. An RDN is a
//! *set* of `(attribute, value)` pairs (written `a=1+b=2` when there are
//! several, as in LDAP); the model generalizes UNIX file names by allowing
//! this arbitrary set.
//!
//! Entry `r` is a **parent** of `r'` iff `dn(r') = rdn(r'); dn(r)`, and an
//! **ancestor** iff `dn(r') = s1; …; sm; dn(r)` for some RDNs `s1..sm`.
//!
//! ## The sort key
//!
//! Every evaluation algorithm in the paper assumes lists sorted "based on
//! the lexicographic ordering of the **reverse** of the string
//! representation of the distinguished names" (Section 4.2, citing the
//! RFC 2253 rendering \[31\]), chosen so that *"the reverse dn of a parent
//! entry is a prefix of the reverse dn of a child entry"* (Figures 2–6).
//!
//! [`SortKey`] realizes this with a byte encoding that makes the prefix
//! property exact rather than approximate: the DN's RDNs are emitted
//! root-first, each canonical RDN string followed by a `0x00` separator.
//! Because `0x00` is forbidden inside RDNs and sorts below every content
//! byte:
//!
//! * ancestor(x, y) ⇔ `key(x)` is a proper byte-prefix of `key(y)`;
//! * a subtree is exactly the contiguous key range with prefix `key(root)`;
//! * a parent sorts immediately at the head of its subtree.
//!
//! (A naive reversal of the display string lacks the first property:
//! `dc=a` would look like an ancestor of `dc=ab`.)

use crate::attr::AttrName;
use crate::error::{ModelError, ModelResult};
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Byte that terminates each DN component inside a [`SortKey`].
pub const KEY_SEPARATOR: u8 = 0x00;

/// A relative distinguished name: a non-empty set of `(attribute, value)`
/// pairs. Stored sorted by canonical form; equality, ordering and hashing
/// all use the canonical rendering, so `CN=Jag` ≡ `cn=jag`.
#[derive(Clone)]
pub struct Rdn {
    pairs: Vec<(AttrName, Value)>,
    canonical: String,
}

impl Rdn {
    /// Build an RDN from pairs. Duplicate pairs (by canonical form) are
    /// collapsed — an RDN is a set.
    pub fn new(pairs: impl IntoIterator<Item = (AttrName, Value)>) -> ModelResult<Rdn> {
        let mut pairs: Vec<(AttrName, Value)> = pairs.into_iter().collect();
        if pairs.is_empty() {
            return Err(ModelError::EmptyRdn);
        }
        pairs.sort_by(|a, b| {
            (a.0.canonical(), a.1.canonical()).cmp(&(b.0.canonical(), b.1.canonical()))
        });
        pairs.dedup_by(|a, b| {
            a.0.canonical() == b.0.canonical() && a.1.canonical() == b.1.canonical()
        });
        let canonical = render_pairs(&pairs);
        if canonical.as_bytes().contains(&KEY_SEPARATOR) {
            return Err(ModelError::NulInRdn { rdn: canonical });
        }
        Ok(Rdn { pairs, canonical })
    }

    /// The common single-pair RDN, e.g. `dc=att`.
    pub fn single(attr: impl Into<AttrName>, value: impl Into<Value>) -> ModelResult<Rdn> {
        Rdn::new([(attr.into(), value.into())])
    }

    /// The pairs, sorted canonically.
    pub fn pairs(&self) -> &[(AttrName, Value)] {
        &self.pairs
    }

    /// Canonical rendering: `attr=value` pairs (case-folded) joined by `+`,
    /// with `\ , + = NUL` escaped.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }
}

fn escape_component(s: &str, out: &mut String) {
    for c in s.chars() {
        if matches!(c, '\\' | ',' | '+' | '=') {
            out.push('\\');
        }
        out.push(c);
    }
}

fn render_pairs(pairs: &[(AttrName, Value)]) -> String {
    let mut out = String::new();
    for (i, (a, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push('+');
        }
        escape_component(a.canonical(), &mut out);
        out.push('=');
        escape_component(&v.canonical(), &mut out);
    }
    out
}

impl PartialEq for Rdn {
    fn eq(&self, other: &Self) -> bool {
        self.canonical == other.canonical
    }
}
impl Eq for Rdn {}
impl PartialOrd for Rdn {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Rdn {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical.cmp(&other.canonical)
    }
}
impl Hash for Rdn {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical.hash(state)
    }
}

impl fmt::Display for Rdn {
    /// Original spellings with `\ , + =` escaped, pairs joined by `+`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (a, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            let mut s = String::new();
            escape_component(a.as_str(), &mut s);
            s.push('=');
            escape_component(&v.to_string(), &mut s);
            f.write_str(&s)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rdn({})", self.canonical)
    }
}

/// A distinguished name: a sequence of RDNs, leaf-first. The empty
/// sequence is the conceptual **forest root** (`Dn::root()`), used as a
/// base DN meaning "the whole directory" (the paper's `null-dn`,
/// Section 8.1); real entries always have non-empty DNs.
#[derive(Clone)]
pub struct Dn {
    /// Leaf-first, as written: `rdns[0]` is the entry's own RDN.
    rdns: Vec<Rdn>,
    key: SortKey,
}

impl Dn {
    /// Build from leaf-first RDNs.
    pub fn from_rdns(rdns: Vec<Rdn>) -> Dn {
        let key = SortKey::from_rdns(&rdns);
        Dn { rdns, key }
    }

    /// The forest root (empty DN).
    pub fn root() -> Dn {
        Dn::from_rdns(Vec::new())
    }

    /// Parse an LDAP-style DN string: components separated by `,`,
    /// multi-pair RDNs by `+`, attribute and value by the first `=`;
    /// `\` escapes any of `\ , + =`. Whitespace around separators is
    /// trimmed. The empty string parses to [`Dn::root()`].
    ///
    /// Values parse as strings; integer-typed construction is available
    /// programmatically via [`Rdn::new`]. (Canonical forms coincide, so a
    /// parsed `priority=2` still names the entry built with `Value::int(2)`.)
    ///
    /// ```
    /// use netdir_model::Dn;
    /// let child = Dn::parse("dc=research, dc=att, dc=com").unwrap();
    /// let parent = Dn::parse("DC=ATT, dc=com").unwrap(); // case-folded
    /// assert!(parent.is_parent_of(&child));
    /// assert_eq!(child.parent().unwrap(), parent);
    /// // Sorting follows the reverse-DN order of §4.2: parents first.
    /// assert!(parent < child);
    /// ```
    pub fn parse(input: &str) -> ModelResult<Dn> {
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return Ok(Dn::root());
        }
        let mut rdns = Vec::new();
        for comp in split_unescaped(trimmed, ',') {
            let comp = comp.trim();
            if comp.is_empty() {
                return Err(ModelError::DnParse {
                    input: input.to_string(),
                    detail: "empty DN component".into(),
                });
            }
            let mut pairs = Vec::new();
            for pair in split_unescaped(comp, '+') {
                let pair = pair.trim();
                let Some(eq) = find_unescaped(pair, '=') else {
                    return Err(ModelError::DnParse {
                        input: input.to_string(),
                        detail: format!("component {pair:?} has no '='"),
                    });
                };
                let attr = unescape(pair[..eq].trim());
                let value = unescape(pair[eq + 1..].trim());
                if attr.is_empty() {
                    return Err(ModelError::DnParse {
                        input: input.to_string(),
                        detail: format!("component {pair:?} has empty attribute"),
                    });
                }
                pairs.push((AttrName::new(attr), Value::Str(value)));
            }
            rdns.push(Rdn::new(pairs)?);
        }
        Ok(Dn::from_rdns(rdns))
    }

    /// Number of RDNs. The forest root has depth 0.
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// True iff this is the forest root.
    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    /// The entry's own RDN (`s1`), if any.
    pub fn rdn(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// Leaf-first RDNs.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// The parent DN. Depth-1 DNs have the forest root as parent; the
    /// forest root has none.
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn::from_rdns(self.rdns[1..].to_vec()))
        }
    }

    /// Extend downward: the DN whose parent is `self` and whose RDN is
    /// `rdn`.
    pub fn child(&self, rdn: Rdn) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(rdn);
        rdns.extend_from_slice(&self.rdns);
        Dn::from_rdns(rdns)
    }

    /// `self` is a **proper** ancestor of `other` (Definition 3.2 text).
    /// The forest root is an ancestor of every non-root DN.
    pub fn is_ancestor_of(&self, other: &Dn) -> bool {
        self.key.is_ancestor_of(&other.key)
    }

    /// `self` is the parent of `other`.
    pub fn is_parent_of(&self, other: &Dn) -> bool {
        self.key.is_parent_of(&other.key)
    }

    /// `self` is a proper descendant of `other`.
    pub fn is_descendant_of(&self, other: &Dn) -> bool {
        other.is_ancestor_of(self)
    }

    /// The reverse-DN sort key.
    pub fn sort_key(&self) -> &SortKey {
        &self.key
    }

    /// Canonical rendering (leaf-first, case-folded, `", "`-joined).
    pub fn canonical(&self) -> String {
        self.rdns
            .iter()
            .map(|r| r.canonical().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn split_unescaped(s: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == sep {
            parts.push(&s[start..i]);
            start = i + c.len_utf8();
        }
    }
    parts.push(&s[start..]);
    parts
}

fn find_unescaped(s: &str, target: char) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == target {
            return Some(i);
        }
    }
    None
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else {
            out.push(c);
        }
    }
    out
}

impl PartialEq for Dn {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Dn {}
impl PartialOrd for Dn {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Dn {
    /// DNs order by their reverse-DN sort key — the order of Section 4.2.
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}
impl Hash for Dn {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key.hash(state)
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{rdn}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dn({self})")
    }
}

impl std::str::FromStr for Dn {
    type Err = ModelError;
    fn from_str(s: &str) -> ModelResult<Dn> {
        Dn::parse(s)
    }
}

/// The reverse-DN sort key (see module docs): root-first canonical RDN
/// strings, each followed by `0x00`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SortKey(Vec<u8>);

impl SortKey {
    fn from_rdns(leaf_first: &[Rdn]) -> SortKey {
        let mut bytes = Vec::new();
        for rdn in leaf_first.iter().rev() {
            bytes.extend_from_slice(rdn.canonical().as_bytes());
            bytes.push(KEY_SEPARATOR);
        }
        SortKey(bytes)
    }

    /// Construct from raw bytes (for deserialization; callers must supply
    /// bytes previously produced by [`SortKey::as_bytes`]).
    pub fn from_bytes(bytes: Vec<u8>) -> SortKey {
        SortKey(bytes)
    }

    /// The key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Number of DN components (count of separators).
    pub fn depth(&self) -> usize {
        self.0.iter().filter(|&&b| b == KEY_SEPARATOR).count()
    }

    /// Proper-prefix test: `self` names an ancestor of `other`'s entry.
    pub fn is_ancestor_of(&self, other: &SortKey) -> bool {
        self.0.len() < other.0.len() && other.0.starts_with(&self.0)
    }

    /// `self` names the parent of `other`'s entry: ancestor at exactly one
    /// component's remove.
    pub fn is_parent_of(&self, other: &SortKey) -> bool {
        self.is_ancestor_of(other) && self.depth() + 1 == other.depth()
    }

    /// Non-strict prefix test: `other` is `self` or in `self`'s subtree.
    pub fn subsumes(&self, other: &SortKey) -> bool {
        other.0.starts_with(&self.0)
    }
}

impl fmt::Debug for SortKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SortKey({})", String::from_utf8_lossy(&self.0).replace('\0', "␀"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let d = dn("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
        assert_eq!(d.depth(), 5);
        assert_eq!(
            d.to_string(),
            "uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"
        );
        assert_eq!(Dn::parse(&d.to_string()).unwrap(), d);
    }

    #[test]
    fn parse_is_whitespace_and_case_insensitive() {
        assert_eq!(dn("dc=att,dc=com"), dn("DC=ATT,  dc=com"));
    }

    #[test]
    fn multi_valued_rdn() {
        let d = dn("cn=jag+uid=42, dc=com");
        assert_eq!(d.rdn().unwrap().pairs().len(), 2);
        // RDN is a set: order and duplicates don't matter.
        assert_eq!(dn("uid=42+cn=jag, dc=com"), d);
        assert_eq!(dn("cn=jag+uid=42+cn=jag, dc=com"), d);
    }

    #[test]
    fn escapes_roundtrip() {
        let rdn = Rdn::single("cn", "a,b=c+d\\e").unwrap();
        let d = Dn::from_rdns(vec![rdn]);
        let rendered = d.to_string();
        assert_eq!(Dn::parse(&rendered).unwrap(), d);
    }

    #[test]
    fn parse_errors() {
        assert!(Dn::parse("dc=att,,dc=com").is_err());
        assert!(Dn::parse("noequals, dc=com").is_err());
        assert!(Dn::parse("=value, dc=com").is_err());
    }

    #[test]
    fn parent_child_relationships() {
        let child = dn("dc=att, dc=com");
        let parent = dn("dc=com");
        assert_eq!(child.parent().unwrap(), parent);
        assert!(parent.is_parent_of(&child));
        assert!(parent.is_ancestor_of(&child));
        assert!(child.is_descendant_of(&parent));
        assert!(!child.is_ancestor_of(&parent));
        assert!(!parent.is_ancestor_of(&parent), "ancestor is proper");

        let grand = dn("dc=research, dc=att, dc=com");
        assert!(parent.is_ancestor_of(&grand));
        assert!(!parent.is_parent_of(&grand));
        assert_eq!(parent.child(Rdn::single("dc", "att").unwrap()), child);
    }

    #[test]
    fn root_is_everyones_ancestor() {
        let root = Dn::root();
        assert!(root.is_root());
        assert_eq!(root.depth(), 0);
        assert!(root.is_ancestor_of(&dn("dc=com")));
        assert!(root.is_ancestor_of(&dn("dc=att, dc=com")));
        assert!(root.is_parent_of(&dn("dc=com")));
        assert!(!root.is_parent_of(&dn("dc=att, dc=com")));
        assert_eq!(dn("dc=com").parent().unwrap(), root);
        assert_eq!(root.parent(), None);
        assert_eq!(Dn::parse("").unwrap(), root);
    }

    #[test]
    fn sort_key_prefix_property() {
        // The false-prefix trap: dc=a vs dc=ab.
        let a = dn("dc=a");
        let ab = dn("dc=ab");
        assert!(!a.is_ancestor_of(&ab));
        assert!(!ab.is_ancestor_of(&a));

        let a_x = dn("dc=x, dc=a");
        assert!(a.is_ancestor_of(&a_x));
        assert!(!ab.is_ancestor_of(&a_x));
    }

    #[test]
    fn sort_order_puts_parents_before_descendants() {
        let mut dns = [dn("dc=org"),
            dn("dc=research, dc=att, dc=com"),
            dn("dc=com"),
            dn("dc=att, dc=com"),
            dn("dc=zebra, dc=att, dc=com"),
            dn("dc=corona, dc=research, dc=att, dc=com")];
        dns.sort();
        let rendered: Vec<String> = dns.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "dc=com",
                "dc=att, dc=com",
                "dc=research, dc=att, dc=com",
                "dc=corona, dc=research, dc=att, dc=com",
                "dc=zebra, dc=att, dc=com",
                "dc=org",
            ]
        );
        // Subtrees are contiguous: everything under dc=att,dc=com sits
        // between the entry and dc=org.
    }

    #[test]
    fn nul_in_rdn_is_rejected() {
        assert!(matches!(
            Rdn::single("cn", "a\0b"),
            Err(ModelError::NulInRdn { .. })
        ));
    }

    #[test]
    fn int_and_string_rdn_values_coincide_canonically() {
        let via_int = Dn::from_rdns(vec![Rdn::single("priority", Value::int(2)).unwrap()]);
        let via_str = dn("priority=2");
        assert_eq!(via_int, via_str);
        assert_eq!(via_int.sort_key(), via_str.sort_key());
    }

    #[test]
    fn depth_via_key_matches() {
        for s in ["", "dc=com", "dc=att, dc=com", "a=1+b=2, c=3"] {
            let d = dn(s);
            assert_eq!(d.sort_key().depth(), d.depth());
        }
    }
}
