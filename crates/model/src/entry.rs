//! Directory entries (Definition 3.2).
//!
//! An entry holds a *multiset* of `(attribute, value)` pairs — the same
//! attribute may appear with several values, the heterogeneity mechanism
//! Section 3.5 emphasizes (a policy's several `SLATPRef`s, a validity
//! period's several `PVDayOfWeek`s). Its class set is exactly the set of
//! values of its `objectClass` attribute (condition 2), and its RDN's pairs
//! must appear among its values (rdn ⊆ val).

use crate::attr::{AttrName, ClassName};
use crate::dn::Dn;
use crate::error::{ModelError, ModelResult};
use crate::schema::Schema;
use crate::value::Value;
use crate::OBJECT_CLASS;
use netdir_pager::record::{codec, PageCtx, Record};
use netdir_pager::{PagerError, PagerResult};

/// Rebuild a DN from a reverse-DN sort key: split on the `0x00`
/// separators (root-first canonical RDN strings), reverse to leaf-first,
/// join with `", "`, parse. Returns `None` for malformed keys. Used by
/// the v2 page format to avoid storing the DN twice (the page key *is*
/// the DN, canonically).
fn dn_from_page_key(key: &[u8]) -> Option<Dn> {
    if key.is_empty() {
        return None;
    }
    if *key.last()? != 0 {
        return None;
    }
    let mut display = String::new();
    for seg in key[..key.len() - 1].split(|&b| b == 0).rev() {
        if !display.is_empty() {
            display.push_str(", ");
        }
        display.push_str(std::str::from_utf8(seg).ok()?);
    }
    Dn::parse(&display).ok()
}

/// Identifier a [`crate::Directory`] assigns to an entry on insertion.
pub type EntryId = u64;

/// A directory entry: a DN plus a multiset of `(attribute, value)` pairs.
///
/// Pairs are kept sorted by `(attribute, value)` canonical order; identical
/// pairs are collapsed (val(r) is a *set* of pairs — multi-valuedness means
/// several pairs sharing an attribute, not repeated identical pairs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    id: EntryId,
    dn: Dn,
    attrs: Vec<(AttrName, Value)>,
}

impl Entry {
    /// Start building an entry with the given DN.
    pub fn builder(dn: Dn) -> EntryBuilder {
        EntryBuilder {
            dn,
            attrs: Vec::new(),
        }
    }

    /// The directory-assigned id (0 until inserted).
    pub fn id(&self) -> EntryId {
        self.id
    }

    pub(crate) fn set_id(&mut self, id: EntryId) {
        self.id = id;
    }

    /// The entry's distinguished name.
    pub fn dn(&self) -> &Dn {
        &self.dn
    }

    /// All `(attribute, value)` pairs, sorted.
    pub fn pairs(&self) -> &[(AttrName, Value)] {
        &self.attrs
    }

    /// The values of `attr` (possibly none; possibly several).
    pub fn values<'a>(&'a self, attr: &AttrName) -> impl Iterator<Item = &'a Value> + 'a {
        let attr = attr.clone();
        self.attrs
            .iter()
            .filter(move |(a, _)| *a == attr)
            .map(|(_, v)| v)
    }

    /// True iff the entry has at least one value for `attr` — the
    /// presence filter `attr=*`.
    pub fn has_attr(&self, attr: &AttrName) -> bool {
        self.values(attr).next().is_some()
    }

    /// First integer value of `attr`, if any.
    pub fn first_int(&self, attr: &AttrName) -> Option<i64> {
        self.values(attr).find_map(|v| v.as_int())
    }

    /// First string value of `attr`, if any.
    pub fn first_str(&self, attr: &AttrName) -> Option<&str> {
        self.values(attr).find_map(|v| v.as_str())
    }

    /// First DN value of `attr`, if any.
    pub fn first_dn(&self, attr: &AttrName) -> Option<&Dn> {
        self.values(attr).find_map(|v| v.as_dn())
    }

    /// class(r): the values of `objectClass` (Definition 3.2, condition 2).
    pub fn classes(&self) -> Vec<ClassName> {
        let oc = AttrName::new(OBJECT_CLASS);
        self.values(&oc)
            .filter_map(|v| v.as_str())
            .map(ClassName::new)
            .collect()
    }

    /// True iff the entry belongs to `class`.
    pub fn has_class(&self, class: &ClassName) -> bool {
        self.classes().iter().any(|c| c == class)
    }

    /// Check this entry against `schema` (Definition 3.2 conditions):
    /// non-empty class set; every class declared; every pair's attribute
    /// declared, allowed by some class, and of the right type; rdn ⊆ val.
    pub fn validate(&self, schema: &Schema) -> ModelResult<()> {
        let classes = self.classes();
        if classes.is_empty() {
            return Err(ModelError::NoClasses);
        }
        for c in &classes {
            if !schema.has_class(c) {
                return Err(ModelError::UnknownClass {
                    class: c.to_string(),
                });
            }
        }
        for (a, v) in &self.attrs {
            let Some(ty) = schema.attr_type(a) else {
                return Err(ModelError::UnknownAttribute {
                    attr: a.to_string(),
                });
            };
            if v.type_name() != ty {
                return Err(ModelError::TypeMismatch {
                    attr: a.to_string(),
                    expected: ty.to_string(),
                    got: v.type_name().to_string(),
                });
            }
            if !schema.attr_allowed(a, &classes) {
                return Err(ModelError::AttributeNotAllowed {
                    attr: a.to_string(),
                    classes: classes.iter().map(|c| c.to_string()).collect(),
                });
            }
        }
        self.check_rdn_in_values()
    }

    /// rdn(r) ⊆ val(r) (Definition 3.2(d)(ii)). Comparison is canonical, so
    /// a string-valued rdn pair matches an int-valued entry pair.
    pub fn check_rdn_in_values(&self) -> ModelResult<()> {
        let Some(rdn) = self.dn.rdn() else {
            return Err(ModelError::EmptyDn);
        };
        for (a, v) in rdn.pairs() {
            let found = self
                .attrs
                .iter()
                .any(|(ea, ev)| ea == a && ev.canonical() == v.canonical());
            if !found {
                return Err(ModelError::RdnNotInValues {
                    pair: format!("{a}={v}"),
                });
            }
        }
        Ok(())
    }

    /// Approximate in-memory/encoded size; used to pick blocking factors.
    pub fn approx_size(&self) -> usize {
        self.encoded_len()
    }
}

/// Builder for [`Entry`].
///
/// `build()` sorts and dedups the pair multiset and **auto-inserts the RDN
/// pairs** if absent, so the rdn ⊆ val invariant holds by construction
/// (the figures' entries always spell these out; the builder saves callers
/// the repetition).
#[derive(Debug, Clone)]
pub struct EntryBuilder {
    dn: Dn,
    attrs: Vec<(AttrName, Value)>,
}

impl EntryBuilder {
    /// Add one `(attribute, value)` pair.
    pub fn attr(mut self, name: impl Into<AttrName>, value: impl Into<Value>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Add several values for one attribute.
    pub fn attr_values<I, V>(mut self, name: impl Into<AttrName>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let name = name.into();
        for v in values {
            self.attrs.push((name.clone(), v.into()));
        }
        self
    }

    /// Declare membership in `class` — adds an `objectClass` value.
    pub fn class(self, class: impl Into<ClassName>) -> Self {
        let class = class.into();
        self.attr(OBJECT_CLASS, class.as_str())
    }

    /// Finish the entry.
    pub fn build(self) -> ModelResult<Entry> {
        let EntryBuilder { dn, mut attrs } = self;
        if dn.is_root() {
            return Err(ModelError::EmptyDn);
        }
        // Auto-insert missing rdn pairs.
        let rdn = dn.rdn().expect("non-root dn has an rdn").clone();
        for (a, v) in rdn.pairs() {
            let present = attrs
                .iter()
                .any(|(ea, ev)| ea == a && ev.canonical() == v.canonical());
            if !present {
                attrs.push((a.clone(), v.clone()));
            }
        }
        attrs.sort_by(|x, y| {
            (x.0.canonical(), x.1.canonical()).cmp(&(y.0.canonical(), y.1.canonical()))
        });
        attrs.dedup_by(|x, y| x.0 == y.0 && x.1 == y.1);
        Ok(Entry { id: 0, dn, attrs })
    }
}

/// On-page encoding: id, DN rendering, then tagged pairs. DN-valued
/// attributes round-trip through the DN rendering (canonical equality is
/// preserved; see `Dn` docs).
impl Record for Entry {
    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.id);
        codec::put_str(out, &self.dn.to_string());
        codec::put_u32(out, self.attrs.len() as u32);
        for (a, v) in &self.attrs {
            codec::put_str(out, a.as_str());
            match v {
                Value::Str(s) => {
                    out.push(0);
                    codec::put_str(out, s);
                }
                Value::Int(i) => {
                    out.push(1);
                    codec::put_i64(out, *i);
                }
                Value::Dn(d) => {
                    out.push(2);
                    codec::put_str(out, &d.to_string());
                }
            }
        }
    }

    fn decode(bytes: &[u8]) -> PagerResult<Self> {
        let mut r = codec::Reader::new(bytes);
        let id = r.get_u64()?;
        let dn_str = r.get_str()?.to_string();
        let dn = Dn::parse(&dn_str).map_err(|e| PagerError::CorruptRecord {
            detail: format!("bad DN in entry record: {e}"),
        })?;
        let n = r.get_u32()? as usize;
        let mut attrs = Vec::with_capacity(n);
        for _ in 0..n {
            let a = AttrName::new(r.get_str()?);
            let v = match r.get_u8()? {
                0 => Value::Str(r.get_str()?.to_string()),
                1 => Value::Int(r.get_i64()?),
                2 => {
                    let s = r.get_str()?;
                    Value::Dn(Dn::parse(s).map_err(|e| PagerError::CorruptRecord {
                        detail: format!("bad DN value: {e}"),
                    })?)
                }
                t => {
                    return Err(PagerError::CorruptRecord {
                        detail: format!("unknown value tag {t}"),
                    })
                }
            };
            attrs.push((a, v));
        }
        r.finish()?;
        Ok(Entry { id, dn, attrs })
    }

    // ---- v2 (compressed) page hooks -------------------------------------
    //
    // The frozen `encode`/`decode` pair above stays the wire format (WAL
    // records, network frames). On v2 pages the entry is split: the
    // reverse-DN sort key becomes the page key (prefix-compressed against
    // its on-page predecessor) and the body is slimmed — varint id, the
    // DN only when not reconstructible from the key, and attribute names
    // as fixed-width interned ids.
    //
    // The id width is deliberately fixed at 4 bytes: parallel workers may
    // intern names in different orders, and only encoded *sizes* must be
    // identical across parallelism degrees for the page-I/O ledger to
    // stay degree-independent.

    fn page_key(&self) -> Option<Vec<u8>> {
        Some(self.dn.sort_key().as_bytes().to_vec())
    }

    fn page_key_of_encoded(bytes: &[u8]) -> PagerResult<Option<Vec<u8>>> {
        let mut r = codec::Reader::new(bytes);
        let _id = r.get_u64()?;
        let dn_str = r.get_str()?;
        let dn = Dn::parse(dn_str).map_err(|e| PagerError::CorruptRecord {
            detail: format!("bad DN in entry record: {e}"),
        })?;
        Ok(Some(dn.sort_key().as_bytes().to_vec()))
    }

    fn encode_body(&self, out: &mut Vec<u8>, ctx: &PageCtx) {
        codec::put_varint(&mut *out, self.id);
        let display = self.dn.to_string();
        let reconstructible = dn_from_page_key(self.dn.sort_key().as_bytes())
            .is_some_and(|d| d == self.dn && d.to_string() == display);
        if reconstructible {
            out.push(0);
        } else {
            out.push(1);
            codec::put_vstr(&mut *out, &display);
        }
        codec::put_varint(&mut *out, self.attrs.len() as u64);
        for (a, v) in &self.attrs {
            out.extend_from_slice(&ctx.interner.intern(a.as_str()).to_le_bytes());
            match v {
                Value::Str(s) => {
                    out.push(0);
                    codec::put_vstr(&mut *out, s);
                }
                Value::Int(i) => {
                    out.push(1);
                    codec::put_i64(out, *i);
                }
                Value::Dn(d) => {
                    out.push(2);
                    codec::put_vstr(&mut *out, &d.to_string());
                }
            }
        }
    }

    fn decode_body(key: &[u8], body: &[u8], ctx: &PageCtx) -> PagerResult<Self> {
        let mut r = codec::Reader::new(body);
        let id = r.get_varint()?;
        let dn = match r.get_u8()? {
            0 => dn_from_page_key(key).ok_or_else(|| PagerError::CorruptRecord {
                detail: "DN not reconstructible from page key".into(),
            })?,
            1 => {
                let s = r.get_vstr()?;
                Dn::parse(s).map_err(|e| PagerError::CorruptRecord {
                    detail: format!("bad DN in entry record: {e}"),
                })?
            }
            t => {
                return Err(PagerError::CorruptRecord {
                    detail: format!("unknown DN flag {t}"),
                })
            }
        };
        let n = r.get_varint()? as usize;
        if n > body.len() {
            return Err(PagerError::CorruptRecord {
                detail: format!("implausible attribute count {n}"),
            });
        }
        let mut attrs = Vec::with_capacity(n);
        for _ in 0..n {
            let attr_id = r.get_u32()?;
            let name = ctx
                .interner
                .resolve(attr_id)
                .ok_or_else(|| PagerError::CorruptRecord {
                    detail: format!("unknown interned attribute id {attr_id}"),
                })?;
            let v = match r.get_u8()? {
                0 => Value::Str(r.get_vstr()?.to_string()),
                1 => Value::Int(r.get_i64()?),
                2 => {
                    let s = r.get_vstr()?;
                    Value::Dn(Dn::parse(s).map_err(|e| PagerError::CorruptRecord {
                        detail: format!("bad DN value: {e}"),
                    })?)
                }
                t => {
                    return Err(PagerError::CorruptRecord {
                        detail: format!("unknown value tag {t}"),
                    })
                }
            };
            attrs.push((AttrName::new(name), v));
        }
        r.finish()?;
        Ok(Entry { id, dn, attrs })
    }
}

impl std::fmt::Display for Entry {
    /// Figure-style rendering: the DN, then one `attr: value` line per pair.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "dn: {}", self.dn)?;
        for (a, v) in &self.attrs {
            writeln!(f, "  {a}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Entry {
        Entry::builder(Dn::parse("uid=jag, ou=userProfiles, dc=att, dc=com").unwrap())
            .class("inetOrgPerson")
            .class("TOPSSubscriber")
            .attr("commonName", "h jagadish")
            .attr("surName", "jagadish")
            .attr("priority", 2i64)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_auto_inserts_rdn_pair_and_sorts() {
        let e = sample();
        assert!(e.has_attr(&"uid".into()));
        assert_eq!(e.first_str(&"uid".into()), Some("jag"));
        e.check_rdn_in_values().unwrap();
        let pairs = e.pairs();
        for w in pairs.windows(2) {
            assert!(
                (w[0].0.canonical(), w[0].1.canonical())
                    <= (w[1].0.canonical(), w[1].1.canonical())
            );
        }
    }

    #[test]
    fn classes_come_from_object_class_values() {
        let e = sample();
        let classes = e.classes();
        assert_eq!(classes.len(), 2);
        assert!(e.has_class(&"TOPSSubscriber".into()));
        assert!(e.has_class(&"inetorgperson".into()));
        assert!(!e.has_class(&"router".into()));
    }

    #[test]
    fn multivalued_attributes() {
        let e = Entry::builder(Dn::parse("cn=p, dc=com").unwrap())
            .class("policy")
            .attr_values("PVDayOfWeek", [6i64, 7i64])
            .build()
            .unwrap();
        let days: Vec<i64> = e
            .values(&"pvdayofweek".into())
            .filter_map(|v| v.as_int())
            .collect();
        assert_eq!(days, vec![6, 7]);
    }

    #[test]
    fn duplicate_pairs_collapse() {
        let e = Entry::builder(Dn::parse("cn=p, dc=com").unwrap())
            .class("c")
            .attr("x", "1")
            .attr("x", "1")
            .build()
            .unwrap();
        assert_eq!(e.values(&"x".into()).count(), 1);
    }

    #[test]
    fn record_roundtrip() {
        let mut e = sample();
        e.set_id(17);
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let back = Entry::decode(&buf).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.id(), 17);
    }

    #[test]
    fn record_roundtrip_with_dn_value() {
        let target = Dn::parse("DSActionName=denyAll, ou=SLADSAction, dc=com").unwrap();
        let e = Entry::builder(Dn::parse("SLAPolicyName=dso, dc=com").unwrap())
            .class("SLAPolicyRules")
            .attr("SLADSActRef", target.clone())
            .build()
            .unwrap();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let back = Entry::decode(&buf).unwrap();
        assert_eq!(back.first_dn(&"sladsactref".into()), Some(&target));
    }

    #[test]
    fn root_dn_entry_rejected() {
        assert!(matches!(
            Entry::builder(Dn::root()).class("c").build(),
            Err(ModelError::EmptyDn)
        ));
    }

    #[test]
    fn validate_against_schema() {
        use crate::value::TypeName;
        let schema = Schema::builder()
            .attr("uid", TypeName::Str)
            .attr("ou", TypeName::Str)
            .attr("dc", TypeName::Str)
            .attr("commonName", TypeName::Str)
            .attr("surName", TypeName::Str)
            .attr("priority", TypeName::Int)
            .class("inetOrgPerson", ["uid", "commonName", "surName"])
            .class("TOPSSubscriber", ["uid", "priority"])
            .build()
            .unwrap();
        sample().validate(&schema).unwrap();

        // Attribute allowed by neither class.
        let bad = Entry::builder(Dn::parse("uid=x, dc=com").unwrap())
            .class("inetOrgPerson")
            .attr("priority", 1i64)
            .build()
            .unwrap();
        assert!(matches!(
            bad.validate(&schema),
            Err(ModelError::AttributeNotAllowed { .. })
        ));

        // Wrong type.
        let bad = Entry::builder(Dn::parse("uid=x, dc=com").unwrap())
            .class("TOPSSubscriber")
            .attr("priority", "high")
            .build()
            .unwrap();
        assert!(matches!(
            bad.validate(&schema),
            Err(ModelError::TypeMismatch { .. })
        ));

        // Unknown class.
        let bad = Entry::builder(Dn::parse("uid=x, dc=com").unwrap())
            .class("ghost")
            .build()
            .unwrap();
        assert!(matches!(
            bad.validate(&schema),
            Err(ModelError::UnknownClass { .. })
        ));

        // No classes at all.
        let bad = Entry::builder(Dn::parse("uid=x, dc=com").unwrap())
            .build()
            .unwrap();
        assert!(matches!(bad.validate(&schema), Err(ModelError::NoClasses)));
    }

    #[test]
    fn display_is_figure_style() {
        let s = sample().to_string();
        assert!(s.starts_with("dn: uid=jag"));
        assert!(s.contains("surName: jagadish"));
    }

    #[test]
    fn v2_body_roundtrips_through_page_key() {
        use netdir_pager::Interner;
        let interner = Interner::new();
        let ctx = PageCtx {
            interner: &interner,
        };
        let mut e = sample();
        e.set_id(99);
        let key = e.page_key().unwrap();
        assert_eq!(key, e.dn().sort_key().as_bytes());
        let mut body = Vec::new();
        e.encode_body(&mut body, &ctx);
        let back = Entry::decode_body(&key, &body, &ctx).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.id(), 99);
        assert_eq!(back.dn().to_string(), e.dn().to_string());
        // The slim body beats the full v1 image.
        assert!(body.len() < e.encoded_len());
    }

    #[test]
    fn v2_body_keeps_non_canonical_dn_rendering() {
        // Mixed-case DN: the sort key is case-folded, so the display
        // cannot be rebuilt from it — the body must carry it explicitly
        // and the rendering must survive byte-for-byte.
        use netdir_pager::Interner;
        let interner = Interner::new();
        let ctx = PageCtx {
            interner: &interner,
        };
        let e = Entry::builder(Dn::parse("uid=Jag, dc=ATT, dc=com").unwrap())
            .class("person")
            .build()
            .unwrap();
        let key = e.page_key().unwrap();
        let mut body = Vec::new();
        e.encode_body(&mut body, &ctx);
        let back = Entry::decode_body(&key, &body, &ctx).unwrap();
        assert_eq!(back.dn().to_string(), "uid=Jag, dc=ATT, dc=com");
        assert_eq!(back, e);
    }

    #[test]
    fn v2_body_roundtrips_dn_valued_attributes() {
        use netdir_pager::Interner;
        let interner = Interner::new();
        let ctx = PageCtx {
            interner: &interner,
        };
        let target = Dn::parse("DSActionName=denyAll, ou=SLADSAction, dc=com").unwrap();
        let e = Entry::builder(Dn::parse("SLAPolicyName=dso, dc=com").unwrap())
            .class("SLAPolicyRules")
            .attr("SLADSActRef", target.clone())
            .attr("priority", 3i64)
            .build()
            .unwrap();
        let key = e.page_key().unwrap();
        let mut body = Vec::new();
        e.encode_body(&mut body, &ctx);
        let back = Entry::decode_body(&key, &body, &ctx).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.first_dn(&"sladsactref".into()), Some(&target));
    }

    #[test]
    fn v1_raw_key_extraction_matches_sort_key() {
        let mut e = sample();
        e.set_id(5);
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let key = Entry::page_key_of_encoded(&buf).unwrap().unwrap();
        assert_eq!(key, e.dn().sort_key().as_bytes());
    }
}
