//! Attribute values and their types.
//!
//! The paper assumes a set `T` of type names including `string` and `int`,
//! plus the complex type `distinguishedName` whose values are DNs — this is
//! what lets entries embed references to other entries (Section 7).

use crate::dn::Dn;
use std::fmt;

/// The type names in `T` that the core model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TypeName {
    /// `string`.
    Str,
    /// `int`.
    Int,
    /// `distinguishedName` — values are DNs of (possibly other) entries.
    Dn,
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeName::Str => "string",
            TypeName::Int => "int",
            TypeName::Dn => "distinguishedName",
        })
    }
}

/// A value from `dom(T)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A string value.
    Str(String),
    /// An integer value.
    Int(i64),
    /// A DN value — an embedded reference to a directory entry.
    Dn(Dn),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Convenience constructor for DN values.
    pub fn dn(d: Dn) -> Value {
        Value::Dn(d)
    }

    /// The type this value belongs to.
    pub fn type_name(&self) -> TypeName {
        match self {
            Value::Str(_) => TypeName::Str,
            Value::Int(_) => TypeName::Int,
            Value::Dn(_) => TypeName::Dn,
        }
    }

    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an int value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The DN payload, if this is a DN value.
    pub fn as_dn(&self) -> Option<&Dn> {
        match self {
            Value::Dn(d) => Some(d),
            _ => None,
        }
    }

    /// Canonical rendering used inside RDN strings and sort keys.
    ///
    /// Strings are rendered case-folded (LDAP string matching is
    /// case-insensitive by default); ints in decimal; DNs in their
    /// canonical DN rendering.
    pub fn canonical(&self) -> String {
        match self {
            Value::Str(s) => s.to_ascii_lowercase(),
            Value::Int(i) => i.to_string(),
            Value::Dn(d) => d.canonical(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Dn(d) => write!(f, "{d}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<Dn> for Value {
    fn from(d: Dn) -> Self {
        Value::Dn(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::str("x").type_name(), TypeName::Str);
        assert_eq!(Value::int(3).type_name(), TypeName::Int);
        assert_eq!(TypeName::Dn.to_string(), "distinguishedName");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::int(-5).as_int(), Some(-5));
    }

    #[test]
    fn canonical_folds_strings() {
        assert_eq!(Value::str("JagADish").canonical(), "jagadish");
        assert_eq!(Value::int(42).canonical(), "42");
    }
}
