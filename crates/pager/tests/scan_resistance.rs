//! Scan-resistance under a mixed workload (seeded, deterministic).
//!
//! A whole-directory `sub`-scope scan runs concurrently with a
//! point-query loop over a small hot set. Under plain LRU every scan
//! burst larger than the frame budget flushes the hot set; under the
//! two-queue policy scan pages die in probation while the hot pages sit
//! in the protected queue. The pool's replacement decisions are pure
//! functions of the logical access sequence (a tick per fetch — no wall
//! clock), so with a fixed seed this test is bit-for-bit reproducible.

use netdir_pager::{PagedList, Pager, PageFormat, PoolConfig, ReplacementPolicy};

const FRAMES: usize = 32;
const PAGES: u64 = 256;
const SCAN_BURST: u64 = 40; // > FRAMES: each burst can flush an LRU pool
const ROUNDS: usize = 6;
const HOT: u64 = 8;

/// Minimal deterministic PRNG (xorshift*) — fixed seed, no std RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Fraction of point queries that hit the buffer pool under `policy`.
fn point_hit_rate(policy: ReplacementPolicy) -> f64 {
    let pager = Pager::custom(
        256,
        PoolConfig {
            frames: FRAMES,
            policy,
        },
        PageFormat::V1,
    );
    let per_page = pager.blocking_factor(8) as u64;
    let list = PagedList::from_iter(&pager, 0..PAGES * per_page).unwrap();
    assert_eq!(list.num_pages(), PAGES);
    pager.flush().unwrap();
    pager.pool().clear_cache().unwrap();

    // Warm the hot set: two touches promote a page out of probation.
    for _ in 0..2 {
        for h in 0..HOT {
            list.get(h * per_page).unwrap();
        }
    }

    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut queries = 0u64;
    let mut hits = 0u64;
    let mut scan_pos = HOT; // scan the cold tail, wrapping
    for _ in 0..ROUNDS {
        // One scan burst: SCAN_BURST distinct cold pages, one fetch each.
        for _ in 0..SCAN_BURST {
            list.get(scan_pos * per_page).unwrap();
            scan_pos += 1;
            if scan_pos >= PAGES {
                scan_pos = HOT;
            }
        }
        // Interleaved point-query loop over the hot set (seeded order).
        for _ in 0..2 * HOT {
            let h = rng.next() % HOT;
            let before = pager.pool().metrics().hits;
            list.get(h * per_page).unwrap();
            queries += 1;
            hits += pager.pool().metrics().hits - before;
        }
    }
    hits as f64 / queries as f64
}

#[test]
fn two_queue_point_queries_survive_concurrent_scan() {
    let two_q = point_hit_rate(ReplacementPolicy::TwoQ);
    let lru = point_hit_rate(ReplacementPolicy::Lru);
    // Pinned floor: the hot set must effectively always hit under 2Q.
    assert!(
        two_q >= 0.9,
        "two-queue point hit rate degraded under scan: {two_q:.3}"
    );
    // And the win over LRU must be structural, not noise: each burst
    // floods the LRU pool, so every hot page re-faults each round (only
    // repeat touches within a round hit, ~half the queries).
    assert!(
        lru <= 0.6,
        "LRU baseline unexpectedly scan-resistant: {lru:.3}"
    );
    assert!(
        two_q - lru >= 0.25,
        "two-queue win over LRU too small: {two_q:.3} vs {lru:.3}"
    );
}

#[test]
fn scan_resistance_is_deterministic() {
    // Same seed, same access sequence, same policy decisions: the metric
    // is exactly reproducible run-to-run (logical clock, no wall time).
    let a = point_hit_rate(ReplacementPolicy::TwoQ);
    let b = point_hit_rate(ReplacementPolicy::TwoQ);
    assert_eq!(a.to_bits(), b.to_bits());
}
