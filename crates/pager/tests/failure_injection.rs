//! Failure injection: the external-memory layer surfaces device errors
//! and budget violations as `Err`, never panics, and the structures stay
//! usable where recovery is possible.

use netdir_pager::disk::{Disk, MemDisk, PageId};
use netdir_pager::{
    external_sort, BufferPool, IoStats, PagedList, Pager, PagerError, PoolConfig,
};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A disk that starts failing reads after a budget of successful ones.
struct FlakyDisk {
    inner: MemDisk,
    reads_left: Arc<AtomicU64>,
}

impl Disk for FlakyDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
    fn allocate(&self) -> PageId {
        self.inner.allocate()
    }
    fn read_page(&self, id: PageId) -> Result<Bytes, PagerError> {
        if self.reads_left.fetch_sub(1, Ordering::Relaxed) == 0 {
            self.reads_left.store(0, Ordering::Relaxed);
            return Err(PagerError::CorruptPage {
                page: id,
                detail: "injected read failure".into(),
            });
        }
        self.inner.read_page(id)
    }
    fn write_page(&self, id: PageId, data: Bytes) -> Result<(), PagerError> {
        self.inner.write_page(id, data)
    }
    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[test]
fn reads_failing_mid_scan_surface_as_errors() {
    let stats = IoStats::new();
    let reads_left = Arc::new(AtomicU64::new(u64::MAX));
    let disk = FlakyDisk {
        inner: MemDisk::new(256, stats.clone()),
        reads_left: reads_left.clone(),
    };
    let pool = BufferPool::new(Box::new(disk), PoolConfig::new(4), stats);
    // Assemble a pager-like setup through the public pool: write a list
    // via a Pager is simpler — use a normal pager to build, then a flaky
    // one cannot share pages. Instead: drive the pool directly.
    let page = pool.allocate();
    pool.fetch_zeroed(page).unwrap().with_mut(|d| d[4] = 1);
    pool.flush_all().unwrap();
    pool.clear_cache().unwrap();
    // Exhaust the read budget.
    reads_left.store(0, Ordering::Relaxed);
    let err = pool.fetch(page).unwrap_err();
    assert!(matches!(err, PagerError::CorruptPage { .. }));
    // Recovery: replenish the budget and the page is readable again.
    reads_left.store(10, Ordering::Relaxed);
    assert_eq!(pool.fetch(page).unwrap().with(|d| d[4]), 1);
}

#[test]
fn pool_exhaustion_is_reported_not_fatal() {
    let pager = Pager::new(256, 2);
    let pages: Vec<_> = (0..3).map(|_| pager.pool().allocate()).collect();
    let g0 = pager.pool().fetch_zeroed(pages[0]).unwrap();
    let g1 = pager.pool().fetch_zeroed(pages[1]).unwrap();
    assert!(matches!(
        pager.pool().fetch(pages[2]),
        Err(PagerError::PoolExhausted { frames: 2 })
    ));
    // Releasing a pin restores service.
    drop(g0);
    assert!(pager.pool().fetch(pages[2]).is_ok());
    drop(g1);
}

#[test]
fn corrupt_page_detected_on_decode() {
    let pager = Pager::new(256, 4);
    let list = PagedList::from_iter(&pager, 0u64..50).unwrap();
    pager.flush().unwrap();
    // Scribble over the first data page's record-count header.
    let guard = pager.pool().fetch(0).unwrap();
    guard.with_mut(|d| {
        d[0] = 0xFF;
        d[1] = 0xFF;
        d[2] = 0xFF;
        d[3] = 0x7F;
    });
    drop(guard);
    let result: Result<Vec<u64>, _> = list.iter().collect();
    assert!(result.is_err(), "corrupt header must not decode silently");
}

#[test]
fn record_too_large_rejected_before_any_write() {
    let pager = Pager::new(256, 4);
    let before = pager.io();
    let huge = vec![0u8; 1024];
    let err = PagedList::from_iter(&pager, [huge]).unwrap_err();
    assert!(matches!(err, PagerError::RecordTooLarge { .. }));
    assert_eq!(pager.io().since(before).writes, 0);
}

#[test]
fn external_sort_propagates_storage_errors() {
    // A sort over a list whose pages are gone (fresh pager, dangling
    // list) cannot happen through the public API, so instead check the
    // graceful path: sorting under an extremely tight pool still works
    // (spills) rather than erroring.
    let pager = Pager::new(256, 2);
    let list = PagedList::from_iter(&pager, (0..500u64).rev()).unwrap();
    let sorted = external_sort(&pager, &list).unwrap();
    let v = sorted.to_vec().unwrap();
    assert_eq!(v.first(), Some(&0));
    assert_eq!(v.last(), Some(&499));
    assert!(v.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn zero_frame_pool_is_rejected_loudly() {
    let result = std::panic::catch_unwind(|| Pager::new(256, 1));
    assert!(result.is_err(), "a 1-frame pool cannot make progress");
}
