//! Concurrency hammer for the buffer pool (ISSUE 5 satellite).
//!
//! N scoped threads pin, unpin, allocate and sort against one shared
//! `Pager` while the test asserts the two invariants parallel evaluation
//! leans on: the frame budget is never exceeded, and the shared I/O
//! ledger's delta equals the sum of the per-thread `IoShard` deltas.

use netdir_pager::{
    external_sort_by, ExtSortConfig, IoShard, IoSnapshot, PagedList, Pager,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const THREADS: usize = 8;

fn add(a: IoSnapshot, b: IoSnapshot) -> IoSnapshot {
    IoSnapshot {
        reads: a.reads + b.reads,
        writes: a.writes + b.writes,
        allocs: a.allocs + b.allocs,
    }
}

#[test]
fn hammer_preserves_frame_budget_and_ledger_exactness() {
    let pager = Pager::new(256, 16);
    let frames = pager.pool().capacity();

    // A shared read-mostly list, bigger than the pool.
    let shared: PagedList<u64> = PagedList::from_iter(&pager, 0..4000u64).unwrap();
    pager.flush().unwrap();
    pager.pool().clear_cache().unwrap();
    pager.reset_io();

    let stop = AtomicBool::new(false);
    let shards: Vec<IoSnapshot> = std::thread::scope(|scope| {
        // A watchdog samples the residency invariant while the workers run.
        let watchdog = scope.spawn(|| {
            let mut max_seen = 0;
            while !stop.load(Ordering::Acquire) {
                max_seen = max_seen.max(pager.pool().resident());
                std::thread::sleep(Duration::from_micros(50));
            }
            max_seen
        });

        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let pager = &pager;
                let shared = &shared;
                scope.spawn(move || {
                    let shard = IoShard::new();
                    let _guard = shard.install();
                    for round in 0..3 {
                        // Pin/unpin traffic: scan the shared list (each
                        // page read at most once per scan, then churned
                        // by everyone else's evictions).
                        let sum: u64 = shared.iter().map(|r| r.unwrap()).sum();
                        assert_eq!(sum, 4000 * 3999 / 2);

                        // Alloc + sort traffic: a private list, sorted
                        // under the shared frame budget.
                        let seed = (t * 31 + round) as u64;
                        let mine: Vec<u64> =
                            (0..600).map(|i| (i * 2654435761 + seed * 97) % 10_000).collect();
                        let list = PagedList::from_iter(pager, mine.clone()).unwrap();
                        let sorted =
                            external_sort_by(pager, &list, ExtSortConfig { fan_in: 3 }, |a, b| {
                                a.cmp(b)
                            })
                            .unwrap();
                        let mut expect = mine;
                        expect.sort();
                        assert_eq!(sorted.to_vec().unwrap(), expect);
                    }
                    shard.snapshot()
                })
            })
            .collect();

        let shards: Vec<IoSnapshot> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        stop.store(true, Ordering::Release);
        let max_resident = watchdog.join().unwrap();
        assert!(
            max_resident <= frames,
            "pool held {max_resident} resident frames on a {frames}-frame budget"
        );
        shards
    });

    // Every worker I/O event was mirrored into exactly one shard, and the
    // main thread did no I/O inside the measurement window — so the shard
    // sum must reproduce the shared ledger's delta component for component.
    let shard_sum = shards.into_iter().fold(IoSnapshot::default(), add);
    assert_eq!(
        shard_sum,
        pager.io(),
        "per-thread sub-ledgers disagree with the shared ledger"
    );
    assert!(shard_sum.reads > 0 && shard_sum.allocs > 0);

    // After the storm: no pins left behind, the pool still works.
    assert!(pager.pool().resident() <= frames);
    pager.pool().clear_cache().unwrap();
    assert_eq!(pager.pool().resident(), 0, "leaked pins prevented eviction");
}

#[test]
fn racing_fetches_of_one_cold_page_cost_one_read() {
    // The loading-frame design must dedupe concurrent misses: whoever
    // publishes the frame does the single disk read; everyone else blocks
    // on the data lock. A latency disk widens the race window enough that
    // a double-read bug would be caught essentially every run.
    let pager = Pager::with_latency(
        256,
        8,
        Duration::from_millis(2),
        Duration::ZERO,
    );
    let list: PagedList<u64> = PagedList::from_iter(&pager, 0..20u64).unwrap();
    assert_eq!(list.num_pages(), 1);
    pager.flush().unwrap();

    for _ in 0..10 {
        pager.pool().clear_cache().unwrap();
        pager.reset_io();
        std::thread::scope(|scope| {
            for _ in 0..6 {
                scope.spawn(|| {
                    let got: Vec<u64> = list.iter().map(|r| r.unwrap()).collect();
                    assert_eq!(got, (0..20).collect::<Vec<_>>());
                });
            }
        });
        assert_eq!(pager.io().reads, 1, "concurrent misses must share one read");
    }
}
