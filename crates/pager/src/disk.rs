//! Page-addressed storage devices.
//!
//! The device is deliberately dumb: it stores and retrieves whole pages by
//! [`PageId`] and charges one I/O per transfer. All cleverness (caching,
//! pinning, eviction) lives in the [`crate::pool::BufferPool`] above it.

use crate::error::{PagerError, PagerResult};
use crate::stats::IoStats;
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;

/// Identifier of a page on a device. Dense, starting at 0.
pub type PageId = u64;

/// Bytes reserved at the start of every page for the page header
/// (currently: a 4-byte record count maintained by the record layer).
pub const PAGE_HEADER_BYTES: usize = 4;

/// A page-addressed storage device with I/O accounting.
///
/// Implementations must charge exactly one read per [`Disk::read_page`] and
/// one write per [`Disk::write_page`] to their [`IoStats`] ledger — the
/// experiments depend on this being exact.
pub trait Disk: Send + Sync {
    /// Page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of allocated pages.
    fn num_pages(&self) -> u64;

    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&self) -> PageId;

    /// Read a whole page. Charges one read I/O.
    fn read_page(&self, id: PageId) -> PagerResult<Bytes>;

    /// Write a whole page. Charges one write I/O.
    ///
    /// `data` must be exactly `page_size` bytes.
    fn write_page(&self, id: PageId, data: Bytes) -> PagerResult<()>;

    /// The ledger this device charges to.
    fn stats(&self) -> &IoStats;
}

/// An in-memory page device.
///
/// The paper's cost model counts page transfers, not seek times, so an
/// in-memory "disk" with exact transfer counting measures precisely the
/// quantity the theorems bound (see DESIGN.md §5, substitutions).
pub struct MemDisk {
    page_size: usize,
    pages: Mutex<Vec<Bytes>>,
    stats: IoStats,
}

impl MemDisk {
    /// Create an empty device with the given page size, charging to `stats`.
    pub fn new(page_size: usize, stats: IoStats) -> Self {
        assert!(
            page_size > PAGE_HEADER_BYTES + 8,
            "page size {page_size} too small to hold any record"
        );
        MemDisk {
            page_size,
            pages: Mutex::new(Vec::new()),
            stats,
        }
    }
}

impl Disk for MemDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        let id = pages.len() as PageId;
        pages.push(BytesMut::zeroed(self.page_size).freeze());
        self.stats.record_alloc();
        id
    }

    fn read_page(&self, id: PageId) -> PagerResult<Bytes> {
        let pages = self.pages.lock();
        let page = pages
            .get(id as usize)
            .ok_or(PagerError::PageOutOfBounds {
                page: id,
                pages: pages.len() as u64,
            })?
            .clone();
        self.stats.record_read();
        Ok(page)
    }

    fn write_page(&self, id: PageId, data: Bytes) -> PagerResult<()> {
        if data.len() != self.page_size {
            return Err(PagerError::CorruptPage {
                page: id,
                detail: format!(
                    "write of {} bytes to a {}-byte page",
                    data.len(),
                    self.page_size
                ),
            });
        }
        let mut pages = self.pages.lock();
        let len = pages.len() as u64;
        let slot = pages
            .get_mut(id as usize)
            .ok_or(PagerError::PageOutOfBounds { page: id, pages: len })?;
        *slot = data;
        self.stats.record_write();
        Ok(())
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

/// A decorator that charges wall-clock time per transfer on top of an
/// inner device.
///
/// The paper's cost model counts page transfers; `LatencyDisk` gives each
/// transfer a (simulated) seek-and-transfer *duration* as well, so that
/// overlap of independent I/Os — the thing parallel evaluation buys — shows
/// up as measured wall-clock speedup even where transfer *counts* are
/// identical. I/O accounting is delegated unchanged to the inner device.
pub struct LatencyDisk {
    inner: Box<dyn Disk>,
    read_delay: std::time::Duration,
    write_delay: std::time::Duration,
}

impl LatencyDisk {
    /// Wrap `inner`, sleeping `read_delay` per page read and `write_delay`
    /// per page write. Allocations stay free, as in the paper's model.
    pub fn new(
        inner: Box<dyn Disk>,
        read_delay: std::time::Duration,
        write_delay: std::time::Duration,
    ) -> Self {
        LatencyDisk {
            inner,
            read_delay,
            write_delay,
        }
    }
}

impl Disk for LatencyDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn allocate(&self) -> PageId {
        self.inner.allocate()
    }

    fn read_page(&self, id: PageId) -> PagerResult<Bytes> {
        if !self.read_delay.is_zero() {
            std::thread::sleep(self.read_delay);
        }
        self.inner.read_page(id)
    }

    fn write_page(&self, id: PageId, data: Bytes) -> PagerResult<()> {
        if !self.write_delay.is_zero() {
            std::thread::sleep(self.write_delay);
        }
        self.inner.write_page(id, data)
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> MemDisk {
        MemDisk::new(128, IoStats::new())
    }

    #[test]
    fn latency_disk_delegates_and_charges_inner_ledger() {
        let stats = IoStats::new();
        let inner = MemDisk::new(128, stats.clone());
        let d = LatencyDisk::new(
            Box::new(inner),
            std::time::Duration::from_micros(50),
            std::time::Duration::ZERO,
        );
        let p = d.allocate();
        let t0 = std::time::Instant::now();
        d.read_page(p).unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_micros(50));
        d.write_page(p, BytesMut::zeroed(128).freeze()).unwrap();
        let snap = d.stats().snapshot();
        assert_eq!((snap.reads, snap.writes, snap.allocs), (1, 1, 1));
        assert_eq!(stats.snapshot(), snap);
    }

    #[test]
    fn allocate_read_write_roundtrip() {
        let d = disk();
        let p0 = d.allocate();
        let p1 = d.allocate();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(d.num_pages(), 2);

        let mut buf = BytesMut::zeroed(128);
        buf[0] = 0xAB;
        d.write_page(p1, buf.freeze()).unwrap();
        let back = d.read_page(p1).unwrap();
        assert_eq!(back[0], 0xAB);
        // fresh page is zeroed
        assert!(d.read_page(p0).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn io_is_charged_exactly() {
        let d = disk();
        let p = d.allocate();
        let snap0 = d.stats().snapshot();
        d.read_page(p).unwrap();
        d.read_page(p).unwrap();
        d.write_page(p, BytesMut::zeroed(128).freeze()).unwrap();
        let delta = d.stats().snapshot().since(snap0);
        assert_eq!((delta.reads, delta.writes), (2, 1));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let d = disk();
        assert!(matches!(
            d.read_page(7),
            Err(PagerError::PageOutOfBounds { page: 7, .. })
        ));
        assert!(d
            .write_page(7, BytesMut::zeroed(128).freeze())
            .is_err());
    }

    #[test]
    fn wrong_sized_write_is_rejected() {
        let d = disk();
        let p = d.allocate();
        let err = d.write_page(p, Bytes::from_static(b"short")).unwrap_err();
        assert!(matches!(err, PagerError::CorruptPage { .. }));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_page_size_panics() {
        MemDisk::new(8, IoStats::new());
    }
}
