//! Directory-wide string interning for attribute names.
//!
//! Sorted entries repeat the same handful of attribute names on every
//! record; the v2 page format stores a fixed-width 4-byte id instead of
//! a length-prefixed string. The table lives on the [`crate::Pager`]
//! (shared by every list written through it) and is pure in-memory
//! metadata — like the page tables, it is not charged to the I/O ledger.
//!
//! Ids are fixed-width `u32` on purpose: parallel workers may intern
//! names in different orders, so the *values* of ids are not
//! deterministic across runs — but page layouts, and therefore the
//! page-I/O ledger, depend only on encoded *sizes*, which a fixed-width
//! id keeps identical at every parallelism degree (the PR-5 discipline).

use parking_lot::RwLock;
use std::collections::HashMap;

#[derive(Default)]
struct Inner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

/// A concurrent append-only string-to-id table.
#[derive(Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Id of `name`, allocating the next id on first sight.
    pub fn intern(&self, name: &str) -> u32 {
        if let Some(&id) = self.inner.read().ids.get(name) {
            return id;
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.ids.get(name) {
            return id;
        }
        let id = inner.names.len() as u32;
        inner.names.push(name.to_string());
        inner.ids.insert(name.to_string(), id);
        id
    }

    /// The string behind `id`, if allocated.
    pub fn resolve(&self, id: u32) -> Option<String> {
        self.inner.read().names.get(id as usize).cloned()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_resolvable() {
        let t = Interner::new();
        let a = t.intern("objectClass");
        let b = t.intern("surName");
        assert_ne!(a, b);
        assert_eq!(t.intern("objectClass"), a);
        assert_eq!(t.resolve(a).as_deref(), Some("objectClass"));
        assert_eq!(t.resolve(b).as_deref(), Some("surName"));
        assert_eq!(t.resolve(99), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn concurrent_interning_agrees() {
        use std::sync::Arc;
        let t = Arc::new(Interner::new());
        let names: Vec<String> = (0..32).map(|i| format!("attr{i}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                let names = names.clone();
                std::thread::spawn(move || {
                    names.iter().map(|n| t.intern(n)).collect::<Vec<u32>>()
                })
            })
            .collect();
        let got: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread sees the same id per name, whatever the order.
        for ids in &got[1..] {
            assert_eq!(ids, &got[0]);
        }
        assert_eq!(t.len(), 32);
    }
}
