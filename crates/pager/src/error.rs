//! Error type for the external-memory substrate.

use std::fmt;

/// Result alias used throughout the pager crate.
pub type PagerResult<T> = Result<T, PagerError>;

/// Everything that can go wrong in the external-memory layer.
///
/// These are *environmental* failures (budget exhausted, corrupt page), not
/// logic errors; algorithms surface them instead of panicking so that
/// failure-injection tests can exercise recovery paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PagerError {
    /// A page id referred to a page that was never allocated.
    PageOutOfBounds { page: u64, pages: u64 },
    /// Every frame in the buffer pool is pinned; the requested fetch would
    /// exceed the constant-memory budget.
    PoolExhausted { frames: usize },
    /// A record was larger than the usable payload of a page.
    RecordTooLarge { record: usize, payload: usize },
    /// A page's contents failed to decode (corruption / wrong type).
    CorruptPage { page: u64, detail: String },
    /// A record failed to decode from its bytes.
    CorruptRecord { detail: String },
    /// The requested configuration is unusable (e.g. zero frames).
    BadConfig { detail: String },
}

impl fmt::Display for PagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagerError::PageOutOfBounds { page, pages } => {
                write!(f, "page {page} out of bounds (disk has {pages} pages)")
            }
            PagerError::PoolExhausted { frames } => {
                write!(
                    f,
                    "buffer pool exhausted: all {frames} frames pinned \
                     (constant-memory budget exceeded)"
                )
            }
            PagerError::RecordTooLarge { record, payload } => {
                write!(
                    f,
                    "record of {record} bytes exceeds page payload of {payload} bytes"
                )
            }
            PagerError::CorruptPage { page, detail } => {
                write!(f, "corrupt page {page}: {detail}")
            }
            PagerError::CorruptRecord { detail } => write!(f, "corrupt record: {detail}"),
            PagerError::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
        }
    }
}

impl std::error::Error for PagerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PagerError::PoolExhausted { frames: 4 };
        assert!(e.to_string().contains("4 frames"));
        let e = PagerError::RecordTooLarge {
            record: 9000,
            payload: 4088,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("4088"));
    }
}
