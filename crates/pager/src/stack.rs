//! A paged stack that spills to disk.
//!
//! The stack-based algorithms of Section 5.3 push and pop directory entries
//! as the merge of their input lists is scanned. The paper's I/O analysis
//! notes that "particular stack entries may be swapped out (and eventually
//! re-fetched) from the memory multiple times when the stack repeatedly
//! grows and shrinks", yet the total I/O stays linear because each record
//! crosses each page boundary direction at most... a bounded number of
//! times. [`PagedStack`] realizes exactly this: only the top page is hot;
//! colder pages live in the buffer pool or on disk.
//!
//! On-page format: the page header's 4 bytes hold the page's used payload
//! length. Records are stored as `[u32 len][bytes][u32 len]` — the trailing
//! length makes popping possible without any per-record memory index, so
//! the stack's memory footprint really is O(1) pages.

use crate::disk::{PageId, PAGE_HEADER_BYTES};
use crate::error::{PagerError, PagerResult};
use crate::record::Record;
use crate::Pager;
use std::marker::PhantomData;

const REC_OVERHEAD: usize = 8; // leading + trailing u32 length

/// LIFO stack of records with O(1)-pages memory footprint.
pub struct PagedStack<T> {
    pager: Pager,
    /// Page table of sealed (non-top) pages, coldest first.
    pages: Vec<PageId>,
    /// In-memory image of the top page's payload.
    top: Vec<u8>,
    len: u64,
    scratch: Vec<u8>,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Record> PagedStack<T> {
    /// An empty stack on `pager`.
    pub fn new(pager: &Pager) -> Self {
        PagedStack {
            pager: pager.clone(),
            pages: Vec::new(),
            top: Vec::new(),
            len: 0,
            scratch: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Number of records on the stack.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Push a record.
    pub fn push(&mut self, item: &T) -> PagerResult<()> {
        self.scratch.clear();
        item.encode(&mut self.scratch);
        let need = self.scratch.len() + REC_OVERHEAD;
        let payload = self.pager.payload_size();
        if need > payload {
            return Err(PagerError::RecordTooLarge {
                record: self.scratch.len(),
                payload: payload.saturating_sub(REC_OVERHEAD),
            });
        }
        if self.top.len() + need > payload {
            self.spill_top()?;
        }
        let len32 = (self.scratch.len() as u32).to_le_bytes();
        self.top.extend_from_slice(&len32);
        self.top.extend_from_slice(&self.scratch);
        self.top.extend_from_slice(&len32);
        self.len += 1;
        Ok(())
    }

    /// Pop the most recently pushed record, or `None` if empty.
    pub fn pop(&mut self) -> PagerResult<Option<T>> {
        if self.top.is_empty()
            && !self.unspill_top()? {
                return Ok(None);
            }
        let end = self.top.len();
        let rec_len =
            u32::from_le_bytes(self.top[end - 4..end].try_into().unwrap()) as usize;
        let body_start = end - 4 - rec_len;
        let item = T::decode(&self.top[body_start..end - 4])?;
        self.top.truncate(body_start - 4);
        self.len -= 1;
        Ok(Some(item))
    }

    /// Decode (but do not remove) the top record.
    pub fn peek(&mut self) -> PagerResult<Option<T>> {
        if self.top.is_empty()
            && !self.unspill_top()? {
                return Ok(None);
            }
        let end = self.top.len();
        let rec_len =
            u32::from_le_bytes(self.top[end - 4..end].try_into().unwrap()) as usize;
        let body_start = end - 4 - rec_len;
        Ok(Some(T::decode(&self.top[body_start..end - 4])?))
    }

    /// Replace the top record in place (common in the Figure 2/4/5
    /// algorithms, which increment counters on the entry at the top).
    pub fn replace_top(&mut self, item: &T) -> PagerResult<()> {
        if self.pop()?.is_none() {
            return Err(PagerError::CorruptRecord {
                detail: "replace_top on empty stack".into(),
            });
        }
        self.push(item)
    }

    fn spill_top(&mut self) -> PagerResult<()> {
        let page = self.pager.pool().allocate();
        let guard = self.pager.pool().fetch_zeroed(page)?;
        guard.with_mut(|data| {
            data[..4].copy_from_slice(&(self.top.len() as u32).to_le_bytes());
            data[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + self.top.len()]
                .copy_from_slice(&self.top);
        });
        drop(guard);
        self.pages.push(page);
        self.top.clear();
        Ok(())
    }

    fn unspill_top(&mut self) -> PagerResult<bool> {
        let Some(page) = self.pages.pop() else {
            return Ok(false);
        };
        let guard = self.pager.pool().fetch(page)?;
        guard.with(|data| {
            let used = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
            self.top.clear();
            self.top
                .extend_from_slice(&data[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + used]);
        });
        Ok(true)
    }
}

impl<T> std::fmt::Debug for PagedStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedStack")
            .field("len", &self.len)
            .field("spilled_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny_pager;

    #[test]
    fn lifo_order() {
        let pager = tiny_pager();
        let mut s: PagedStack<u64> = PagedStack::new(&pager);
        for i in 0..10 {
            s.push(&i).unwrap();
        }
        for i in (0..10).rev() {
            assert_eq!(s.pop().unwrap(), Some(i));
        }
        assert_eq!(s.pop().unwrap(), None);
    }

    #[test]
    fn deep_stack_spills_and_recovers() {
        let pager = tiny_pager(); // 256-byte pages, 8 frames
        let mut s: PagedStack<(u64, String)> = PagedStack::new(&pager);
        let n = 2000u64;
        for i in 0..n {
            s.push(&(i, format!("payload-{i}"))).unwrap();
        }
        assert_eq!(s.len(), n);
        for i in (0..n).rev() {
            let (j, p) = s.pop().unwrap().unwrap();
            assert_eq!(j, i);
            assert_eq!(p, format!("payload-{i}"));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn grow_shrink_oscillation_is_linear_io() {
        // Repeatedly grow and shrink across a page boundary; the total I/O
        // must stay proportional to the number of operations, not blow up.
        let pager = tiny_pager();
        let mut s: PagedStack<u64> = PagedStack::new(&pager);
        // Fill to just past one page.
        let per_page = (pager.payload_size() / 16) as u64;
        for i in 0..per_page + 1 {
            s.push(&i).unwrap();
        }
        pager.reset_io();
        let ops = 10_000;
        for _ in 0..ops {
            let v = s.pop().unwrap().unwrap();
            s.push(&v).unwrap();
        }
        // The boundary record oscillates within the in-memory top image;
        // no I/O at all should occur (pop after unspill keeps the page image
        // in `top`).
        let io = pager.io();
        assert!(
            io.total() <= 4,
            "oscillation cost {} I/Os, expected O(1)",
            io.total()
        );
    }

    #[test]
    fn peek_and_replace_top() {
        let pager = tiny_pager();
        let mut s: PagedStack<u64> = PagedStack::new(&pager);
        s.push(&1).unwrap();
        s.push(&2).unwrap();
        assert_eq!(s.peek().unwrap(), Some(2));
        s.replace_top(&99).unwrap();
        assert_eq!(s.pop().unwrap(), Some(99));
        assert_eq!(s.pop().unwrap(), Some(1));
    }

    #[test]
    fn replace_top_on_empty_errors() {
        let pager = tiny_pager();
        let mut s: PagedStack<u64> = PagedStack::new(&pager);
        assert!(s.replace_top(&1).is_err());
    }

    #[test]
    fn variable_size_records() {
        let pager = tiny_pager();
        let mut s: PagedStack<String> = PagedStack::new(&pager);
        let items: Vec<String> = (0..300).map(|i| "y".repeat(i % 50)).collect();
        for it in &items {
            s.push(it).unwrap();
        }
        for it in items.iter().rev() {
            assert_eq!(s.pop().unwrap().as_ref(), Some(it));
        }
    }
}
