//! # netdir-pager — external-memory substrate
//!
//! The algorithms of *Querying Network Directories* (SIGMOD 1999) are
//! analysed in the classical external-memory model: data lives on disk in
//! pages of a fixed size, a page holds `B` directory entries (the *blocking
//! factor*), main memory holds only a constant number of pages, and cost is
//! the number of page transfers (I/Os).
//!
//! This crate is a faithful, instrumented implementation of that model:
//!
//! * [`disk`] — a page-addressed storage device ([`disk::MemDisk`]) that
//!   counts every page read and write in an [`stats::IoStats`] ledger.
//! * [`pool`] — a bounded [`pool::BufferPool`] of page frames with LRU
//!   eviction and pin counting. The frame budget is the paper's "constant
//!   size of main memory"; algorithms that respect it can be *proven* to,
//!   because exceeding the pin budget is a hard error.
//! * [`record`] — length-prefixed serialization of records onto pages.
//! * [`list`] — append-only paged sequential lists, the currency of the
//!   query-evaluation operators ("each of L1 and L2 are sorted lists of
//!   directory entries").
//! * [`stack`] — a paged stack whose cold pages spill to disk, exactly the
//!   structure whose "entries may be swapped out (and eventually re-fetched)
//!   from the memory multiple times when the stack repeatedly grows and
//!   shrinks" (Section 5.3).
//! * [`extsort`] — multiway external merge sort, used by the embedded-
//!   reference operators of L3 (Algorithm `ComputeERAggDV`, Figure 3) and
//!   responsible for their `N log N` I/O term (Theorem 7.1).
//!
//! All structures share one [`Pager`], so an experiment reads a single I/O
//! ledger for an entire operator tree.

pub mod chain;
pub mod disk;
pub mod error;
pub mod extsort;
pub mod intern;
pub mod list;
pub mod par;
pub mod pool;
pub mod record;
pub mod stack;
pub mod stats;

pub use chain::{Chain, ChainArena};
pub use disk::{Disk, LatencyDisk, MemDisk, PageId, PAGE_HEADER_BYTES};
pub use error::{PagerError, PagerResult};
pub use extsort::{external_sort, external_sort_by, external_sort_by_par, ExtSortConfig};
pub use intern::Interner;
pub use list::{ListReader, ListWriter, PagedList, RawListReader, RawRecord};
pub use par::{parallel_map, WorkerReport};
pub use pool::{
    BufferPool, FrameGuard, PoolConfig, PoolMetricsSnapshot, ReplacementPolicy,
};
pub use record::{PageCtx, Record};
pub use stack::PagedStack;
pub use stats::{IoShard, IoSnapshot, IoStats, ShardGuard};

use std::sync::Arc;

/// On-page record layout written by the list/chain writers.
///
/// v1 is the seed format: a `u32` record count then `[u32 len][bytes]`
/// records. v2 marks the header word with [`list::PAGE_V2_MARKER`] and
/// stores each record as a prefix-delta-compressed sort key plus a slim
/// body (attribute names interned through [`Interner`]). Readers always
/// dispatch on the per-page header, so lists of both formats coexist on
/// one device; the knob only selects what *writers* produce. v1 stays
/// the default so the seed's exact blocking-factor and I/O-count
/// contracts are untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageFormat {
    /// Length-prefixed records, no compression (the seed format).
    #[default]
    V1,
    /// Prefix-compressed keys + interned attribute names.
    V2,
}

/// Shared handle over a disk + buffer pool + I/O ledger.
///
/// A `Pager` is cheap to clone; clones share the same underlying device,
/// pool and counters. One `Pager` per experiment gives a single ledger for
/// everything that ran.
#[derive(Clone)]
pub struct Pager {
    inner: Arc<PagerInner>,
}

struct PagerInner {
    pool: BufferPool,
    page_size: usize,
    format: PageFormat,
    interner: Interner,
}

impl Pager {
    /// Create a pager over a fresh in-memory disk.
    ///
    /// * `page_size` — bytes per page (including the small page header);
    ///   together with the record size this determines the blocking factor
    ///   `B` of the paper's cost formulas.
    /// * `frames` — buffer-pool frame budget, the "constant size of main
    ///   memory". The linear-I/O algorithms in this repository run happily
    ///   with budgets as small as 8 frames.
    pub fn new(page_size: usize, frames: usize) -> Self {
        Pager::custom(page_size, PoolConfig::new(frames), PageFormat::V1)
    }

    /// Create a pager writing the v2 (prefix-compressed) page format.
    pub fn compressed(page_size: usize, frames: usize) -> Self {
        Pager::custom(page_size, PoolConfig::new(frames), PageFormat::V2)
    }

    /// Full-control constructor: pool policy and page format.
    pub fn custom(page_size: usize, config: PoolConfig, format: PageFormat) -> Self {
        let stats = IoStats::new();
        let disk = MemDisk::new(page_size, stats.clone());
        let pool = BufferPool::new(Box::new(disk), config, stats);
        Pager {
            inner: Arc::new(PagerInner {
                pool,
                page_size,
                format,
                interner: Interner::new(),
            }),
        }
    }

    /// Create a pager over an in-memory disk that additionally charges
    /// wall-clock latency per transfer (see [`LatencyDisk`]).
    ///
    /// Used by the parallel-evaluation benchmarks: on such a device,
    /// overlapping independent page reads across workers shows up as
    /// measured speedup while the transfer *counts* stay identical.
    pub fn with_latency(
        page_size: usize,
        frames: usize,
        read_delay: std::time::Duration,
        write_delay: std::time::Duration,
    ) -> Self {
        Pager::with_latency_format(page_size, frames, read_delay, write_delay, PageFormat::V1)
    }

    /// [`Pager::with_latency`] with an explicit page format.
    pub fn with_latency_format(
        page_size: usize,
        frames: usize,
        read_delay: std::time::Duration,
        write_delay: std::time::Duration,
        format: PageFormat,
    ) -> Self {
        let stats = IoStats::new();
        let disk = MemDisk::new(page_size, stats.clone());
        let disk = LatencyDisk::new(Box::new(disk), read_delay, write_delay);
        let pool = BufferPool::new(Box::new(disk), PoolConfig::new(frames), stats);
        Pager {
            inner: Arc::new(PagerInner {
                pool,
                page_size,
                format,
                interner: Interner::new(),
            }),
        }
    }

    /// The page format new list/chain pages are written in.
    pub fn format(&self) -> PageFormat {
        self.inner.format
    }

    /// The directory-wide attribute-name interner.
    pub fn interner(&self) -> &Interner {
        &self.inner.interner
    }

    /// Codec context for the v2 record hooks.
    pub fn ctx(&self) -> PageCtx<'_> {
        PageCtx {
            interner: &self.inner.interner,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.inner.page_size
    }

    /// Usable payload bytes per page (page size minus page header).
    pub fn payload_size(&self) -> usize {
        self.inner.page_size - PAGE_HEADER_BYTES
    }

    /// The buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.inner.pool
    }

    /// The shared I/O ledger.
    pub fn stats(&self) -> &IoStats {
        self.inner.pool.stats()
    }

    /// Snapshot the I/O counters (reads, writes, allocations).
    pub fn io(&self) -> IoSnapshot {
        self.stats().snapshot()
    }

    /// Reset the I/O counters to zero. Useful between experiment phases:
    /// build the inputs, reset, run the operator, read the ledger.
    pub fn reset_io(&self) {
        self.stats().reset();
    }

    /// Flush all dirty frames to disk (counted as writes).
    pub fn flush(&self) -> PagerResult<()> {
        self.inner.pool.flush_all()
    }

    /// The paper's blocking factor `B` for records of `record_bytes` bytes:
    /// how many such records fit on one page.
    pub fn blocking_factor(&self, record_bytes: usize) -> usize {
        if record_bytes == 0 {
            return self.payload_size();
        }
        // Each record costs a 4-byte length prefix on the page.
        (self.payload_size() / (record_bytes + record::LEN_PREFIX_BYTES)).max(1)
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("page_size", &self.inner.page_size)
            .field("frames", &self.inner.pool.capacity())
            .field("io", &self.io())
            .finish()
    }
}

/// A reasonable default pager for tests and examples: 4 KiB pages, 64 frames.
pub fn default_pager() -> Pager {
    Pager::new(4096, 64)
}

/// A deliberately tiny pager (small pages, few frames) that makes I/O
/// behaviour visible at small input sizes; used throughout the test suite
/// to exercise spill paths.
pub fn tiny_pager() -> Pager {
    Pager::new(256, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_factor_counts_prefix_overhead() {
        let p = Pager::new(4096, 8);
        let b = p.blocking_factor(60);
        // 4096 - header, divided by 64 per record.
        assert_eq!(b, (4096 - PAGE_HEADER_BYTES) / 64);
        assert!(p.blocking_factor(0) > 0);
        assert_eq!(p.blocking_factor(1_000_000), 1);
    }

    #[test]
    fn pager_clone_shares_ledger() {
        let p = Pager::new(512, 8);
        let q = p.clone();
        p.stats().record_read();
        assert_eq!(q.io().reads, 1);
        q.reset_io();
        assert_eq!(p.io().reads, 0);
    }
}
