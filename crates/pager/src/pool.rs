//! Bounded buffer pool with scan-resistant (2Q) eviction and pin
//! accounting.
//!
//! The pool is the enforcement point for the paper's "constant size of main
//! memory" claims (Theorems 8.3/8.4): it holds at most `frames` pages in
//! memory, and an algorithm that tries to pin more than that gets a
//! [`PagerError::PoolExhausted`] instead of silently using unbounded RAM.
//! Experiments run the operators under small fixed budgets and verify both
//! that they complete and that their I/O stays linear.
//!
//! ## Replacement policy
//!
//! The default policy is 2Q (Johnson & Shasha): a page faults into a
//! FIFO **probation** queue; a hit while on probation promotes it to the
//! LRU **protected** queue. Eviction prefers the probation front, so one
//! big sequential scan — which touches every page exactly once — churns
//! through probation without displacing the protected working set of
//! concurrent point queries. Pages evicted from probation leave a
//! **ghost** (id-only) trace; a refault while ghosted is evidence of
//! reuse beyond scan order and admits the page straight to protected.
//! A plain LRU policy is retained behind [`ReplacementPolicy::Lru`] as
//! the measured baseline for the scan-mix benchmark cell.
//!
//! All queues are intrusive doubly-linked lists over one slab, so hit
//! reordering, admission, and victim selection are O(1) — replacing the
//! old full scan of the resident table on every miss. Pinned frames are
//! skipped by rotating them to the queue back, so a victim search costs
//! O(pinned-prefix), not O(resident).
//!
//! Policy state advances on a logical access clock (one tick per fetch,
//! see [`BufferPool::tick`]): decisions are a pure function of the
//! access sequence, never of wall time, which keeps eviction behavior
//! deterministic under test and is what the seeded scan-resistance
//! suites rely on.

use crate::disk::{Disk, PageId};
use crate::error::{PagerError, PagerResult};
use crate::stats::IoStats;
use bytes::{Bytes, BytesMut};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Page replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Scan-resistant two-queue policy (the default).
    #[default]
    TwoQ,
    /// Classic least-recently-used, kept as a measurable baseline.
    Lru,
}

/// Buffer pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Maximum number of page frames resident in memory at once.
    pub frames: usize,
    /// Replacement policy for unpinned frames.
    pub policy: ReplacementPolicy,
}

impl PoolConfig {
    /// A `frames`-frame pool under the default (2Q) policy.
    pub fn new(frames: usize) -> PoolConfig {
        PoolConfig {
            frames,
            policy: ReplacementPolicy::TwoQ,
        }
    }
}

/// Monotonic counters of pool behavior, separate from the page-I/O
/// ledger ([`IoStats`] is wire-pinned in ANALYZE traces and must not
/// grow fields). Snapshot with [`BufferPool::metrics`].
#[derive(Default)]
pub(crate) struct PoolMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    ghost_readmissions: AtomicU64,
    compressed_bytes_saved: AtomicU64,
}

/// A point-in-time copy of [`PoolMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMetricsSnapshot {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to admit a new frame.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Misses whose page was on the ghost list (re-admitted straight to
    /// the protected queue).
    pub ghost_readmissions: u64,
    /// Bytes the v2 page format saved versus the v1 encoding of the
    /// same records (accumulated by the list/chain writers).
    pub compressed_bytes_saved: u64,
}

struct FrameCell {
    page: PageId,
    data: RwLock<BytesMut>,
    dirty: AtomicBool,
    pins: AtomicU32,
    last_used: AtomicU64,
}

/// A pinned page frame.
///
/// While a guard is alive the page cannot be evicted; dropping the guard
/// unpins it. Obtain read access with [`FrameGuard::bytes`] and write access
/// with [`FrameGuard::with_mut`] (which marks the frame dirty).
pub struct FrameGuard {
    cell: Arc<FrameCell>,
}

impl std::fmt::Debug for FrameGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameGuard")
            .field("page", &self.cell.page)
            .finish()
    }
}

impl FrameGuard {
    /// The page this frame holds.
    pub fn page(&self) -> PageId {
        self.cell.page
    }

    /// Copy-on-read view of the page contents.
    pub fn bytes(&self) -> Bytes {
        Bytes::copy_from_slice(&self.cell.data.read())
    }

    /// Run `f` over the page contents without copying.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.cell.data.read())
    }

    /// Mutate the page contents; marks the frame dirty so it is written
    /// back (one write I/O) when evicted or flushed.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut BytesMut) -> R) -> R {
        let r = f(&mut self.cell.data.write());
        self.cell.dirty.store(true, Ordering::Release);
        r
    }
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        self.cell.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// Intrusive queues: one node slab shared by probation/protected/ghost.

const NIL: usize = usize::MAX;

struct Node {
    page: PageId,
    prev: usize,
    next: usize,
}

#[derive(Clone, Copy)]
struct Queue {
    head: usize,
    tail: usize,
    len: usize,
}

impl Queue {
    const fn empty() -> Queue {
        Queue {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

/// Slab of doubly-linked nodes. Every operation is O(1).
struct Slab {
    nodes: Vec<Node>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            nodes: Vec::new(),
            free: Vec::new(),
        }
    }

    fn push_back(&mut self, q: &mut Queue, page: PageId) -> usize {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = Node {
                    page,
                    prev: q.tail,
                    next: NIL,
                };
                idx
            }
            None => {
                self.nodes.push(Node {
                    page,
                    prev: q.tail,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        if q.tail != NIL {
            self.nodes[q.tail].next = idx;
        } else {
            q.head = idx;
        }
        q.tail = idx;
        q.len += 1;
        idx
    }

    fn unlink(&mut self, q: &mut Queue, idx: usize) -> PageId {
        let Node { page, prev, next } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            q.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            q.tail = prev;
        }
        q.len -= 1;
        self.free.push(idx);
        page
    }

    fn move_to_back(&mut self, q: &mut Queue, idx: usize) {
        if q.tail == idx {
            return;
        }
        let page = self.unlink(q, idx);
        let new_idx = self.push_back(q, page);
        debug_assert_eq!(new_idx, idx, "freed node is reused immediately");
    }

    fn front(&self, q: &Queue) -> Option<(usize, PageId)> {
        if q.head == NIL {
            None
        } else {
            Some((q.head, self.nodes[q.head].page))
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum QueueKind {
    Probation,
    Protected,
}

struct Resident {
    cell: Arc<FrameCell>,
    queue: QueueKind,
    node: usize,
}

/// The pool proper. See module docs.
pub struct BufferPool {
    disk: Box<dyn Disk>,
    config: PoolConfig,
    stats: IoStats,
    metrics: PoolMetrics,
    state: Mutex<PoolState>,
    clock: AtomicU64,
}

struct PoolState {
    resident: HashMap<PageId, Resident>,
    slab: Slab,
    probation: Queue,
    protected: Queue,
    ghost: Queue,
    ghost_slab: Slab,
    ghosts: HashMap<PageId, usize>,
}

impl PoolState {
    fn queue_mut(&mut self, kind: QueueKind) -> &mut Queue {
        match kind {
            QueueKind::Probation => &mut self.probation,
            QueueKind::Protected => &mut self.protected,
        }
    }
}

impl BufferPool {
    /// Create a pool of `config.frames` frames over `disk`.
    pub fn new(disk: Box<dyn Disk>, config: PoolConfig, stats: IoStats) -> Self {
        assert!(config.frames >= 2, "a pool needs at least 2 frames");
        BufferPool {
            disk,
            config,
            stats,
            metrics: PoolMetrics::default(),
            state: Mutex::new(PoolState {
                resident: HashMap::new(),
                slab: Slab::new(),
                probation: Queue::empty(),
                protected: Queue::empty(),
                ghost: Queue::empty(),
                ghost_slab: Slab::new(),
                ghosts: HashMap::new(),
            }),
            clock: AtomicU64::new(0),
        }
    }

    /// Frame budget.
    pub fn capacity(&self) -> usize {
        self.config.frames
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.state.lock().resident.len()
    }

    /// The shared I/O ledger.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Snapshot of the pool-behavior counters.
    pub fn metrics(&self) -> PoolMetricsSnapshot {
        PoolMetricsSnapshot {
            hits: self.metrics.hits.load(Ordering::Relaxed),
            misses: self.metrics.misses.load(Ordering::Relaxed),
            evictions: self.metrics.evictions.load(Ordering::Relaxed),
            ghost_readmissions: self.metrics.ghost_readmissions.load(Ordering::Relaxed),
            compressed_bytes_saved: self
                .metrics
                .compressed_bytes_saved
                .load(Ordering::Relaxed),
        }
    }

    /// Credit bytes saved by the compressed page format (called by the
    /// list/chain writers when sealing v2 pages).
    pub fn note_compression_saved(&self, bytes: u64) {
        self.metrics
            .compressed_bytes_saved
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    /// Allocate a fresh page on the device (no frame is pinned).
    pub fn allocate(&self) -> PageId {
        self.disk.allocate()
    }

    /// Number of pages allocated on the device.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Advance the logical access clock (policy time, not wall time).
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Probation stays at least this long before eviction dips into
    /// protected: the classic 2Q "Kin ≈ 25%" sizing.
    fn probation_target(&self) -> usize {
        (self.config.frames / 4).max(1)
    }

    /// A resident frame was touched: reorder its queue node. Probation
    /// hits promote to protected (2Q); under LRU everything lives in the
    /// protected queue and a touch moves it to the back.
    fn touch(&self, state: &mut PoolState, page: PageId) {
        let Some(res) = state.resident.get(&page) else {
            return;
        };
        let (queue, node) = (res.queue, res.node);
        match queue {
            QueueKind::Probation => {
                let q = state.queue_mut(QueueKind::Probation);
                let mut q_copy = *q;
                state.slab.unlink(&mut q_copy, node);
                *state.queue_mut(QueueKind::Probation) = q_copy;
                let mut prot = state.protected;
                let new_node = state.slab.push_back(&mut prot, page);
                state.protected = prot;
                let res = state.resident.get_mut(&page).expect("still resident");
                res.queue = QueueKind::Protected;
                res.node = new_node;
            }
            QueueKind::Protected => {
                let mut prot = state.protected;
                state.slab.move_to_back(&mut prot, node);
                state.protected = prot;
            }
        }
    }

    /// Remove `page` from the ghost list if present. Returns whether it
    /// was ghosted (a re-admission signal).
    fn take_ghost(&self, state: &mut PoolState, page: PageId) -> bool {
        let Some(node) = state.ghosts.remove(&page) else {
            return false;
        };
        let mut q = state.ghost;
        state.ghost_slab.unlink(&mut q, node);
        state.ghost = q;
        true
    }

    /// Admit a freshly missed page: choose its queue (2Q: ghost hits go
    /// straight to protected, everything else starts on probation; LRU:
    /// one queue) and link it. Ghost removal happens in the same
    /// state-locked step as admission, so a page is never simultaneously
    /// ghosted and resident — the invariant the interleaving model checks.
    fn admit(&self, state: &mut PoolState, page: PageId, cell: Arc<FrameCell>) {
        let ghosted = self.take_ghost(state, page);
        let queue = match self.config.policy {
            ReplacementPolicy::Lru => QueueKind::Protected,
            ReplacementPolicy::TwoQ => {
                if ghosted {
                    self.metrics.ghost_readmissions.fetch_add(1, Ordering::Relaxed);
                    QueueKind::Protected
                } else {
                    QueueKind::Probation
                }
            }
        };
        let mut q = *state.queue_mut(queue);
        let node = state.slab.push_back(&mut q, page);
        *state.queue_mut(queue) = q;
        state.resident.insert(page, Resident { cell, queue, node });
    }

    /// Unlink an evicted/cleared frame from its queue and the table.
    fn remove_resident(&self, state: &mut PoolState, page: PageId) -> Option<Arc<FrameCell>> {
        let res = state.resident.remove(&page)?;
        let mut q = *state.queue_mut(res.queue);
        state.slab.unlink(&mut q, res.node);
        *state.queue_mut(res.queue) = q;
        Some(res.cell)
    }

    /// Pin `page` into a frame, reading it from disk on a miss.
    ///
    /// The disk transfer happens *outside* the pool's state lock so that
    /// concurrent workers overlap their misses instead of serialising on
    /// the pool. A miss publishes a pinned "loading" frame whose data lock
    /// is held for writing until the bytes arrive; a concurrent fetch of
    /// the same page finds the frame resident and blocks on the data lock,
    /// so every cold page costs exactly one read I/O no matter how many
    /// threads race for it (keeping I/O counts degree-independent).
    pub fn fetch(&self, page: PageId) -> PagerResult<FrameGuard> {
        let cell: Arc<FrameCell>;
        let mut loading;
        {
            let mut state = self.state.lock();
            if let Some(hit) = state.resident.get(&page) {
                self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                hit.cell.pins.fetch_add(1, Ordering::AcqRel);
                hit.cell.last_used.store(self.tick(), Ordering::Relaxed);
                let cell = hit.cell.clone();
                self.touch(&mut state, page);
                drop(state);
                // Wait out an in-flight load (no-op for settled frames).
                drop(cell.data.read());
                return Ok(FrameGuard { cell });
            }
            self.metrics.misses.fetch_add(1, Ordering::Relaxed);
            self.make_room(&mut state)?;
            cell = Arc::new(FrameCell {
                page,
                data: RwLock::new(BytesMut::new()),
                dirty: AtomicBool::new(false),
                pins: AtomicU32::new(1),
                last_used: AtomicU64::new(self.tick()),
            });
            // Take the data write lock *before* publishing the cell: the
            // cell is brand new so this cannot block, and it keeps racing
            // fetchers of the same page parked until the bytes are in.
            // The frame is born pinned, so mid-load it can be neither an
            // eviction victim nor a flush candidate (it is not dirty).
            loading = cell.data.write();
            self.admit(&mut state, page, cell.clone());
        }
        match self.disk.read_page(page) {
            Ok(data) => {
                loading.extend_from_slice(&data);
                drop(loading);
                Ok(FrameGuard { cell })
            }
            Err(e) => {
                // Leave any waiters a defined (zeroed) page, then
                // un-publish the frame so later fetches retry the device.
                loading.resize(self.disk.page_size(), 0);
                drop(loading);
                let _ = self.remove_resident(&mut self.state.lock(), page);
                cell.pins.fetch_sub(1, Ordering::AcqRel);
                Err(e)
            }
        }
    }

    /// Pin `page` without reading it from disk — for pages about to be
    /// fully overwritten (fresh allocations). Saves the pointless read I/O
    /// a real system would also avoid.
    pub fn fetch_zeroed(&self, page: PageId) -> PagerResult<FrameGuard> {
        let mut state = self.state.lock();
        if let Some(hit) = state.resident.get(&page) {
            self.metrics.hits.fetch_add(1, Ordering::Relaxed);
            hit.cell.pins.fetch_add(1, Ordering::AcqRel);
            hit.cell.last_used.store(self.tick(), Ordering::Relaxed);
            let cell = hit.cell.clone();
            self.touch(&mut state, page);
            return Ok(FrameGuard { cell });
        }
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
        self.make_room(&mut state)?;
        let cell = Arc::new(FrameCell {
            page,
            data: RwLock::new(BytesMut::zeroed(self.disk.page_size())),
            dirty: AtomicBool::new(true),
            pins: AtomicU32::new(1),
            last_used: AtomicU64::new(self.tick()),
        });
        self.admit(&mut state, page, cell.clone());
        Ok(FrameGuard { cell })
    }

    /// Pop the front-most unpinned frame of `kind`'s queue, rotating
    /// pinned frames to the back (bounded by the queue length, so the
    /// search is O(pinned), not O(resident)).
    fn pop_unpinned(&self, state: &mut PoolState, kind: QueueKind) -> Option<Arc<FrameCell>> {
        let mut rotated = 0;
        let len = match kind {
            QueueKind::Probation => state.probation.len,
            QueueKind::Protected => state.protected.len,
        };
        while rotated < len {
            let q = *state.queue_mut(kind);
            let (node, page) = state.slab.front(&q)?;
            let pinned = state.resident[&page].cell.pins.load(Ordering::Acquire) > 0;
            if pinned {
                let mut q = q;
                state.slab.move_to_back(&mut q, node);
                *state.queue_mut(kind) = q;
                rotated += 1;
                continue;
            }
            return self.remove_resident(state, page);
        }
        None
    }

    /// Evict until a frame is free, preferring the probation front (2Q)
    /// or the single LRU queue. Ghosts remember probation evictions.
    fn make_room(&self, state: &mut PoolState) -> PagerResult<()> {
        while state.resident.len() >= self.config.frames {
            let order: [QueueKind; 2] = match self.config.policy {
                ReplacementPolicy::Lru => [QueueKind::Protected, QueueKind::Probation],
                ReplacementPolicy::TwoQ => {
                    if state.probation.len >= self.probation_target()
                        || state.protected.len == 0
                    {
                        [QueueKind::Probation, QueueKind::Protected]
                    } else {
                        [QueueKind::Protected, QueueKind::Probation]
                    }
                }
            };
            let mut victim = None;
            let mut victim_queue = order[0];
            for kind in order {
                if let Some(cell) = self.pop_unpinned(state, kind) {
                    victim = Some(cell);
                    victim_queue = kind;
                    break;
                }
            }
            let Some(cell) = victim else {
                return Err(PagerError::PoolExhausted {
                    frames: self.config.frames,
                });
            };
            self.metrics.evictions.fetch_add(1, Ordering::Relaxed);
            if self.config.policy == ReplacementPolicy::TwoQ
                && victim_queue == QueueKind::Probation
            {
                self.remember_ghost(state, cell.page);
            }
            self.write_back(&cell)?;
        }
        Ok(())
    }

    /// Record a probation eviction on the ghost list (id only, no data),
    /// capped at `frames` entries FIFO.
    fn remember_ghost(&self, state: &mut PoolState, page: PageId) {
        // A page re-admitted and re-evicted was un-ghosted at admission,
        // but never double-book defensively.
        let _ = self.take_ghost(state, page);
        let mut q = state.ghost;
        let node = state.ghost_slab.push_back(&mut q, page);
        state.ghost = q;
        state.ghosts.insert(page, node);
        while state.ghost.len > self.config.frames {
            let mut q = state.ghost;
            let (node, old) = state
                .ghost_slab
                .front(&q)
                .expect("non-empty ghost queue");
            state.ghost_slab.unlink(&mut q, node);
            state.ghost = q;
            state.ghosts.remove(&old);
        }
    }

    fn write_back(&self, cell: &FrameCell) -> PagerResult<()> {
        if cell.dirty.swap(false, Ordering::AcqRel) {
            let data = Bytes::copy_from_slice(&cell.data.read());
            self.disk.write_page(cell.page, data)?;
        }
        Ok(())
    }

    /// Write back every dirty resident frame (frames stay resident).
    pub fn flush_all(&self) -> PagerResult<()> {
        let state = self.state.lock();
        for res in state.resident.values() {
            self.write_back(&res.cell)?;
        }
        Ok(())
    }

    /// Drop every unpinned frame, writing dirty ones back, and forget
    /// the ghost list. Between experiment phases this gives a cold
    /// cache with no policy memory.
    pub fn clear_cache(&self) -> PagerResult<()> {
        let mut state = self.state.lock();
        let victims: Vec<PageId> = state
            .resident
            .values()
            .filter(|r| r.cell.pins.load(Ordering::Acquire) == 0)
            .map(|r| r.cell.page)
            .collect();
        for page in victims {
            let cell = self
                .remove_resident(&mut state, page)
                .expect("victim resident");
            self.write_back(&cell)?;
        }
        let ghosts: Vec<PageId> = state.ghosts.keys().copied().collect();
        for page in ghosts {
            self.take_ghost(&mut state, page);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool_with(frames: usize, policy: ReplacementPolicy) -> BufferPool {
        let stats = IoStats::new();
        let disk = MemDisk::new(128, stats.clone());
        BufferPool::new(Box::new(disk), PoolConfig { frames, policy }, stats)
    }

    fn pool(frames: usize) -> BufferPool {
        pool_with(frames, ReplacementPolicy::TwoQ)
    }

    #[test]
    fn hit_avoids_io() {
        let p = pool(4);
        let page = p.allocate();
        let g1 = p.fetch(page).unwrap();
        drop(g1);
        let before = p.stats().snapshot();
        let _g2 = p.fetch(page).unwrap();
        assert_eq!(p.stats().snapshot().since(before).reads, 0);
    }

    #[test]
    fn writes_survive_eviction() {
        let p = pool(2);
        let a = p.allocate();
        let g = p.fetch_zeroed(a).unwrap();
        g.with_mut(|d| d[0] = 42);
        drop(g);
        // Evict `a` by filling the pool with other pages.
        for _ in 0..4 {
            let q = p.allocate();
            drop(p.fetch_zeroed(q).unwrap());
        }
        let g = p.fetch(a).unwrap();
        assert_eq!(g.with(|d| d[0]), 42);
    }

    #[test]
    fn exceeding_pin_budget_errors() {
        let p = pool(2);
        let pages: Vec<_> = (0..3).map(|_| p.allocate()).collect();
        let _g0 = p.fetch_zeroed(pages[0]).unwrap();
        let _g1 = p.fetch_zeroed(pages[1]).unwrap();
        let err = p.fetch(pages[2]).unwrap_err();
        assert!(matches!(err, PagerError::PoolExhausted { frames: 2 }));
    }

    #[test]
    fn lru_policy_evicts_coldest() {
        let p = pool_with(2, ReplacementPolicy::Lru);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        drop(p.fetch_zeroed(a).unwrap());
        drop(p.fetch_zeroed(b).unwrap());
        drop(p.fetch(a).unwrap()); // a is now warmer than b
        drop(p.fetch_zeroed(c).unwrap()); // must evict b
        let before = p.stats().snapshot();
        drop(p.fetch(a).unwrap()); // hit
        assert_eq!(p.stats().snapshot().since(before).reads, 0);
        drop(p.fetch(b).unwrap()); // miss
        assert_eq!(p.stats().snapshot().since(before).reads, 1);
    }

    #[test]
    fn scan_does_not_evict_protected_pages() {
        // Working set of 2 pages, touched twice each → protected. A long
        // one-touch scan then churns probation only: re-fetching the
        // working set stays hit.
        let p = pool(8);
        let hot: Vec<_> = (0..2).map(|_| p.allocate()).collect();
        for &h in &hot {
            drop(p.fetch_zeroed(h).unwrap());
        }
        for &h in &hot {
            drop(p.fetch(h).unwrap()); // promote to protected
        }
        for _ in 0..64 {
            let q = p.allocate();
            drop(p.fetch_zeroed(q).unwrap());
        }
        let before = p.stats().snapshot();
        for &h in &hot {
            drop(p.fetch(h).unwrap());
        }
        assert_eq!(
            p.stats().snapshot().since(before).reads,
            0,
            "scan displaced the protected working set"
        );
    }

    #[test]
    fn ghost_refault_readmits_to_protected() {
        let p = pool(4);
        let victim = p.allocate();
        drop(p.fetch_zeroed(victim).unwrap());
        // Push `victim` out of probation (one touch only → never
        // promoted); few enough follow-on evictions that its ghost
        // survives the FIFO cap.
        for _ in 0..4 {
            drop(p.fetch_zeroed(p.allocate()).unwrap());
        }
        let m0 = p.metrics();
        assert!(m0.evictions > 0);
        assert_eq!(m0.ghost_readmissions, 0);
        // Refault: the ghost list remembers it → protected admission.
        drop(p.fetch(victim).unwrap());
        let m1 = p.metrics();
        assert_eq!(m1.ghost_readmissions, 1);
        // Now a long scan must not displace it.
        for _ in 0..16 {
            drop(p.fetch_zeroed(p.allocate()).unwrap());
        }
        let before = p.stats().snapshot();
        drop(p.fetch(victim).unwrap());
        assert_eq!(p.stats().snapshot().since(before).reads, 0);
    }

    #[test]
    fn metrics_count_hits_misses_evictions() {
        let p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        drop(p.fetch_zeroed(a).unwrap()); // miss
        drop(p.fetch(a).unwrap()); // hit
        drop(p.fetch_zeroed(b).unwrap()); // miss
        drop(p.fetch_zeroed(c).unwrap()); // miss + eviction
        let m = p.metrics();
        assert_eq!(m.hits, 1);
        assert_eq!(m.misses, 3);
        assert!(m.evictions >= 1);
    }

    #[test]
    fn victim_search_is_not_a_full_scan() {
        // Regression for the old O(resident) victim scan: with a large
        // pool, a miss-heavy churn loop must stay fast. This asserts the
        // behavioral contract (eviction picks an unpinned frame and the
        // pool never exceeds its budget) on a pool big enough that a
        // quadratic scan would be visibly pathological.
        let frames = 4096;
        let p = pool(frames);
        let pages: Vec<_> = (0..frames * 2).map(|_| p.allocate()).collect();
        for &pg in &pages {
            drop(p.fetch_zeroed(pg).unwrap());
            assert!(p.resident() <= frames);
        }
        // Second pass over the first half: all were evicted or resident,
        // either way fetch must succeed and respect the budget.
        for &pg in &pages[..frames] {
            drop(p.fetch(pg).unwrap());
            assert!(p.resident() <= frames);
        }
        let m = p.metrics();
        assert_eq!(m.misses + m.hits, (frames * 3) as u64);
        assert!(m.evictions >= frames as u64);
    }

    #[test]
    fn pinned_frames_are_rotated_not_evicted() {
        let p = pool(4);
        let keep = p.allocate();
        let g = p.fetch_zeroed(keep).unwrap();
        for _ in 0..16 {
            drop(p.fetch_zeroed(p.allocate()).unwrap());
        }
        // The pinned frame survived the churn.
        assert_eq!(g.page(), keep);
        let before = p.stats().snapshot();
        drop(p.fetch(keep).unwrap());
        assert_eq!(p.stats().snapshot().since(before).reads, 0);
    }

    #[test]
    fn fetch_zeroed_skips_read_io() {
        let p = pool(4);
        let a = p.allocate();
        let before = p.stats().snapshot();
        drop(p.fetch_zeroed(a).unwrap());
        assert_eq!(p.stats().snapshot().since(before).reads, 0);
    }

    #[test]
    fn flush_writes_dirty_frames_once() {
        let p = pool(4);
        let a = p.allocate();
        p.fetch_zeroed(a).unwrap().with_mut(|d| d[1] = 7);
        let before = p.stats().snapshot();
        p.flush_all().unwrap();
        p.flush_all().unwrap(); // second flush: nothing dirty
        assert_eq!(p.stats().snapshot().since(before).writes, 1);
    }

    #[test]
    fn clear_cache_then_refetch_reads() {
        let p = pool(4);
        let a = p.allocate();
        drop(p.fetch_zeroed(a).unwrap());
        p.clear_cache().unwrap();
        let before = p.stats().snapshot();
        drop(p.fetch(a).unwrap());
        assert_eq!(p.stats().snapshot().since(before).reads, 1);
    }

    #[test]
    fn clear_cache_forgets_ghosts() {
        let p = pool(2);
        let a = p.allocate();
        drop(p.fetch_zeroed(a).unwrap());
        for _ in 0..4 {
            drop(p.fetch_zeroed(p.allocate()).unwrap());
        }
        p.clear_cache().unwrap();
        let before = p.metrics();
        drop(p.fetch(a).unwrap());
        assert_eq!(
            p.metrics().ghost_readmissions,
            before.ghost_readmissions,
            "cleared cache must not re-admit from stale ghosts"
        );
    }
}
