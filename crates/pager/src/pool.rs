//! Bounded buffer pool with LRU eviction and pin accounting.
//!
//! The pool is the enforcement point for the paper's "constant size of main
//! memory" claims (Theorems 8.3/8.4): it holds at most `frames` pages in
//! memory, and an algorithm that tries to pin more than that gets a
//! [`PagerError::PoolExhausted`] instead of silently using unbounded RAM.
//! Experiments run the operators under small fixed budgets and verify both
//! that they complete and that their I/O stays linear.

use crate::disk::{Disk, PageId};
use crate::error::{PagerError, PagerResult};
use crate::stats::IoStats;
use bytes::{Bytes, BytesMut};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Buffer pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Maximum number of page frames resident in memory at once.
    pub frames: usize,
}

struct FrameCell {
    page: PageId,
    data: RwLock<BytesMut>,
    dirty: AtomicBool,
    pins: AtomicU32,
    last_used: AtomicU64,
}

/// A pinned page frame.
///
/// While a guard is alive the page cannot be evicted; dropping the guard
/// unpins it. Obtain read access with [`FrameGuard::bytes`] and write access
/// with [`FrameGuard::with_mut`] (which marks the frame dirty).
pub struct FrameGuard {
    cell: Arc<FrameCell>,
}

impl std::fmt::Debug for FrameGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameGuard")
            .field("page", &self.cell.page)
            .finish()
    }
}

impl FrameGuard {
    /// The page this frame holds.
    pub fn page(&self) -> PageId {
        self.cell.page
    }

    /// Copy-on-read view of the page contents.
    pub fn bytes(&self) -> Bytes {
        Bytes::copy_from_slice(&self.cell.data.read())
    }

    /// Run `f` over the page contents without copying.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.cell.data.read())
    }

    /// Mutate the page contents; marks the frame dirty so it is written
    /// back (one write I/O) when evicted or flushed.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut BytesMut) -> R) -> R {
        let r = f(&mut self.cell.data.write());
        self.cell.dirty.store(true, Ordering::Release);
        r
    }
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        self.cell.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The pool proper. See module docs.
pub struct BufferPool {
    disk: Box<dyn Disk>,
    config: PoolConfig,
    stats: IoStats,
    state: Mutex<PoolState>,
    clock: AtomicU64,
}

struct PoolState {
    resident: HashMap<PageId, Arc<FrameCell>>,
}

impl BufferPool {
    /// Create a pool of `config.frames` frames over `disk`.
    pub fn new(disk: Box<dyn Disk>, config: PoolConfig, stats: IoStats) -> Self {
        assert!(config.frames >= 2, "a pool needs at least 2 frames");
        BufferPool {
            disk,
            config,
            stats,
            state: Mutex::new(PoolState {
                resident: HashMap::new(),
            }),
            clock: AtomicU64::new(0),
        }
    }

    /// Frame budget.
    pub fn capacity(&self) -> usize {
        self.config.frames
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.state.lock().resident.len()
    }

    /// The shared I/O ledger.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    /// Allocate a fresh page on the device (no frame is pinned).
    pub fn allocate(&self) -> PageId {
        self.disk.allocate()
    }

    /// Number of pages allocated on the device.
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Pin `page` into a frame, reading it from disk on a miss.
    ///
    /// The disk transfer happens *outside* the pool's state lock so that
    /// concurrent workers overlap their misses instead of serialising on
    /// the pool. A miss publishes a pinned "loading" frame whose data lock
    /// is held for writing until the bytes arrive; a concurrent fetch of
    /// the same page finds the frame resident and blocks on the data lock,
    /// so every cold page costs exactly one read I/O no matter how many
    /// threads race for it (keeping I/O counts degree-independent).
    pub fn fetch(&self, page: PageId) -> PagerResult<FrameGuard> {
        let cell: Arc<FrameCell>;
        let mut loading;
        {
            let mut state = self.state.lock();
            if let Some(hit) = state.resident.get(&page) {
                hit.pins.fetch_add(1, Ordering::AcqRel);
                hit.last_used.store(self.tick(), Ordering::Relaxed);
                let cell = hit.clone();
                drop(state);
                // Wait out an in-flight load (no-op for settled frames).
                drop(cell.data.read());
                return Ok(FrameGuard { cell });
            }
            self.make_room(&mut state)?;
            cell = Arc::new(FrameCell {
                page,
                data: RwLock::new(BytesMut::new()),
                dirty: AtomicBool::new(false),
                pins: AtomicU32::new(1),
                last_used: AtomicU64::new(self.tick()),
            });
            // Take the data write lock *before* publishing the cell: the
            // cell is brand new so this cannot block, and it keeps racing
            // fetchers of the same page parked until the bytes are in.
            // The frame is born pinned, so mid-load it can be neither an
            // eviction victim nor a flush candidate (it is not dirty).
            loading = cell.data.write();
            state.resident.insert(page, cell.clone());
        }
        match self.disk.read_page(page) {
            Ok(data) => {
                loading.extend_from_slice(&data);
                drop(loading);
                Ok(FrameGuard { cell })
            }
            Err(e) => {
                // Leave any waiters a defined (zeroed) page, then
                // un-publish the frame so later fetches retry the device.
                loading.resize(self.disk.page_size(), 0);
                drop(loading);
                self.state.lock().resident.remove(&page);
                cell.pins.fetch_sub(1, Ordering::AcqRel);
                Err(e)
            }
        }
    }

    /// Pin `page` without reading it from disk — for pages about to be
    /// fully overwritten (fresh allocations). Saves the pointless read I/O
    /// a real system would also avoid.
    pub fn fetch_zeroed(&self, page: PageId) -> PagerResult<FrameGuard> {
        let mut state = self.state.lock();
        if let Some(cell) = state.resident.get(&page) {
            cell.pins.fetch_add(1, Ordering::AcqRel);
            cell.last_used.store(self.tick(), Ordering::Relaxed);
            return Ok(FrameGuard { cell: cell.clone() });
        }
        self.make_room(&mut state)?;
        let cell = Arc::new(FrameCell {
            page,
            data: RwLock::new(BytesMut::zeroed(self.disk.page_size())),
            dirty: AtomicBool::new(true),
            pins: AtomicU32::new(1),
            last_used: AtomicU64::new(self.tick()),
        });
        state.resident.insert(page, cell.clone());
        Ok(FrameGuard { cell })
    }

    /// Evict the least-recently-used unpinned frame if the pool is full.
    fn make_room(&self, state: &mut PoolState) -> PagerResult<()> {
        while state.resident.len() >= self.config.frames {
            let victim = state
                .resident
                .values()
                .filter(|c| c.pins.load(Ordering::Acquire) == 0)
                .min_by_key(|c| c.last_used.load(Ordering::Relaxed))
                .map(|c| c.page);
            let Some(victim) = victim else {
                return Err(PagerError::PoolExhausted {
                    frames: self.config.frames,
                });
            };
            let cell = state.resident.remove(&victim).expect("victim resident");
            self.write_back(&cell)?;
        }
        Ok(())
    }

    fn write_back(&self, cell: &FrameCell) -> PagerResult<()> {
        if cell.dirty.swap(false, Ordering::AcqRel) {
            let data = Bytes::copy_from_slice(&cell.data.read());
            self.disk.write_page(cell.page, data)?;
        }
        Ok(())
    }

    /// Write back every dirty resident frame (frames stay resident).
    pub fn flush_all(&self) -> PagerResult<()> {
        let state = self.state.lock();
        for cell in state.resident.values() {
            self.write_back(cell)?;
        }
        Ok(())
    }

    /// Drop every unpinned frame, writing dirty ones back. Between
    /// experiment phases this gives a cold cache.
    pub fn clear_cache(&self) -> PagerResult<()> {
        let mut state = self.state.lock();
        let victims: Vec<PageId> = state
            .resident
            .values()
            .filter(|c| c.pins.load(Ordering::Acquire) == 0)
            .map(|c| c.page)
            .collect();
        for page in victims {
            let cell = state.resident.remove(&page).expect("victim resident");
            self.write_back(&cell)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize) -> BufferPool {
        let stats = IoStats::new();
        let disk = MemDisk::new(128, stats.clone());
        BufferPool::new(Box::new(disk), PoolConfig { frames }, stats)
    }

    #[test]
    fn hit_avoids_io() {
        let p = pool(4);
        let page = p.allocate();
        let g1 = p.fetch(page).unwrap();
        drop(g1);
        let before = p.stats().snapshot();
        let _g2 = p.fetch(page).unwrap();
        assert_eq!(p.stats().snapshot().since(before).reads, 0);
    }

    #[test]
    fn writes_survive_eviction() {
        let p = pool(2);
        let a = p.allocate();
        let g = p.fetch_zeroed(a).unwrap();
        g.with_mut(|d| d[0] = 42);
        drop(g);
        // Evict `a` by filling the pool with other pages.
        for _ in 0..4 {
            let q = p.allocate();
            drop(p.fetch_zeroed(q).unwrap());
        }
        let g = p.fetch(a).unwrap();
        assert_eq!(g.with(|d| d[0]), 42);
    }

    #[test]
    fn exceeding_pin_budget_errors() {
        let p = pool(2);
        let pages: Vec<_> = (0..3).map(|_| p.allocate()).collect();
        let _g0 = p.fetch_zeroed(pages[0]).unwrap();
        let _g1 = p.fetch_zeroed(pages[1]).unwrap();
        let err = p.fetch(pages[2]).unwrap_err();
        assert!(matches!(err, PagerError::PoolExhausted { frames: 2 }));
    }

    #[test]
    fn lru_evicts_coldest() {
        let p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        drop(p.fetch_zeroed(a).unwrap());
        drop(p.fetch_zeroed(b).unwrap());
        drop(p.fetch(a).unwrap()); // a is now warmer than b
        drop(p.fetch_zeroed(c).unwrap()); // must evict b
        let before = p.stats().snapshot();
        drop(p.fetch(a).unwrap()); // hit
        assert_eq!(p.stats().snapshot().since(before).reads, 0);
        drop(p.fetch(b).unwrap()); // miss
        assert_eq!(p.stats().snapshot().since(before).reads, 1);
    }

    #[test]
    fn fetch_zeroed_skips_read_io() {
        let p = pool(4);
        let a = p.allocate();
        let before = p.stats().snapshot();
        drop(p.fetch_zeroed(a).unwrap());
        assert_eq!(p.stats().snapshot().since(before).reads, 0);
    }

    #[test]
    fn flush_writes_dirty_frames_once() {
        let p = pool(4);
        let a = p.allocate();
        p.fetch_zeroed(a).unwrap().with_mut(|d| d[1] = 7);
        let before = p.stats().snapshot();
        p.flush_all().unwrap();
        p.flush_all().unwrap(); // second flush: nothing dirty
        assert_eq!(p.stats().snapshot().since(before).writes, 1);
    }

    #[test]
    fn clear_cache_then_refetch_reads() {
        let p = pool(4);
        let a = p.allocate();
        drop(p.fetch_zeroed(a).unwrap());
        p.clear_cache().unwrap();
        let before = p.stats().snapshot();
        drop(p.fetch(a).unwrap());
        assert_eq!(p.stats().snapshot().since(before).reads, 1);
    }
}
