//! Block-linked record chains with O(1) concatenation.
//!
//! The stack-based hierarchical-selection algorithms (Figures 2/4/5/6)
//! decide membership of an entry `rt` only when it is *popped* — after its
//! whole subtree has been scanned — yet must emit output in sorted
//! (reverse-DN) order, where `rt` precedes everything in its subtree. The
//! fix, standard in the structural-join literature, is a pending-output
//! buffer per stack frame: when `rt` pops, its own record is *prepended*
//! to its buffered subtree output and the whole thing is spliced onto the
//! parent frame's buffer. Splicing must not copy data, or the pass turns
//! quadratic; hence chains of page-sized blocks linked by pointers, where
//! concatenation is a pointer update.
//!
//! To keep the total block count at `O(N/B)` despite many tiny chains, a
//! concatenation merges the boundary blocks whenever both halves fit in
//! one block — so at most every other block can end up under half full.
//!
//! All blocks of all chains live in one [`ChainArena`]; a [`Chain`] is a
//! tiny copyable handle. Block metadata (used bytes, next pointer) is
//! in-memory, like every other page table in this crate.

use crate::disk::{PageId, PAGE_HEADER_BYTES};
use crate::error::{PagerError, PagerResult};
use crate::record::{Record, LEN_PREFIX_BYTES};
use crate::Pager;
use std::marker::PhantomData;

const NIL: u32 = u32::MAX;

/// Handle to a chain of records inside a [`ChainArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chain {
    head: u32,
    tail: u32,
    len: u64,
}

impl Chain {
    /// The empty chain.
    pub fn empty() -> Chain {
        Chain {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of records in the chain.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the chain has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

struct BlockMeta {
    page: PageId,
    used: u32,
    count: u32,
    next: u32,
}

/// Arena owning the blocks of many chains.
pub struct ChainArena<T> {
    pager: Pager,
    blocks: Vec<BlockMeta>,
    /// Blocks emptied by boundary merges, available for reuse (their pages
    /// are recycled too, keeping disk growth proportional to live data).
    free: Vec<u32>,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Record> ChainArena<T> {
    /// A fresh arena on `pager`.
    pub fn new(pager: &Pager) -> Self {
        ChainArena {
            pager: pager.clone(),
            blocks: Vec::new(),
            free: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Number of live blocks (diagnostic; the linearity tests assert this
    /// stays `O(N/B)`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len() - self.free.len()
    }

    fn new_block(&mut self) -> PagerResult<u32> {
        if let Some(idx) = self.free.pop() {
            let meta = &mut self.blocks[idx as usize];
            meta.used = 0;
            meta.count = 0;
            meta.next = NIL;
            return Ok(idx);
        }
        let page = self.pager.pool().allocate();
        // Touch it so it exists zeroed; header maintained in metadata.
        drop(self.pager.pool().fetch_zeroed(page)?);
        let idx = self.blocks.len() as u32;
        self.blocks.push(BlockMeta {
            page,
            used: 0,
            count: 0,
            next: NIL,
        });
        Ok(idx)
    }

    /// Append one record to the chain's tail, returning the grown chain.
    pub fn push(&mut self, chain: Chain, item: &T) -> PagerResult<Chain> {
        let mut buf = Vec::new();
        item.encode(&mut buf);
        let need = buf.len() + LEN_PREFIX_BYTES;
        let payload = self.pager.payload_size();
        if need > payload {
            return Err(PagerError::RecordTooLarge {
                record: buf.len(),
                payload: payload - LEN_PREFIX_BYTES,
            });
        }
        let mut chain = chain;
        let tail = if chain.tail == NIL
            || (self.blocks[chain.tail as usize].used as usize) + need > payload
        {
            let idx = self.new_block()?;
            if chain.tail == NIL {
                chain.head = idx;
            } else {
                self.blocks[chain.tail as usize].next = idx;
            }
            chain.tail = idx;
            idx
        } else {
            chain.tail
        };
        let meta = &mut self.blocks[tail as usize];
        let offset = PAGE_HEADER_BYTES + meta.used as usize;
        let guard = self.pager.pool().fetch(meta.page)?;
        guard.with_mut(|data| {
            data[offset..offset + 4].copy_from_slice(&(buf.len() as u32).to_le_bytes());
            data[offset + 4..offset + 4 + buf.len()].copy_from_slice(&buf);
        });
        meta.used += need as u32;
        meta.count += 1;
        chain.len += 1;
        Ok(chain)
    }

    /// Concatenate: all of `a`'s records followed by all of `b`'s.
    /// O(1) pointer splice; if the boundary blocks both fit in one page
    /// they are physically merged (≤ 2 page touches) so block counts stay
    /// proportional to data volume.
    pub fn concat(&mut self, a: Chain, b: Chain) -> PagerResult<Chain> {
        if a.is_empty() {
            return Ok(b);
        }
        if b.is_empty() {
            return Ok(a);
        }
        let payload = self.pager.payload_size() as u32;
        let a_tail = a.tail as usize;
        let b_head = b.head as usize;
        if self.blocks[a_tail].used + self.blocks[b_head].used <= payload {
            // Merge b's head block into a's tail block.
            let (b_page, b_used, b_count, b_next) = {
                let m = &self.blocks[b_head];
                (m.page, m.used as usize, m.count, m.next)
            };
            let bytes = {
                let guard = self.pager.pool().fetch(b_page)?;
                guard.with(|data| data[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + b_used].to_vec())
            };
            let a_used = self.blocks[a_tail].used as usize;
            let a_page = self.blocks[a_tail].page;
            let guard = self.pager.pool().fetch(a_page)?;
            guard.with_mut(|data| {
                data[PAGE_HEADER_BYTES + a_used..PAGE_HEADER_BYTES + a_used + b_used]
                    .copy_from_slice(&bytes);
            });
            self.blocks[a_tail].used += b_used as u32;
            self.blocks[a_tail].count += b_count;
            self.blocks[a_tail].next = b_next;
            self.free.push(b.head);
            let tail = if b_next == NIL { a.tail } else { b.tail };
            Ok(Chain {
                head: a.head,
                tail,
                len: a.len + b.len,
            })
        } else {
            self.blocks[a_tail].next = b.head;
            Ok(Chain {
                head: a.head,
                tail: b.tail,
                len: a.len + b.len,
            })
        }
    }

    /// Iterate a chain's records in order.
    pub fn iter<'a>(&'a self, chain: Chain) -> ChainIter<'a, T> {
        ChainIter {
            arena: self,
            block: chain.head,
            remaining: chain.len,
            in_block: Vec::new().into_iter(),
        }
    }

    /// Materialize a chain (test helper).
    pub fn to_vec(&self, chain: Chain) -> PagerResult<Vec<T>> {
        self.iter(chain).collect()
    }
}

/// Iterator over a chain's records.
pub struct ChainIter<'a, T> {
    arena: &'a ChainArena<T>,
    block: u32,
    remaining: u64,
    in_block: std::vec::IntoIter<T>,
}

impl<T: Record> ChainIter<'_, T> {
    fn load_block(&mut self) -> PagerResult<bool> {
        if self.block == NIL || self.remaining == 0 {
            return Ok(false);
        }
        let meta = &self.arena.blocks[self.block as usize];
        let guard = self.arena.pager.pool().fetch(meta.page)?;
        let mut items = Vec::with_capacity(meta.count as usize);
        guard.with(|data| -> PagerResult<()> {
            let mut pos = PAGE_HEADER_BYTES;
            for _ in 0..meta.count {
                let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                pos += LEN_PREFIX_BYTES;
                items.push(T::decode(&data[pos..pos + len])?);
                pos += len;
            }
            Ok(())
        })?;
        self.block = meta.next;
        self.in_block = items.into_iter();
        Ok(true)
    }
}

impl<T: Record> Iterator for ChainIter<'_, T> {
    type Item = PagerResult<T>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.remaining == 0 {
                return None;
            }
            if let Some(item) = self.in_block.next() {
                self.remaining -= 1;
                return Some(Ok(item));
            }
            match self.load_block() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny_pager;

    #[test]
    fn push_and_iterate() {
        let pager = tiny_pager();
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut c = Chain::empty();
        for i in 0..100 {
            c = arena.push(c, &i).unwrap();
        }
        assert_eq!(c.len(), 100);
        let got: Vec<u64> = arena.to_vec(c).unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn concat_preserves_order() {
        let pager = tiny_pager();
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut a = Chain::empty();
        let mut b = Chain::empty();
        for i in 0..50 {
            a = arena.push(a, &i).unwrap();
        }
        for i in 50..120 {
            b = arena.push(b, &i).unwrap();
        }
        let c = arena.concat(a, b).unwrap();
        assert_eq!(c.len(), 120);
        assert_eq!(arena.to_vec(c).unwrap(), (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn concat_with_empty_sides() {
        let pager = tiny_pager();
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut a = Chain::empty();
        a = arena.push(a, &7).unwrap();
        let c = arena.concat(a, Chain::empty()).unwrap();
        assert_eq!(arena.to_vec(c).unwrap(), vec![7]);
        let c = arena.concat(Chain::empty(), a).unwrap();
        assert_eq!(arena.to_vec(c).unwrap(), vec![7]);
        let c = arena.concat(Chain::empty(), Chain::empty()).unwrap();
        assert!(c.is_empty());
        assert_eq!(arena.to_vec(c).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn many_tiny_chains_concat_into_few_blocks() {
        // The half-full-merge rule: splicing thousands of 1-record chains
        // must not leave thousands of 1-record blocks.
        let pager = Pager::new(4096, 16);
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut acc = Chain::empty();
        for i in 0..2000u64 {
            let mut single = Chain::empty();
            single = arena.push(single, &i).unwrap();
            acc = arena.concat(acc, single).unwrap();
        }
        assert_eq!(acc.len(), 2000);
        assert_eq!(arena.to_vec(acc).unwrap(), (0..2000).collect::<Vec<_>>());
        // 12 bytes per record on a ~4KB page → ~340 per block.
        let ideal = 2000 / (pager.payload_size() / 12) + 1;
        assert!(
            arena.num_blocks() <= ideal * 3,
            "{} blocks vs ideal {}",
            arena.num_blocks(),
            ideal
        );
    }

    #[test]
    fn interleaved_chain_growth() {
        let pager = tiny_pager();
        let mut arena: ChainArena<(u64, u64)> = ChainArena::new(&pager);
        let mut chains = [Chain::empty(); 10];
        for round in 0..30u64 {
            for (ci, chain) in chains.iter_mut().enumerate() {
                *chain = arena.push(*chain, &(ci as u64, round)).unwrap();
            }
        }
        for (ci, chain) in chains.iter().enumerate() {
            let got = arena.to_vec(*chain).unwrap();
            let expect: Vec<(u64, u64)> = (0..30).map(|r| (ci as u64, r)).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn prepend_pattern_used_by_stack_pop() {
        // Simulate a pop: record r, then its buffered subtree list.
        let pager = tiny_pager();
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut subtree = Chain::empty();
        for i in 1..6 {
            subtree = arena.push(subtree, &i).unwrap();
        }
        let mut own = Chain::empty();
        own = arena.push(own, &0).unwrap();
        let merged = arena.concat(own, subtree).unwrap();
        assert_eq!(arena.to_vec(merged).unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn oversized_record_rejected() {
        let pager = tiny_pager();
        let mut arena: ChainArena<Vec<u8>> = ChainArena::new(&pager);
        let err = arena.push(Chain::empty(), &vec![0u8; 4096]).unwrap_err();
        assert!(matches!(err, PagerError::RecordTooLarge { .. }));
    }
}
