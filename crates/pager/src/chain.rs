//! Block-linked record chains with O(1) concatenation.
//!
//! The stack-based hierarchical-selection algorithms (Figures 2/4/5/6)
//! decide membership of an entry `rt` only when it is *popped* — after its
//! whole subtree has been scanned — yet must emit output in sorted
//! (reverse-DN) order, where `rt` precedes everything in its subtree. The
//! fix, standard in the structural-join literature, is a pending-output
//! buffer per stack frame: when `rt` pops, its own record is *prepended*
//! to its buffered subtree output and the whole thing is spliced onto the
//! parent frame's buffer. Splicing must not copy data, or the pass turns
//! quadratic; hence chains of page-sized blocks linked by pointers, where
//! concatenation is a pointer update.
//!
//! To keep the total block count at `O(N/B)` despite many tiny chains, a
//! concatenation merges the boundary blocks whenever both halves fit in
//! one block — so at most every other block can end up under half full.
//!
//! All blocks of all chains live in one [`ChainArena`]; a [`Chain`] is a
//! tiny copyable handle. Block metadata (used bytes, next pointer) is
//! in-memory, like every other page table in this crate.

use crate::disk::{PageId, PAGE_HEADER_BYTES};
use crate::error::{PagerError, PagerResult};
use crate::list::common_prefix_len;
use crate::record::{codec, Record, LEN_PREFIX_BYTES};
use crate::{PageFormat, Pager};
use std::marker::PhantomData;

const NIL: u32 = u32::MAX;

/// Handle to a chain of records inside a [`ChainArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chain {
    head: u32,
    tail: u32,
    len: u64,
}

impl Chain {
    /// The empty chain.
    pub fn empty() -> Chain {
        Chain {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of records in the chain.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the chain has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

struct BlockMeta {
    page: PageId,
    used: u32,
    count: u32,
    next: u32,
    /// Sort key of the block's last record — the delta base for the next
    /// v2 frame appended to this block. Empty/unused under v1. A block's
    /// *first* frame always has `shared = 0`, which is what makes the
    /// boundary-merge in [`ChainArena::concat`] a plain byte copy: the
    /// spliced block's frames never reference keys outside it.
    last_key: Vec<u8>,
}

/// Arena owning the blocks of many chains.
pub struct ChainArena<T> {
    pager: Pager,
    blocks: Vec<BlockMeta>,
    /// Blocks emptied by boundary merges, available for reuse (their pages
    /// are recycled too, keeping disk growth proportional to live data).
    free: Vec<u32>,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Record> ChainArena<T> {
    /// A fresh arena on `pager`.
    pub fn new(pager: &Pager) -> Self {
        ChainArena {
            pager: pager.clone(),
            blocks: Vec::new(),
            free: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Number of live blocks (diagnostic; the linearity tests assert this
    /// stays `O(N/B)`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len() - self.free.len()
    }

    fn new_block(&mut self) -> PagerResult<u32> {
        if let Some(idx) = self.free.pop() {
            let meta = &mut self.blocks[idx as usize];
            meta.used = 0;
            meta.count = 0;
            meta.next = NIL;
            meta.last_key.clear();
            return Ok(idx);
        }
        let page = self.pager.pool().allocate();
        // Touch it so it exists zeroed; header maintained in metadata.
        drop(self.pager.pool().fetch_zeroed(page)?);
        let idx = self.blocks.len() as u32;
        self.blocks.push(BlockMeta {
            page,
            used: 0,
            count: 0,
            next: NIL,
            last_key: Vec::new(),
        });
        Ok(idx)
    }

    /// Append one record to the chain's tail, returning the grown chain.
    pub fn push(&mut self, chain: Chain, item: &T) -> PagerResult<Chain> {
        match self.pager.format() {
            PageFormat::V1 => self.push_v1(chain, item),
            PageFormat::V2 => self.push_v2(chain, item),
        }
    }

    fn push_v1(&mut self, mut chain: Chain, item: &T) -> PagerResult<Chain> {
        let mut buf = Vec::new();
        item.encode(&mut buf);
        let need = buf.len() + LEN_PREFIX_BYTES;
        let payload = self.pager.payload_size();
        if need > payload {
            return Err(PagerError::RecordTooLarge {
                record: buf.len(),
                payload: payload - LEN_PREFIX_BYTES,
            });
        }
        let tail = if chain.tail == NIL
            || (self.blocks[chain.tail as usize].used as usize) + need > payload
        {
            let idx = self.new_block()?;
            if chain.tail == NIL {
                chain.head = idx;
            } else {
                self.blocks[chain.tail as usize].next = idx;
            }
            chain.tail = idx;
            idx
        } else {
            chain.tail
        };
        let meta = &mut self.blocks[tail as usize];
        let offset = PAGE_HEADER_BYTES + meta.used as usize;
        let guard = self.pager.pool().fetch(meta.page)?;
        guard.with_mut(|data| {
            data[offset..offset + 4].copy_from_slice(&(buf.len() as u32).to_le_bytes());
            data[offset + 4..offset + 4 + buf.len()].copy_from_slice(&buf);
        });
        meta.used += need as u32;
        meta.count += 1;
        chain.len += 1;
        Ok(chain)
    }

    fn push_v2(&mut self, mut chain: Chain, item: &T) -> PagerResult<Chain> {
        let key = item.page_key().unwrap_or_default();
        let mut body = Vec::new();
        item.encode_body(&mut body, &self.pager.ctx());
        let payload = self.pager.payload_size();
        let frame_len = |shared: usize| {
            let suffix = key.len() - shared;
            codec::varint_len(shared as u64)
                + codec::varint_len(suffix as u64)
                + suffix
                + codec::varint_len(body.len() as u64)
                + body.len()
        };
        // Must fit even as the first frame of a block (shared = 0).
        if frame_len(0) > payload {
            return Err(PagerError::RecordTooLarge {
                record: key.len() + body.len(),
                payload,
            });
        }
        let (tail, shared) = if chain.tail == NIL {
            let idx = self.new_block()?;
            chain.head = idx;
            chain.tail = idx;
            (idx, 0)
        } else {
            let meta = &self.blocks[chain.tail as usize];
            let shared = if meta.count == 0 {
                0
            } else {
                common_prefix_len(&meta.last_key, &key)
            };
            if meta.used as usize + frame_len(shared) <= payload {
                (chain.tail, shared)
            } else {
                let idx = self.new_block()?;
                self.blocks[chain.tail as usize].next = idx;
                chain.tail = idx;
                (idx, 0)
            }
        };
        let mut frame = Vec::with_capacity(frame_len(shared));
        codec::put_varint(&mut frame, shared as u64);
        codec::put_vbytes(&mut frame, &key[shared..]);
        codec::put_vbytes(&mut frame, &body);
        let meta = &mut self.blocks[tail as usize];
        let offset = PAGE_HEADER_BYTES + meta.used as usize;
        let guard = self.pager.pool().fetch(meta.page)?;
        guard.with_mut(|data| data[offset..offset + frame.len()].copy_from_slice(&frame));
        meta.used += frame.len() as u32;
        meta.count += 1;
        meta.last_key.clear();
        meta.last_key.extend_from_slice(&key);
        chain.len += 1;
        Ok(chain)
    }

    /// Concatenate: all of `a`'s records followed by all of `b`'s.
    /// O(1) pointer splice; if the boundary blocks both fit in one page
    /// they are physically merged (≤ 2 page touches) so block counts stay
    /// proportional to data volume.
    pub fn concat(&mut self, a: Chain, b: Chain) -> PagerResult<Chain> {
        if a.is_empty() {
            return Ok(b);
        }
        if b.is_empty() {
            return Ok(a);
        }
        let payload = self.pager.payload_size() as u32;
        let a_tail = a.tail as usize;
        let b_head = b.head as usize;
        if self.blocks[a_tail].used + self.blocks[b_head].used <= payload {
            // Merge b's head block into a's tail block.
            let (b_page, b_used, b_count, b_next) = {
                let m = &self.blocks[b_head];
                (m.page, m.used as usize, m.count, m.next)
            };
            let bytes = {
                let guard = self.pager.pool().fetch(b_page)?;
                guard.with(|data| data[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + b_used].to_vec())
            };
            let a_used = self.blocks[a_tail].used as usize;
            let a_page = self.blocks[a_tail].page;
            let guard = self.pager.pool().fetch(a_page)?;
            guard.with_mut(|data| {
                data[PAGE_HEADER_BYTES + a_used..PAGE_HEADER_BYTES + a_used + b_used]
                    .copy_from_slice(&bytes);
            });
            let b_last_key = std::mem::take(&mut self.blocks[b_head].last_key);
            self.blocks[a_tail].used += b_used as u32;
            self.blocks[a_tail].count += b_count;
            self.blocks[a_tail].next = b_next;
            // The merged block now ends with b's last record; future v2
            // frames appended here delta against b's key, not a's.
            self.blocks[a_tail].last_key = b_last_key;
            self.free.push(b.head);
            let tail = if b_next == NIL { a.tail } else { b.tail };
            Ok(Chain {
                head: a.head,
                tail,
                len: a.len + b.len,
            })
        } else {
            self.blocks[a_tail].next = b.head;
            Ok(Chain {
                head: a.head,
                tail: b.tail,
                len: a.len + b.len,
            })
        }
    }

    /// Iterate a chain's records in order.
    pub fn iter<'a>(&'a self, chain: Chain) -> ChainIter<'a, T> {
        ChainIter {
            arena: self,
            block: chain.head,
            remaining: chain.len,
            in_block: Vec::new().into_iter(),
        }
    }

    /// Materialize a chain (test helper).
    pub fn to_vec(&self, chain: Chain) -> PagerResult<Vec<T>> {
        self.iter(chain).collect()
    }
}

/// Iterator over a chain's records.
pub struct ChainIter<'a, T> {
    arena: &'a ChainArena<T>,
    block: u32,
    remaining: u64,
    in_block: std::vec::IntoIter<T>,
}

impl<T: Record> ChainIter<'_, T> {
    fn load_block(&mut self) -> PagerResult<bool> {
        if self.block == NIL || self.remaining == 0 {
            return Ok(false);
        }
        let meta = &self.arena.blocks[self.block as usize];
        let guard = self.arena.pager.pool().fetch(meta.page)?;
        let mut items = Vec::with_capacity(meta.count as usize);
        guard.with(|data| -> PagerResult<()> {
            match self.arena.pager.format() {
                PageFormat::V1 => {
                    let mut pos = PAGE_HEADER_BYTES;
                    for _ in 0..meta.count {
                        let len =
                            u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                        pos += LEN_PREFIX_BYTES;
                        items.push(T::decode(&data[pos..pos + len])?);
                        pos += len;
                    }
                }
                PageFormat::V2 => {
                    let ctx = self.arena.pager.ctx();
                    let end = PAGE_HEADER_BYTES + meta.used as usize;
                    let mut r = codec::Reader::new(&data[PAGE_HEADER_BYTES..end]);
                    let mut key: Vec<u8> = Vec::new();
                    for _ in 0..meta.count {
                        let shared = r.get_varint()? as usize;
                        let suffix = r.get_vbytes()?;
                        let body = r.get_vbytes()?;
                        if shared > key.len() {
                            return Err(PagerError::CorruptPage {
                                page: meta.page,
                                detail: format!("shared prefix {shared} exceeds previous key"),
                            });
                        }
                        key.truncate(shared);
                        key.extend_from_slice(suffix);
                        items.push(T::decode_body(&key, body, &ctx)?);
                    }
                }
            }
            Ok(())
        })?;
        self.block = meta.next;
        self.in_block = items.into_iter();
        Ok(true)
    }
}

impl<T: Record> Iterator for ChainIter<'_, T> {
    type Item = PagerResult<T>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.remaining == 0 {
                return None;
            }
            if let Some(item) = self.in_block.next() {
                self.remaining -= 1;
                return Some(Ok(item));
            }
            match self.load_block() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny_pager;

    #[test]
    fn push_and_iterate() {
        let pager = tiny_pager();
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut c = Chain::empty();
        for i in 0..100 {
            c = arena.push(c, &i).unwrap();
        }
        assert_eq!(c.len(), 100);
        let got: Vec<u64> = arena.to_vec(c).unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn concat_preserves_order() {
        let pager = tiny_pager();
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut a = Chain::empty();
        let mut b = Chain::empty();
        for i in 0..50 {
            a = arena.push(a, &i).unwrap();
        }
        for i in 50..120 {
            b = arena.push(b, &i).unwrap();
        }
        let c = arena.concat(a, b).unwrap();
        assert_eq!(c.len(), 120);
        assert_eq!(arena.to_vec(c).unwrap(), (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn concat_with_empty_sides() {
        let pager = tiny_pager();
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut a = Chain::empty();
        a = arena.push(a, &7).unwrap();
        let c = arena.concat(a, Chain::empty()).unwrap();
        assert_eq!(arena.to_vec(c).unwrap(), vec![7]);
        let c = arena.concat(Chain::empty(), a).unwrap();
        assert_eq!(arena.to_vec(c).unwrap(), vec![7]);
        let c = arena.concat(Chain::empty(), Chain::empty()).unwrap();
        assert!(c.is_empty());
        assert_eq!(arena.to_vec(c).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn many_tiny_chains_concat_into_few_blocks() {
        // The half-full-merge rule: splicing thousands of 1-record chains
        // must not leave thousands of 1-record blocks.
        let pager = Pager::new(4096, 16);
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut acc = Chain::empty();
        for i in 0..2000u64 {
            let mut single = Chain::empty();
            single = arena.push(single, &i).unwrap();
            acc = arena.concat(acc, single).unwrap();
        }
        assert_eq!(acc.len(), 2000);
        assert_eq!(arena.to_vec(acc).unwrap(), (0..2000).collect::<Vec<_>>());
        // 12 bytes per record on a ~4KB page → ~340 per block.
        let ideal = 2000 / (pager.payload_size() / 12) + 1;
        assert!(
            arena.num_blocks() <= ideal * 3,
            "{} blocks vs ideal {}",
            arena.num_blocks(),
            ideal
        );
    }

    #[test]
    fn interleaved_chain_growth() {
        let pager = tiny_pager();
        let mut arena: ChainArena<(u64, u64)> = ChainArena::new(&pager);
        let mut chains = [Chain::empty(); 10];
        for round in 0..30u64 {
            for (ci, chain) in chains.iter_mut().enumerate() {
                *chain = arena.push(*chain, &(ci as u64, round)).unwrap();
            }
        }
        for (ci, chain) in chains.iter().enumerate() {
            let got = arena.to_vec(*chain).unwrap();
            let expect: Vec<(u64, u64)> = (0..30).map(|r| (ci as u64, r)).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn prepend_pattern_used_by_stack_pop() {
        // Simulate a pop: record r, then its buffered subtree list.
        let pager = tiny_pager();
        let mut arena: ChainArena<u64> = ChainArena::new(&pager);
        let mut subtree = Chain::empty();
        for i in 1..6 {
            subtree = arena.push(subtree, &i).unwrap();
        }
        let mut own = Chain::empty();
        own = arena.push(own, &0).unwrap();
        let merged = arena.concat(own, subtree).unwrap();
        assert_eq!(arena.to_vec(merged).unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn oversized_record_rejected() {
        let pager = tiny_pager();
        let mut arena: ChainArena<Vec<u8>> = ChainArena::new(&pager);
        let err = arena.push(Chain::empty(), &vec![0u8; 4096]).unwrap_err();
        assert!(matches!(err, PagerError::RecordTooLarge { .. }));
    }

    /// Keyed record exercising v2 delta frames across chain blocks.
    #[derive(Debug, Clone, PartialEq)]
    struct Keyed(String, u64);

    impl Record for Keyed {
        fn encode(&self, out: &mut Vec<u8>) {
            codec::put_str(&mut *out, &self.0);
            codec::put_u64(out, self.1);
        }
        fn decode(bytes: &[u8]) -> PagerResult<Self> {
            let mut r = codec::Reader::new(bytes);
            let name = r.get_str()?.to_string();
            let v = r.get_u64()?;
            Ok(Keyed(name, v))
        }
        fn page_key(&self) -> Option<Vec<u8>> {
            Some(self.0.as_bytes().to_vec())
        }
        fn encode_body(&self, out: &mut Vec<u8>, _ctx: &crate::record::PageCtx) {
            codec::put_varint(out, self.1);
        }
        fn decode_body(
            key: &[u8],
            body: &[u8],
            _ctx: &crate::record::PageCtx,
        ) -> PagerResult<Self> {
            let name = String::from_utf8(key.to_vec()).map_err(|e| {
                PagerError::CorruptRecord {
                    detail: format!("bad key: {e}"),
                }
            })?;
            let mut r = codec::Reader::new(body);
            Ok(Keyed(name, r.get_varint()?))
        }
    }

    fn keyed(i: u64) -> Keyed {
        Keyed(format!("ou=dept, o=corp, item={i:04}"), i)
    }

    #[test]
    fn v2_push_and_iterate() {
        let pager = Pager::custom(256, crate::PoolConfig::new(8), PageFormat::V2);
        let mut arena: ChainArena<Keyed> = ChainArena::new(&pager);
        let mut c = Chain::empty();
        for i in 0..200 {
            c = arena.push(c, &keyed(i)).unwrap();
        }
        let got = arena.to_vec(c).unwrap();
        assert_eq!(got, (0..200).map(keyed).collect::<Vec<_>>());
    }

    #[test]
    fn v2_concat_boundary_merge_stays_decodable() {
        // The merge copies b's head block bytes verbatim behind a's tail;
        // b's first frame has shared=0 so the byte splice is decodable,
        // and further pushes must delta against b's (carried) last key.
        let pager = Pager::custom(256, crate::PoolConfig::new(8), PageFormat::V2);
        let mut arena: ChainArena<Keyed> = ChainArena::new(&pager);
        let mut a = Chain::empty();
        let mut b = Chain::empty();
        for i in 0..3 {
            a = arena.push(a, &keyed(i)).unwrap();
        }
        for i in 3..6 {
            b = arena.push(b, &keyed(i)).unwrap();
        }
        let mut c = arena.concat(a, b).unwrap();
        for i in 6..40 {
            c = arena.push(c, &keyed(i)).unwrap();
        }
        assert_eq!(arena.to_vec(c).unwrap(), (0..40).map(keyed).collect::<Vec<_>>());
    }

    #[test]
    fn v2_many_tiny_chains_concat_into_few_blocks() {
        let pager = Pager::custom(4096, crate::PoolConfig::new(16), PageFormat::V2);
        let mut arena: ChainArena<Keyed> = ChainArena::new(&pager);
        let mut acc = Chain::empty();
        for i in 0..2000u64 {
            let mut single = Chain::empty();
            single = arena.push(single, &keyed(i)).unwrap();
            acc = arena.concat(acc, single).unwrap();
        }
        assert_eq!(acc.len(), 2000);
        assert_eq!(
            arena.to_vec(acc).unwrap(),
            (0..2000).map(keyed).collect::<Vec<_>>()
        );
        // Compressed frames are small; block count must stay proportional.
        assert!(arena.num_blocks() < 60, "{} blocks", arena.num_blocks());
    }
}
